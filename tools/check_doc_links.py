#!/usr/bin/env python
"""Cross-reference lint for the documentation set.

Every file the docs point at must exist.  Three reference shapes are
checked, in ``docs/*.md`` and the top-level documents (README.md,
DESIGN.md, EXPERIMENTS.md, ROADMAP.md, PAPER.md; CHANGES.md is an
append-only history log and stays out of scope):

* markdown links ``[text](target)`` with a relative target — resolved
  against the referencing file's directory (anchors stripped), then
  against the repo root;
* path-like mentions ending in a known extension and containing a
  ``/`` (``tests/opencl/test_faults.py``, ``docs/ARCHITECTURE.md``,
  ``repro/opencl/costmodel.py`` — also resolved under ``src/``, the
  import root) — glob characters allowed, a pattern must match at
  least one file;
* dotted module mentions (``repro.opencl.faults``) — must resolve to a
  module or package under ``src/``.

Exit status: 0 when every reference resolves, 1 with a listing of the
dangling ones otherwise.  CI runs this next to the docstring lint so a
renamed test file or module cannot silently orphan the documentation.
"""

from __future__ import annotations

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Documents whose references are checked.
DOC_GLOBS = [
    "docs/*.md",
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "PAPER.md",
]

MD_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
PATH_LIKE = re.compile(
    r"(?<![\w./-])((?:[\w*?-]+/)+[\w*?.-]+\.(?:py|md|json|txt|yml|toml))"
)
MODULE_LIKE = re.compile(r"(?<![\w.])(repro(?:\.\w+)+)")


def doc_files() -> list[str]:
    out = []
    for pattern in DOC_GLOBS:
        out.extend(sorted(glob.glob(os.path.join(REPO, pattern))))
    return out


def _exists(path: str) -> bool:
    return bool(glob.glob(path)) if glob.has_magic(path) else os.path.exists(path)


def _resolve_relative(base_dir: str, target: str) -> bool:
    """A relative link resolves against its file's directory, the repo
    root, or the ``src/`` import root (docs cite ``repro/...`` paths)."""
    return (
        _exists(os.path.join(base_dir, target))
        or _exists(os.path.join(REPO, target))
        or _exists(os.path.join(REPO, "src", target))
    )


def _module_exists(dotted: str) -> bool:
    """``repro.a.b`` names src/repro/a/b.py, a package, or an attribute
    of a module one level up (``repro.kcache.configure``)."""
    parts = dotted.split(".")
    for depth in (len(parts), len(parts) - 1):
        if depth < 1:
            continue
        base = os.path.join(REPO, "src", *parts[:depth])
        if os.path.exists(base + ".py") or os.path.isdir(base):
            return True
    return False


def check_file(path: str) -> list[str]:
    """Dangling references (``file:line: target``) in one document."""
    rel = os.path.relpath(path, REPO)
    base_dir = os.path.dirname(path)
    offences = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for match in MD_LINK.finditer(line):
                target = match.group(1)
                if "://" in target or target.startswith(("#", "mailto:")):
                    continue
                target = target.split("#", 1)[0]
                if target and not _resolve_relative(base_dir, target):
                    offences.append(f"{rel}:{lineno}: broken link {target!r}")
            for match in PATH_LIKE.finditer(line):
                target = match.group(1)
                if not _resolve_relative(base_dir, target):
                    offences.append(f"{rel}:{lineno}: missing file {target!r}")
            for match in MODULE_LIKE.finditer(line):
                if not _module_exists(match.group(1)):
                    offences.append(
                        f"{rel}:{lineno}: unknown module {match.group(1)!r}"
                    )
    return offences


def main() -> int:
    files = doc_files()
    offences = []
    for path in files:
        offences.extend(check_file(path))
    if offences:
        print("doc-link lint failed:", file=sys.stderr)
        for line in offences:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"doc-link lint: {len(files)} documents, all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
