#!/usr/bin/env python
"""Docstring lint for the documented core of the reproduction.

Checks that every module under ``src/repro/opencl/``,
``src/repro/kir/`` and ``src/repro/actors/`` (plus
``src/repro/kcache.py``, ``src/repro/runtime/vm.py`` and
``src/repro/harness/chaos.py``) carries a module docstring, and that
each
top-level *public* class and function in those modules states a
one-line contract.  CI runs this so the scheduling/dispatch/
reliability layers the architecture and reliability documents describe
cannot silently lose their contracts.

Exit status: 0 when clean, 1 with a listing of offenders otherwise.
"""

from __future__ import annotations

import ast
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Files and directories whose public surface must be documented.
TARGETS = [
    os.path.join("src", "repro", "opencl"),
    os.path.join("src", "repro", "kir"),
    os.path.join("src", "repro", "actors"),
    os.path.join("src", "repro", "kcache.py"),
    os.path.join("src", "repro", "runtime", "vm.py"),
    os.path.join("src", "repro", "harness", "chaos.py"),
]

#: Modules the directory sweep must pick up — a rename or move that
#: drops one of these from coverage fails the lint instead of silently
#: shrinking it.
REQUIRED = [
    os.path.join("src", "repro", "opencl", "fusion.py"),
    os.path.join("src", "repro", "opencl", "queue.py"),
    os.path.join("src", "repro", "opencl", "faults.py"),
    os.path.join("src", "repro", "kir", "fuse.py"),
    os.path.join("src", "repro", "kir", "npcodegen.py"),
    os.path.join("src", "repro", "runtime", "vm.py"),
    os.path.join("src", "repro", "harness", "chaos.py"),
]


def target_files() -> list[str]:
    out = []
    for target in TARGETS:
        path = os.path.join(REPO, target)
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith(".py"):
                    out.append(os.path.join(path, name))
        else:
            out.append(path)
    return out


def missing_docstrings(path: str) -> list[str]:
    """Human-readable offences (``file:line: what``) in one module."""
    with open(path, encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    rel = os.path.relpath(path, REPO)
    offences = []
    if ast.get_docstring(tree) is None:
        offences.append(f"{rel}:1: module docstring missing")
    for node in tree.body:
        if not isinstance(
            node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            offences.append(
                f"{rel}:{node.lineno}: public {kind} "
                f"{node.name!r} has no docstring"
            )
    return offences


def main() -> int:
    offences = []
    files = target_files()
    for required in REQUIRED:
        if os.path.join(REPO, required) not in files:
            offences.append(f"{required}:1: required module not covered")
    for path in files:
        offences.extend(missing_docstrings(path))
    if offences:
        print("docstring lint failed:", file=sys.stderr)
        for line in offences:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"docstring lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
