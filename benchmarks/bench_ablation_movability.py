"""Movability ablation (paper Section 7.4, in-text result):

    "Without movability, LUD took approximately 3 minutes to complete
     on the GPU due to all the data movement involved; with movability,
     it takes approximately five seconds."  (~36x)

Without ``mov`` every hop of the three-kernel pipeline deep-copies the
matrix and forces a device round trip; with ``mov`` only a reference
travels and the matrix stays resident.  The paper's testbed saw ~36x;
the asserted bound here is the order-of-magnitude shape.
"""

from repro.apps import lud
from repro.harness import scaled_devices
from repro.runtime import device_matrix

N = 32
# Natural link bandwidth (size_ratio=1): transfers cost what they cost
# on a PCIe-class link, which is exactly where movability matters; only
# fixed per-call costs are scaled into the paper regime.
SCALE_ARGS = (0.08, 1.0, 2048 / N)


def _run(movable: bool):
    with scaled_devices(*SCALE_ARGS):
        outcome = lud.run_ensemble(N, "GPU", movable=movable)
        ledger = device_matrix().combined_ledger()
    return outcome, ledger


def test_movability_ablation(benchmark, artefacts):
    (with_mov, led_mov) = benchmark.pedantic(
        _run, args=(True,), rounds=1, iterations=1
    )
    without_mov, led_nomov = _run(False)
    assert with_mov.result == without_mov.result

    transfer_mov = (
        with_mov.segment("to_device") + with_mov.segment("from_device")
    )
    transfer_nomov = (
        without_mov.segment("to_device")
        + without_mov.segment("from_device")
    )
    speedup = without_mov.total_ns / with_mov.total_ns
    artefacts["ablation_mov"] = (
        f"Movability ablation (LUD n={N}): total without/with mov = "
        f"{speedup:.1f}x; transferred bytes "
        f"{led_nomov.bytes_to_device + led_nomov.bytes_from_device} vs "
        f"{led_mov.bytes_to_device + led_mov.bytes_from_device}"
    )
    print()
    print(artefacts["ablation_mov"])

    # Transfer volume explodes without movability (2 arrays x 2
    # directions x 3 kernels x N steps vs a single round trip).
    assert led_nomov.bytes_to_device > 20 * led_mov.bytes_to_device
    assert transfer_nomov > 20 * max(transfer_mov, 1e-9)
    # The end-to-end shape: movability buys at least ~2x here and the
    # gap grows with n (the paper's 2048 matrix saw ~36x).
    assert speedup > 2.0
