"""Regenerates Figure 3d: parallel reduction.

Paper shape asserted: Ensemble-OpenCL closely tracks C-OpenCL (both
transfer-bound, as a 2^25-element reduction over a PCIe-class link is);
C-OpenACC performs poorly on the GPU because annotating the sequential
loop cannot produce the restructured tree-reduction logic.

Known deviation (recorded in EXPERIMENTS.md): on the *CPU* device our
cost model prices the divergent tree kernel conservatively, so the
OpenACC CPU bar lands slightly below C-OpenCL instead of above it.
"""

from figure_common import regenerate, segment, total


def test_figure_3d(benchmark, artefacts):
    fig = regenerate(benchmark, artefacts, "3d")

    ens_gpu = total(fig, "Ensemble GPU")
    c_gpu = total(fig, "C-OpenCL GPU")

    # "Ensemble-OpenCL closely tracks the performance of C-OpenCL"
    assert c_gpu <= ens_gpu <= 1.4 * c_gpu
    # OpenACC performs poorly on the GPU.
    assert total(fig, "C-OpenACC GPU") > 1.5 * c_gpu
    # The figure is transfer-bound, like the paper-size problem.
    assert segment(fig, "Ensemble GPU", "to_device") > segment(
        fig, "Ensemble GPU", "kernel"
    )
