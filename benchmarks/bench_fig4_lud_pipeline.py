"""Regenerates Figure 4's claim: the controller *plumbs* the three LUD
kernel actors into a pipeline and streams the movable matrix through it,
with performance comparable to the C host's sequential dispatch.

Measured here (paper Section 7.4, Figure 3c/4 discussion):

* the pipeline topology performs the same number of kernel launches and
  moves the same number of bytes as the sequential C dispatch;
* the matrix crosses the host link exactly once in each direction;
* total simulated time is comparable.
"""

from repro.apps import lud
from repro.harness import scaled_devices
from repro.runtime import device_matrix

N = 32


def _run_both():
    with scaled_devices(0.08, 2048 / N):
        actor = lud.run_actors(N, "GPU", movable=True)
        actor_led = device_matrix().combined_ledger()
        api = lud.run_api(N, "GPU")
    return actor, actor_led, api


def test_figure4_pipeline_vs_sequential(benchmark, artefacts):
    actor, actor_led, api = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    assert actor.result == api.result

    # Same dispatch count: 3 kernels x N steps.
    assert actor_led.kernel_launches == 3 * N

    # The matrix moves up once and comes back once; everything between
    # stays on the device thanks to movability.
    matrix_bytes = N * N * 4
    assert actor_led.bytes_to_device <= matrix_bytes + 64
    assert actor_led.bytes_from_device <= matrix_bytes + 64

    # Comparable simulated totals (kernel actors vs sequential host).
    ratio = actor.total_ns / api.total_ns
    artefacts["figure4"] = (
        f"Figure 4 pipeline: actor-pipeline / sequential-C total "
        f"= {ratio:.2f} (launches={actor_led.kernel_launches}, "
        f"h2d={actor_led.bytes_to_device}B, "
        f"d2h={actor_led.bytes_from_device}B)"
    )
    print()
    print(artefacts["figure4"])
    assert 0.5 <= ratio <= 3.0
