#!/usr/bin/env python
"""Wall-clock benchmark of the host execution path.

Times real (not simulated) seconds for the five evaluation apps, in two
configurations:

* **legacy** — the pre-overhaul host path: per-item interpretation
  (``run_range`` + Python-side warp folding) with the kernel-compile
  cache emptied before every run, so each run recompiles its kernels;
* **optimized** — the current default: content-addressed compile cache
  (:mod:`repro.kcache`) warm across runs, batched warp folding, and the
  numpy vectorised tier where eligible.

Both configurations produce byte-identical *simulated* results — the
script asserts checksum and total-ns agreement on every run — so the
comparison isolates host wall-clock cost.

Usage::

    python benchmarks/bench_wallclock.py            # full sizes
    python benchmarks/bench_wallclock.py --smoke    # CI-sized
    python benchmarks/bench_wallclock.py --smoke --check  # + regression gate

Results merge into ``BENCH_wallclock.json`` next to this script, keyed
by mode, so the committed file can hold both the full trajectory and
the smoke baseline the CI gate compares against.  ``--check`` fails
when any app's optimized time regresses more than 2x against the
committed baseline for the same mode, or when an app with a speedup
floor drops below it: 2x for mandelbrot, mandelbrot_deep and reduction
(whose gains come from the vectorised loop/barrier tiers and
active-lane compaction), and explicit per-mode floors for the
host-overhead-bound LUD actor pipeline (see ``SPEEDUP_FLOORS``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import kcache  # noqa: E402
from repro.apps import docrank, lud, mandelbrot, matmul, reduction  # noqa: E402
from repro.harness import scaled_devices  # noqa: E402
from repro.opencl import dispatch  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"

#: Maximum tolerated slowdown vs the committed baseline (--check).
REGRESSION_FACTOR = 2.0

#: Minimum legacy/optimized speedup per app (--check).  A plain float
#: applies in every mode; a dict maps mode (``full`` / ``smoke``) to a
#: per-mode floor.  Mandelbrot and reduction ride the masked-loop and
#: barrier-phase vectorised tiers; falling below 2x means those tiers
#: stopped engaging.  The deep variant sweeps ``max_iter`` into the
#: regime where full-width masked evaluation used to collapse — it
#: stays above the floor only while active-lane compaction keeps
#: per-round cost proportional to the lanes still iterating.
#:
#: The LUD actor pipeline gets explicit per-mode floors below the
#: generic 2x: its wall clock is dominated by host-side actor plumbing
#: (thread scheduling, channel sends, the per-iteration Python control
#: loop), so kernel execution — the only part the vectorised tier can
#: speed up — is a minority of the measured time.  The committed full
#: baseline sits at ~1.8x (n=256); the smoke size (n=48) spends
#: proportionally even more of its time in the actor machinery and
#: measures ~1.5x.  The floors assert those tiers keep engaging without
#: demanding an Amdahl-impossible 2x.
SPEEDUP_FLOORS = {
    "mandelbrot": 2.0,
    "reduction": 2.0,
    "mandelbrot_deep": 2.0,
    "lud_pipeline": {"full": 1.6, "smoke": 1.25},
}

def _mandelbrot_sweep(params: dict):
    """Run mandelbrot once per ``max_iter`` in the sweep and fold the
    outcomes into one comparable object (results and priced totals are
    tuples over the sweep, so the legacy/optimized equality assertions
    in :func:`bench_workload` cover every depth)."""
    import types

    outcomes = [
        mandelbrot.run_api(params["w"], params["h"], iters)
        for iters in params["iters"]
    ]
    return types.SimpleNamespace(
        result=tuple(o.result for o in outcomes),
        total_ns=tuple(o.total_ns for o in outcomes),
    )


# Sizes are chosen so the full mode stresses the regimes the overhaul
# targets: repeated identical-kernel launches (docrank, the LUD actor
# pipeline) and large NDRanges (matmul).  Smoke sizes keep CI under a
# few seconds while still exercising every tier.
WORKLOADS = [
    {
        "name": "matmul",
        "run": lambda p: matmul.run_api(p["n"]),
        "full": {"n": 96},
        "smoke": {"n": 48},
    },
    {
        "name": "mandelbrot",
        "run": lambda p: mandelbrot.run_api(p["w"], p["h"], p["iters"]),
        "full": {"w": 192, "h": 192, "iters": 60},
        "smoke": {"w": 48, "h": 48, "iters": 40},
    },
    {
        # Deep escape loops: interior pixels iterate to max_iter while
        # most lanes exit early, so live-lane density plummets — the
        # regime active-lane compaction exists for.
        "name": "mandelbrot_deep",
        "run": _mandelbrot_sweep,
        "full": {"w": 96, "h": 96, "iters": [60, 500, 2000]},
        "smoke": {"w": 48, "h": 48, "iters": [60, 500]},
    },
    {
        "name": "lud_pipeline",
        "run": lambda p: lud.run_actors(p["n"]),
        "full": {"n": 256},
        "smoke": {"n": 48},
    },
    {
        "name": "docrank",
        "run": lambda p: docrank.run_api(p["docs"], p["terms"], p["repeats"]),
        "full": {"docs": 2048, "terms": 64, "repeats": 16},
        "smoke": {"docs": 512, "terms": 32, "repeats": 4},
    },
    {
        "name": "reduction",
        "run": lambda p: reduction.run_api(p["n"]),
        "full": {"n": 65536},
        "smoke": {"n": 8192},
    },
]


def _timed_run(run, params, *, legacy: bool) -> tuple[float, object]:
    """One measured run; returns (seconds, RunOutcome)."""
    dispatch.set_legacy_execution(legacy)
    if legacy:
        # Pre-overhaul behaviour: every run recompiles its kernels.
        kcache.clear()
    with scaled_devices(0.08, 1.0):
        start = time.perf_counter()
        outcome = run(params)
        elapsed = time.perf_counter() - start
    return elapsed, outcome


def bench_workload(workload: dict, mode: str, reps: int) -> dict:
    params = workload[mode]
    run = workload["run"]

    # Warm both Python bytecode and the kernel cache before timing.
    dispatch.set_legacy_execution(False)
    with scaled_devices(0.08, 1.0):
        run(params)

    legacy_s, legacy_outcome = min(
        (_timed_run(run, params, legacy=True) for _ in range(reps)),
        key=lambda pair: pair[0],
    )

    before = kcache.stats()
    optimized_s, outcome = min(
        (_timed_run(run, params, legacy=False) for _ in range(reps)),
        key=lambda pair: pair[0],
    )
    after = kcache.stats()

    # The overhaul must not change anything the simulation reports.
    assert outcome.result == legacy_outcome.result, workload["name"]
    assert outcome.total_ns == legacy_outcome.total_ns, workload["name"]

    return {
        "params": params,
        "legacy_s": round(legacy_s, 4),
        "optimized_s": round(optimized_s, 4),
        "speedup": round(legacy_s / optimized_s, 2),
        "kcache": {
            "hits": after.hits - before.hits,
            "misses": after.misses - before.misses,
        },
    }


def load_results() -> dict:
    if RESULTS_PATH.exists():
        with RESULTS_PATH.open() as fh:
            return json.load(fh)
    return {"schema": 1, "modes": {}}


def check_regressions(results: dict, baseline: dict, mode: str) -> list[str]:
    failures = []
    base_apps = baseline.get("modes", {}).get(mode, {}).get("apps", {})
    for name, entry in results.items():
        base = base_apps.get(name)
        if base is None:
            continue
        limit = base["optimized_s"] * REGRESSION_FACTOR
        if entry["optimized_s"] > limit:
            failures.append(
                f"{name}: {entry['optimized_s']}s exceeds "
                f"{REGRESSION_FACTOR}x baseline ({base['optimized_s']}s)"
            )
    for name, floor in SPEEDUP_FLOORS.items():
        if isinstance(floor, dict):
            floor = floor.get(mode)
            if floor is None:
                continue
        entry = results.get(name)
        if entry is not None and entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']}x below the "
                f"{floor}x floor (vectorised tier not engaging?)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized problems, single rep")
    parser.add_argument("--check", action="store_true",
                        help="fail on >%.0fx regression vs the committed "
                             "baseline" % REGRESSION_FACTOR)
    parser.add_argument("--output", default=str(RESULTS_PATH),
                        help="result file (default: %(default)s)")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    reps = 1 if args.smoke else 3
    baseline = load_results()

    apps: dict = {}
    print(f"mode={mode} reps={reps}")
    print(f"{'app':<14} {'legacy':>9} {'optimized':>10} "
          f"{'speedup':>8} {'kcache h/m':>11}")
    try:
        for workload in WORKLOADS:
            entry = bench_workload(workload, mode, reps)
            apps[workload["name"]] = entry
            kc = entry["kcache"]
            print(f"{workload['name']:<14} {entry['legacy_s']:>8.3f}s "
                  f"{entry['optimized_s']:>9.3f}s {entry['speedup']:>7.2f}x "
                  f"{kc['hits']:>6}/{kc['misses']}")
    finally:
        dispatch.set_legacy_execution(False)

    results = load_results() if Path(args.output) == RESULTS_PATH else {
        "schema": 1, "modes": {},
    }
    results["schema"] = 1
    results.setdefault("modes", {})[mode] = {
        "python": platform.python_version(),
        "apps": apps,
    }
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = check_regressions(apps, baseline, mode)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
