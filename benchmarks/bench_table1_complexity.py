"""Regenerates Table 1: code-complexity deltas per approach.

Paper shape asserted here:

* C-OpenCL needs substantially more code than the single-threaded
  version for every application (the API boilerplate);
* Ensemble deltas are far smaller than C's — the cyclomatic complexity
  even *decreases* for matrix multiplication and Mandelbrot (the kernel
  replaces the outer loops), while Reduction pays the restructuring
  cost the paper reports (+72 LoC there);
* OpenACC's annotations barely change the code.
"""

from __future__ import annotations

from repro.metrics import build_table1, render_table1


def _rows():
    return build_table1()


def test_table1_regeneration(benchmark, artefacts):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table1(rows)
    artefacts["table1"] = text
    print()
    print(text)

    by_name = {row.application: row for row in rows}

    for row in rows:
        # API approach always costs much more code than Ensemble.
        assert row.c_api.loc > 25, row
        assert row.c_api.abc > 20, row
        assert row.ensemble.loc < row.c_api.loc + 10
        # Pragmas are nearly free in code size.
        assert row.openacc.loc <= 6, row
        assert abs(row.openacc.cyclomatic) <= 1, row
        assert row.openacc.abc <= 2, row
        # Ensemble ABC is below the API approach everywhere.
        assert row.ensemble.abc < row.c_api.abc, row

    # The kernel replaces the outer loops: cyclomatic complexity drops
    # for the regular 2-D apps (paper: -2 matmul / -8 LUD ... negative).
    assert by_name["Matrix Multiplication"].ensemble.cyclomatic < 0
    assert by_name["Mandelbrot"].ensemble.cyclomatic < 0
    # Reduction needs genuinely different kernel logic (paper: +72/+4).
    assert by_name["Reduction"].ensemble.loc > 15
    assert by_name["Reduction"].ensemble.cyclomatic > 0
