"""Regenerates Figure 3c: LUD with three kernels in series.

Paper shape asserted: the Ensemble kernel-actor pipeline is comparable
to C-OpenCL's sequential host dispatch (movability keeps the matrix on
the device — see bench_ablation_movability for the 36x contrast);
the Ensemble bar carries the VM-interpretation overhead of the
controller's non-OpenCL code; OpenACC with gang/worker annotations is
comparable, as the paper reports after tuning.
"""

from figure_common import regenerate, segment, total


def test_figure_3c(benchmark, artefacts):
    fig = regenerate(benchmark, artefacts, "3c")

    ens_gpu = total(fig, "Ensemble GPU")
    c_gpu = total(fig, "C-OpenCL GPU")
    acc_gpu = total(fig, "C-OpenACC GPU")

    # Comparable; the Ensemble surplus is interpreted controller code.
    assert ens_gpu <= 3.0 * c_gpu
    assert segment(fig, "Ensemble GPU", "overhead") > segment(
        fig, "C-OpenCL GPU", "overhead"
    )
    # Tuned OpenACC is comparable (paper: gang/worker made it so).
    assert 0.5 * c_gpu <= acc_gpu <= 2.0 * c_gpu
    # Movability keeps from-device transfers negligible during the run.
    assert segment(fig, "Ensemble GPU", "from_device") < 0.05
