"""Regenerates Figure 3b: Mandelbrot, normalised breakdown.

Paper shape asserted: Ensemble ~= C-OpenCL; C-OpenACC shows *much worse*
performance on the GPU even with the gang/worker annotations (the
pragma compiler cannot exploit the 2-D thread geometry and fails to
vectorise the irregular escape loop), and worse still on the CPU.
"""

from figure_common import regenerate, segment, total


def test_figure_3b(benchmark, artefacts):
    fig = regenerate(benchmark, artefacts, "3b")

    ens_gpu = total(fig, "Ensemble GPU")
    c_gpu = total(fig, "C-OpenCL GPU")

    assert c_gpu <= 1.1 * ens_gpu and ens_gpu <= 1.5 * c_gpu
    # "much worse performance" for the pragma approach on the GPU
    assert total(fig, "C-OpenACC GPU") > 3.0 * ens_gpu
    # and "vastly better" Ensemble vs OpenACC on the CPU
    assert total(fig, "C-OpenACC CPU") > 2.0 * total(fig, "Ensemble CPU")
    assert total(fig, "Ensemble CPU") > 2.0 * ens_gpu
