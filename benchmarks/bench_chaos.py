#!/usr/bin/env python
"""Priced chaos gate: figure regeneration under injected fault plans.

Regenerates every Figure 3 chart and the Figure-4 pipeline under the
default chaos matrix (transient faults at each injection site — the
substrate ops plus the VM/Ensemble ``native``/``vm``/``handoff`` sites
of the chaos harness — and all three kinds at the ``vec`` site, swept
with fusion off and on) and gates the recovery contract:

* **bit-identical buffers** — every faulted regeneration reproduces the
  fault-free result payload exactly;
* **exact recovery pricing** — the priced delta of each cell equals the
  summed ``fault.*`` charges, in Fraction arithmetic (the sweep raises
  on any mispriced retry);
* **bit-for-bit replay** — rerunning a cell under the same plan
  reproduces its ledger exactly;
* **full coverage** — every matrix cell actually injects at least one
  fault at the benchmarked sizes.

Every number is simulated and deterministic, so the committed
``BENCH_chaos.json`` is machine-independent and the assertions gate CI
without a tolerance band.

Usage::

    python benchmarks/bench_chaos.py           # full sizes
    python benchmarks/bench_chaos.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness import chaos  # noqa: E402
from repro.opencl.faults import FaultPlan, FaultSpec  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def bench_sweep(sizes: str) -> dict:
    """The default-matrix sweep; the three invariants are enforced
    inside :func:`chaos_sweep`, coverage is gated here."""
    report = chaos.chaos_sweep(sizes=sizes)
    silent = [cell.plan.name for cell in report.cells if not cell.injected]
    assert not silent, f"matrix cells that never injected: {silent}"
    return {
        "cells": [
            {
                "name": cell.plan.name,
                "target": cell.plan.target,
                "fusion": cell.plan.fusion,
                "injected": cell.injected,
                "recovery_ns": round(cell.recovery_ns, 1),
            }
            for cell in report.cells
        ],
        "total_injected": report.injected,
        "total_recovery_ns": round(
            sum(cell.recovery_ns for cell in report.cells), 1
        ),
    }


def bench_fig4_recovery(sizes: str) -> dict:
    """The focused Figure-4 gate: the actor + flat-API pipeline pair
    under a transient hand-off plan, priced against its clean twin."""
    n = chaos.FIG4_N[sizes]
    clean = chaos.run_target("fig4", sizes=sizes)
    assert clean.fault_charges == 0, "fault-free run charged fault.* spans"
    plan = FaultPlan([FaultSpec("handoff", kind="transient")])
    faulted = chaos.run_target("fig4", plan=plan, sizes=sizes)
    assert faulted.injected >= 1, "fig4 hand-off plan never injected"
    assert faulted.result == clean.result, "faulted fig4 result diverged"
    delta = faulted.priced - clean.priced
    assert delta == faulted.fault_charges, (
        f"fig4 recovery mispriced: delta {float(delta)} ns != "
        f"fault charges {float(faulted.fault_charges)} ns"
    )
    return {
        "n": n,
        "injected": faulted.injected,
        "clean_priced_ns": round(float(clean.priced), 1),
        "faulted_priced_ns": round(float(faulted.priced), 1),
        "recovery_ns": round(float(faulted.fault_charges), 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized problems")
    parser.add_argument("--output", default=str(RESULTS_PATH),
                        help="result file (default: %(default)s)")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"

    sweep_entry = bench_sweep(mode)
    print(f"chaos sweep [{mode}]: {len(sweep_entry['cells'])} cells, "
          f"{sweep_entry['total_injected']} faults injected, "
          f"{sweep_entry['total_recovery_ns']} ns recovery priced")

    fig4_entry = bench_fig4_recovery(mode)
    print(f"fig4 n={fig4_entry['n']}: {fig4_entry['injected']} hand-off "
          f"faults, priced {fig4_entry['clean_priced_ns']} -> "
          f"{fig4_entry['faulted_priced_ns']} ns "
          f"(recovery {fig4_entry['recovery_ns']} ns, delta exact)")

    results = {"schema": 1, "modes": {}}
    if Path(args.output).exists():
        with open(args.output) as fh:
            results = json.load(fh)
    results.setdefault("modes", {})[mode] = {
        "sweep": sweep_entry,
        "fig4_recovery": fig4_entry,
    }
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    print("chaos gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
