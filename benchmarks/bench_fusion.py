#!/usr/bin/env python
"""Priced ablation of the graph-level dispatch optimiser.

Runs the Figure-4 LUD pipeline (flat-API form) and the docrank corpus
twice — fusion off, then on (``dispatch.configure(fusion=True)``) —
entirely in simulated time, and gates the optimiser's contract:

* **bit-identical outputs** — checksum and full buffer contents agree
  between the runs;
* **strictly fewer priced kernel launches** on the fused LUD pipeline
  (pivot fuses into scale every iteration: 2 launches per step instead
  of 3);
* **lower priced totals and lower end-to-end ``elapsed_ns``** on both
  workloads (docrank's win is the transfer-elimination pass: repeats
  2..R re-upload the unchanged corpus and weights).

Every number here is simulated and deterministic, so the committed
``BENCH_fusion.json`` is machine-independent and the assertions gate
CI without a tolerance band.

Usage::

    python benchmarks/bench_fusion.py           # full sizes
    python benchmarks/bench_fusion.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import opencl as cl  # noqa: E402
from repro.apps.docrank import runners as docrank  # noqa: E402
from repro.apps.lud.runners import generate  # noqa: E402
from repro.apps.lud.sources import KERNEL_SOURCE  # noqa: E402
from repro.opencl import dispatch  # noqa: E402
from repro.opencl.context import fresh_clock  # noqa: E402
from repro.trace import tracing  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_fusion.json"

SIZES = {
    "full": {"lud_n": 64, "docrank": {"ndocs": 256, "v": 48, "repeats": 8}},
    "smoke": {"lud_n": 32, "docrank": {"ndocs": 64, "v": 16, "repeats": 4}},
}


def lud_api(n: int) -> dict:
    """The Figure-4 factorisation through the object layer, keeping the
    context alive so the raw ledger (priced launch count) is visible."""
    device = cl.find_device("GPU")
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device)
    program = cl.Program(context, KERNEL_SOURCE).build()
    k_pivot = program.create_kernel("lud_pivot")
    k_scale = program.create_kernel("lud_scale")
    k_update = program.create_kernel("lud_update")

    m = generate(n)
    buf_m = cl.Buffer(context, n * n)
    buf_piv = cl.Buffer(context, 1)
    queue.enqueue_write_buffer(buf_m, m)
    local = [8, 8] if n % 8 == 0 else None
    for k in range(n):
        for kernel in (k_pivot, k_scale):
            kernel.set_arg(0, buf_m)
            kernel.set_arg(1, buf_piv)
            kernel.set_arg(2, k)
            kernel.set_arg(3, n)
        k_update.set_arg(0, buf_m)
        k_update.set_arg(1, k)
        k_update.set_arg(2, n)
        queue.enqueue_nd_range_kernel(k_pivot, [1], [1])
        queue.enqueue_nd_range_kernel(k_scale, [n])
        queue.enqueue_nd_range_kernel(k_update, [n, n], local)
    out = [0.0] * (n * n)
    queue.enqueue_read_buffer(buf_m, out)
    queue.finish()
    ledger = context.ledger
    return {
        "m": out,
        "kernel_launches": ledger.kernel_launches,
        "priced_ns": (
            ledger.h2d_ns + ledger.d2h_ns + ledger.kernel_ns
            + ledger.host_ns
        ),
    }


def measure(run, fused: bool) -> dict:
    dispatch.configure(fusion=fused)
    cl.reset_platforms()
    try:
        with fresh_clock() as clock, tracing() as tracer:
            out = run()
            out["elapsed_ns"] = clock.timeline.elapsed_ns
            out["counters"] = {
                name: tracer.counter(name)
                for name in (
                    "dispatch.fuse",
                    "dispatch.fuse.reject",
                    "dispatch.xfer_elim",
                )
            }
        return out
    finally:
        dispatch.configure(fusion=False)


def bench_lud(n: int) -> dict:
    base = measure(lambda: lud_api(n), fused=False)
    fused = measure(lambda: lud_api(n), fused=True)
    assert fused["m"] == base["m"], "fused LUD output diverged"
    assert fused["kernel_launches"] < base["kernel_launches"], (
        f"fused LUD did not reduce priced launches "
        f"({fused['kernel_launches']} vs {base['kernel_launches']})"
    )
    assert fused["elapsed_ns"] < base["elapsed_ns"], (
        "fused LUD did not lower elapsed_ns"
    )
    assert fused["priced_ns"] < base["priced_ns"], (
        "fused LUD did not lower the priced total"
    )
    return {
        "n": n,
        "unfused": _public(base),
        "fused": _public(fused),
        "launches_saved": base["kernel_launches"] - fused["kernel_launches"],
    }


def bench_docrank(params: dict) -> dict:
    base = measure(lambda: {"outcome": docrank.run_api(**params)},
                   fused=False)
    fused = measure(lambda: {"outcome": docrank.run_api(**params)},
                    fused=True)
    assert fused["outcome"].result == base["outcome"].result, (
        "fused docrank output diverged"
    )
    assert fused["outcome"].total_ns < base["outcome"].total_ns, (
        "fused docrank did not lower the priced total"
    )
    assert fused["counters"]["dispatch.xfer_elim"] > 0, (
        "docrank repeats did not elide any redundant upload"
    )
    return {
        "params": params,
        "unfused": {"total_ns": round(base["outcome"].total_ns, 1),
                    "elapsed_ns": round(base["elapsed_ns"], 1)},
        "fused": {"total_ns": round(fused["outcome"].total_ns, 1),
                  "elapsed_ns": round(fused["elapsed_ns"], 1),
                  "counters": fused["counters"]},
    }


def _public(entry: dict) -> dict:
    return {
        "kernel_launches": entry["kernel_launches"],
        "priced_ns": round(entry["priced_ns"], 1),
        "elapsed_ns": round(entry["elapsed_ns"], 1),
        "counters": entry["counters"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized problems")
    parser.add_argument("--output", default=str(RESULTS_PATH),
                        help="result file (default: %(default)s)")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    sizes = SIZES[mode]

    lud_entry = bench_lud(sizes["lud_n"])
    print(f"lud n={lud_entry['n']}: launches "
          f"{lud_entry['unfused']['kernel_launches']} -> "
          f"{lud_entry['fused']['kernel_launches']}, elapsed "
          f"{lud_entry['unfused']['elapsed_ns']} -> "
          f"{lud_entry['fused']['elapsed_ns']} ns")

    docrank_entry = bench_docrank(sizes["docrank"])
    print(f"docrank {docrank_entry['params']}: priced total "
          f"{docrank_entry['unfused']['total_ns']} -> "
          f"{docrank_entry['fused']['total_ns']} ns "
          f"({docrank_entry['fused']['counters']['dispatch.xfer_elim']} "
          f"transfers elided)")

    results = {"schema": 1, "modes": {}}
    if Path(args.output).exists():
        with open(args.output) as fh:
            results = json.load(fh)
    results.setdefault("modes", {})[mode] = {
        "lud_pipeline": lud_entry,
        "docrank": docrank_entry,
    }
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    print("fusion gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
