"""Regenerates Figure 3a: matrix multiplication, normalised breakdown.

Paper shape asserted: Ensemble-OpenCL and C-OpenCL are commensurate on
both devices (Ensemble carries the extra VM-interpretation overhead);
C-OpenACC is comparable on the GPU for this regular 2-D kernel; the CPU
is several times slower than the GPU.
"""

from figure_common import regenerate, segment, total


def test_figure_3a(benchmark, artefacts):
    fig = regenerate(benchmark, artefacts, "3a")

    ens_gpu = total(fig, "Ensemble GPU")
    c_gpu = total(fig, "C-OpenCL GPU")
    acc_gpu = total(fig, "C-OpenACC GPU")

    # Commensurate performance (paper Section 7.4).
    assert c_gpu <= ens_gpu <= 2.0 * c_gpu
    # OpenACC is comparable on the GPU for matmul.
    assert acc_gpu <= 1.5 * c_gpu
    # The GPU wins over the CPU for this compute-bound kernel.
    assert total(fig, "Ensemble CPU") > 2.0 * ens_gpu
    assert total(fig, "C-OpenCL CPU") > 2.0 * c_gpu
    # Ensemble's extra cost is interpreter overhead, not OpenCL actions.
    assert segment(fig, "Ensemble GPU", "overhead") > segment(
        fig, "C-OpenCL GPU", "overhead"
    )
    for seg in ("to_device", "from_device", "kernel"):
        assert abs(
            segment(fig, "Ensemble GPU", seg)
            - segment(fig, "C-OpenCL GPU", seg)
        ) < 0.05
