"""Out-of-order queue ablation (docs/ARCHITECTURE.md section 2).

The Figure-4 LUD actor pipeline in shared-nothing mode re-uploads and
downloads between hops, so consecutive iterations carry commands with
no hazards between them.  An out-of-order queue overlaps those
transfers with the kernels of the previous iteration; an in-order queue
drains them serially.  The ablation asserts the scheduling contract:
identical checksum and identical ledger segments in both modes, with a
strictly shorter out-of-order makespan — on the queue-local axis *and*
on the composed end-to-end timeline, whose elapsed time attributes
every wall nanosecond to transfer / compute / api / overlap / idle.
"""

from fractions import Fraction

from repro.apps import lud
from repro.harness import scaled_devices
from repro.opencl import TIMELINE_SEGMENTS
from repro.opencl.context import current_clock
from repro.runtime import device_matrix
from repro.runtime.oclenv import set_out_of_order_queues

N = 24
SCALE_ARGS = (0.08, 1.0, 2048 / N)


def _run(out_of_order: bool):
    try:
        with scaled_devices(*SCALE_ARGS):
            set_out_of_order_queues(out_of_order)
            outcome = lud.run_actors(N, "GPU", movable=False)
            (env,) = device_matrix().environments()
            queue = env.queue
            makespans = (
                queue.makespan_ns,
                queue.serial_makespan_ns,
                queue.overlap_ns,
            )
            timeline = current_clock().timeline
            e2e = dict(timeline.attribution(), elapsed_ns=timeline.elapsed_ns)
            exact = timeline.attribution_exact()
            exact_elapsed = Fraction(timeline.elapsed_ns)
    finally:
        set_out_of_order_queues(False)
    return outcome, makespans, e2e, exact, exact_elapsed


def test_overlap_ablation(benchmark, artefacts):
    ooo, (ooo_makespan, ooo_serial, overlap), ooo_e2e, ooo_exact, ooo_exact_elapsed = (
        benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    )
    base, (in_makespan, in_serial, in_overlap), in_e2e, in_exact, in_exact_elapsed = (
        _run(False)
    )

    # The scheduling contract: mode changes the schedule, nothing else.
    assert ooo.result == base.result
    assert ooo.breakdown == base.breakdown
    assert in_overlap == 0.0
    assert in_makespan == in_serial
    assert ooo_serial == in_makespan  # same command stream, same drain

    # End-to-end accounting contract: the attribution covers the whole
    # elapsed interval exactly — no nanosecond double-counted or dropped
    # (checked in exact rational arithmetic, not approximately).
    for exact, exact_elapsed in ((ooo_exact, ooo_exact_elapsed),
                                 (in_exact, in_exact_elapsed)):
        assert sum(exact.values(), Fraction(0)) == exact_elapsed
        assert set(exact) == set(TIMELINE_SEGMENTS)

    saved = 1.0 - ooo_makespan / in_makespan
    e2e_saved = 1.0 - ooo_e2e["elapsed_ns"] / in_e2e["elapsed_ns"]
    artefacts["ablation_overlap"] = (
        f"Out-of-order ablation (LUD n={N}, shared-nothing): makespan "
        f"{in_makespan:.0f} ns in-order vs {ooo_makespan:.0f} ns "
        f"out-of-order ({saved:.1%} shorter, {overlap:.0f} ns overlapped); "
        f"end-to-end elapsed {in_e2e['elapsed_ns']:.0f} ns in-order vs "
        f"{ooo_e2e['elapsed_ns']:.0f} ns out-of-order "
        f"({e2e_saved:.1%} shorter end to end, "
        f"{ooo_e2e['overlap']:.0f} ns of it with multiple kinds in flight)"
    )
    print()
    print(artefacts["ablation_overlap"])

    # Strict win: the pipeline has real independence to exploit, and it
    # shows up end to end, not just on the queue-local axis.
    assert ooo_makespan < in_makespan
    assert overlap > 0.0
    assert ooo_e2e["elapsed_ns"] < in_e2e["elapsed_ns"]
