"""Out-of-order queue ablation (docs/ARCHITECTURE.md section 2).

The Figure-4 LUD actor pipeline in shared-nothing mode re-uploads and
downloads between hops, so consecutive iterations carry commands with
no hazards between them.  An out-of-order queue overlaps those
transfers with the kernels of the previous iteration; an in-order queue
drains them serially.  The ablation asserts the scheduling contract:
identical checksum and identical ledger segments in both modes, with a
strictly shorter out-of-order makespan.
"""

from repro.apps import lud
from repro.harness import scaled_devices
from repro.runtime import device_matrix
from repro.runtime.oclenv import set_out_of_order_queues

N = 24
SCALE_ARGS = (0.08, 1.0, 2048 / N)


def _run(out_of_order: bool):
    try:
        with scaled_devices(*SCALE_ARGS):
            set_out_of_order_queues(out_of_order)
            outcome = lud.run_actors(N, "GPU", movable=False)
            (env,) = device_matrix().environments()
            queue = env.queue
            makespans = (
                queue.makespan_ns,
                queue.serial_makespan_ns,
                queue.overlap_ns,
            )
    finally:
        set_out_of_order_queues(False)
    return outcome, makespans


def test_overlap_ablation(benchmark, artefacts):
    ooo, (ooo_makespan, ooo_serial, overlap) = benchmark.pedantic(
        _run, args=(True,), rounds=1, iterations=1
    )
    base, (in_makespan, in_serial, in_overlap) = _run(False)

    # The scheduling contract: mode changes the schedule, nothing else.
    assert ooo.result == base.result
    assert ooo.breakdown == base.breakdown
    assert in_overlap == 0.0
    assert in_makespan == in_serial
    assert ooo_serial == in_makespan  # same command stream, same drain

    saved = 1.0 - ooo_makespan / in_makespan
    artefacts["ablation_overlap"] = (
        f"Out-of-order ablation (LUD n={N}, shared-nothing): makespan "
        f"{in_makespan:.0f} ns in-order vs {ooo_makespan:.0f} ns "
        f"out-of-order ({saved:.1%} shorter, {overlap:.0f} ns overlapped)"
    )
    print()
    print(artefacts["ablation_overlap"])

    # Strict win: the pipeline has real independence to exploit.
    assert ooo_makespan < in_makespan
    assert overlap > 0.0
