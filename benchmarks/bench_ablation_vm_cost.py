"""Ablation: sensitivity of the headline comparison to the calibrated
VM-interpretation cost (DESIGN.md §6).

The paper attributes Ensemble's overhead to bytecode interpretation and
proposes a JIT as future work.  This ablation sweeps the per-bytecode
charge and reports the Ensemble/C-OpenCL total ratio for matmul on the
GPU: at JIT-like cost (1 ns) the gap nearly closes; at a naive
interpreter's cost (16 ns) it widens — the qualitative conclusion
("commensurate, overhead is the VM") is robust across the sweep.
"""

import pytest

from repro.apps import matmul
from repro.harness import scaled_devices
from repro.runtime import vm as vm_module

SWEEP = (1.0, 4.0, 16.0)


def _ratio(bytecode_ns: float) -> float:
    original = vm_module.BYTECODE_NS
    vm_module.BYTECODE_NS = bytecode_ns
    try:
        with scaled_devices(0.08, 16.0):
            ens = matmul.run_ensemble(32, "GPU")
            api = matmul.run_api(32, "GPU")
        return ens.total_ns / api.total_ns
    finally:
        vm_module.BYTECODE_NS = original


def test_vm_cost_ablation(benchmark, artefacts):
    ratios = benchmark.pedantic(
        lambda: {ns: _ratio(ns) for ns in SWEEP}, rounds=1, iterations=1
    )
    lines = ["VM interpretation-cost ablation (matmul GPU, n=32):"]
    for ns, ratio in ratios.items():
        lines.append(f"  BYTECODE_NS={ns:>4.1f} ns -> Ensemble/C = {ratio:.2f}x")
    artefacts["ablation_vm"] = "\n".join(lines)
    print()
    print(artefacts["ablation_vm"])

    # Monotone in the interpretation cost...
    assert ratios[1.0] <= ratios[4.0] <= ratios[16.0]
    # ...JIT-like cost nearly closes the gap...
    assert ratios[1.0] < 1.3
    # ...and even a naive interpreter stays within an order of magnitude
    # (the paper's "commensurate performance" claim is not knife-edge).
    assert ratios[16.0] < 6.0
