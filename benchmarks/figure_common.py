"""Shared helpers for the Figure-3 benchmark files."""

from __future__ import annotations

from repro.harness import FigureResult, build_figure_by_id, render_figure


def regenerate(benchmark, artefacts, figure: str) -> FigureResult:
    """Build one figure under pytest-benchmark and print it."""
    result = benchmark.pedantic(
        build_figure_by_id, args=(figure,), rounds=1, iterations=1
    )
    text = render_figure(result)
    artefacts[f"figure{figure}"] = text
    print()
    print(text)
    return result


def total(result: FigureResult, label: str) -> float:
    bar = result.bar(label)
    assert not bar.failed, f"{label} produced no result: {bar.note}"
    return bar.total


def segment(result: FigureResult, label: str, name: str) -> float:
    bar = result.bar(label)
    assert not bar.failed
    return bar.segments.get(name, 0.0)
