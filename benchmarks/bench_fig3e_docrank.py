"""Regenerates Figure 3e: document ranking (the real-world app).

Paper shape asserted:

* the Ensemble *kernel* segment exceeds C-OpenCL's (forced scratch-array
  initialisation — no NULL values — and if/else where C uses int/bool
  overloading and a ternary);
* the Ensemble *communication* segment is smaller than C-OpenCL's — the
  unexpected movability win: repeated kernel invocations never re-copy
  the unchanged corpus, while the C host copies it every run;
* the PGI-style pragma compiler cannot compile the source for the GPU
  at all; the gcc/OpenMP CPU path runs but is the slowest CPU variant.
"""

from figure_common import regenerate, segment, total


def test_figure_3e(benchmark, artefacts):
    fig = regenerate(benchmark, artefacts, "3e")

    # Kernel: Ensemble > C (initialisation + control structures).
    assert segment(fig, "Ensemble GPU", "kernel") > segment(
        fig, "C-OpenCL GPU", "kernel"
    )
    # Communication: Ensemble < C (lazy residency across repeats).
    ens_comm = segment(fig, "Ensemble GPU", "to_device") + segment(
        fig, "Ensemble GPU", "from_device"
    )
    c_comm = segment(fig, "C-OpenCL GPU", "to_device") + segment(
        fig, "C-OpenCL GPU", "from_device"
    )
    assert ens_comm < 0.5 * c_comm
    # No OpenACC GPU result: the compiler rejected the code.
    acc_gpu = fig.bar("C-OpenACC GPU")
    assert acc_gpu.failed and "rejected" in acc_gpu.note
    # The OpenMP CPU fallback is the slowest CPU variant.
    assert total(fig, "C-OpenACC CPU") > total(fig, "C-OpenCL CPU")
    assert total(fig, "C-OpenACC CPU") > total(fig, "Ensemble CPU")
