"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artefacts
(Table 1, Figures 3a-3e, the Figure-4 pipeline, the movability
ablation).  The *reported numbers* are deterministic simulated times
from the cost model; pytest-benchmark's wall-clock numbers measure the
reproduction stack itself.  Each benchmark prints the regenerated
artefact so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's evaluation section end to end.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def artefacts() -> dict:
    """Collects rendered artefacts; printed at the end of the session."""
    return {}
