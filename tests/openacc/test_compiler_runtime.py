"""Pragma compiler + executor behaviour."""

import pytest

from repro.errors import AccUnsupportedError
from repro.openacc import AccProgram, compile_acc


class TestRegionClassification:
    def test_simple_loop_becomes_kernel(self):
        acc = compile_acc(
            """
            void f(__global float *a, int n) {
                #pragma acc parallel loop copy(a)
                for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
            }
            """
        )
        assert list(acc.loop_regions.values())[0].kind == "kernel"

    def test_scalar_dependency_falls_back(self):
        acc = compile_acc(
            """
            float f(__global float *a, int n) {
                float acc = 0.0;
                #pragma acc parallel loop copyin(a)
                for (int i = 0; i < n; i++) { acc = acc + a[i]; }
                return acc;
            }
            """
        )
        region = list(acc.loop_regions.values())[0]
        assert region.kind == "sequential"
        assert "scalar" in region.reason

    def test_shifted_array_dependency_falls_back(self):
        acc = compile_acc(
            """
            void f(__global float *a, int n) {
                #pragma acc parallel loop copy(a)
                for (int i = 1; i < n; i++) { a[i] = a[i - 1] + a[i]; }
            }
            """
        )
        region = list(acc.loop_regions.values())[0]
        assert region.kind == "sequential"
        assert "array" in region.reason

    def test_lud_style_access_is_parallelised(self):
        # m[i*n+k] reads m[k*n+k]: the loop variable is not additively
        # shifted, so this must NOT be flagged (paper: LUD worked).
        acc = compile_acc(
            """
            void f(__global float *m, int n, int k) {
                #pragma acc parallel loop copy(m) gang vector
                for (int i = k + 1; i < n; i++) {
                    m[i * n + k] = m[i * n + k] / m[k * n + k];
                }
            }
            """
        )
        assert list(acc.loop_regions.values())[0].kind == "kernel"

    def test_break_falls_back(self):
        acc = compile_acc(
            """
            void f(__global float *a, int n) {
                #pragma acc parallel loop copy(a)
                for (int i = 0; i < n; i++) {
                    if (a[i] < 0.0) { break; }
                    a[i] = 1.0;
                }
            }
            """
        )
        assert list(acc.loop_regions.values())[0].kind == "sequential"

    def test_function_call_aborts_gpu_compilation(self):
        source = """
        float g(float x) { return x + 1.0; }
        void f(__global float *a, int n) {
            #pragma acc parallel loop copy(a)
            for (int i = 0; i < n; i++) { a[i] = g(a[i]); }
        }
        """
        with pytest.raises(AccUnsupportedError):
            compile_acc(source)
        # OpenMP host compilation accepts it (the paper's gcc path).
        acc = compile_acc(source, allow_calls=True)
        assert list(acc.loop_regions.values())[0].kind == "kernel"

    def test_irregular_loop_disables_vectorisation(self):
        acc = compile_acc(
            """
            void f(__global int *a, int n) {
                #pragma acc parallel loop copy(a) gang worker vector
                for (int i = 0; i < n; i++) {
                    int v = a[i];
                    while (v > 1) { v = v / 2; }
                    a[i] = v;
                }
            }
            """
        )
        region = list(acc.loop_regions.values())[0]
        assert region.kind == "kernel"
        assert region.local_size == 1  # vectorisation defeated

    def test_regular_tuned_loop_uses_vector_length(self):
        acc = compile_acc(
            """
            void f(__global int *a, int n) {
                #pragma acc parallel loop copy(a) gang vector
                for (int i = 0; i < n; i++) { a[i] = i; }
            }
            """
        )
        assert list(acc.loop_regions.values())[0].local_size == 256


class TestExecution:
    def test_sequential_fallback_is_still_correct(self):
        program = AccProgram(
            """
            void scan(__global float *a, int n) {
                #pragma acc parallel loop copy(a)
                for (int i = 1; i < n; i++) { a[i] = a[i - 1] + a[i]; }
            }
            """
        )
        a = [1.0, 2.0, 3.0, 4.0]
        program.run("scan", [a, 4])
        assert a == [1.0, 3.0, 6.0, 10.0]

    def test_collapse_covers_full_2d_space(self):
        program = AccProgram(
            """
            void fill(__global int *out, int h, int w) {
                #pragma acc parallel loop collapse(2) copyout(out) gang vector
                for (int y = 0; y < h; y++) {
                    for (int x = 0; x < w; x++) {
                        out[y * w + x] = y * 100 + x;
                    }
                }
            }
            """
        )
        out = [0] * 15
        program.run("fill", [out, 3, 5])
        assert out == [y * 100 + x for y in range(3) for x in range(5)]

    def test_data_region_keeps_arrays_resident(self):
        program = AccProgram(
            """
            void steps(__global float *a, int n, int reps) {
                #pragma acc data copy(a[0:n])
                for (int r = 0; r < reps; r++) {
                    #pragma acc parallel loop copy(a) gang vector
                    for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
                }
            }
            """
        )
        a = [0.0] * 64
        result = program.run("steps", [a, 64, 5])
        assert a == [5.0] * 64
        # One copy in + one copy out despite 5 kernel launches.
        assert result.ledger.bytes_to_device == 64 * 4
        assert result.ledger.bytes_from_device == 64 * 4
        assert result.ledger.kernel_launches == 5

    def test_region_without_data_clause_copies_every_launch(self):
        program = AccProgram(
            """
            void steps(__global float *a, int n, int reps) {
                for (int r = 0; r < reps; r++) {
                    #pragma acc parallel loop copy(a) gang vector
                    for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
                }
            }
            """
        )
        a = [0.0] * 64
        result = program.run("steps", [a, 64, 5])
        assert a == [5.0] * 64
        assert result.ledger.bytes_to_device == 5 * 64 * 4

    def test_reduction_min_and_sum(self):
        program = AccProgram(
            """
            float minof(__global float *a, int n) {
                float m = a[0];
                #pragma acc parallel loop reduction(min:m) copyin(a)
                for (int i = 0; i < n; i++) {
                    if (a[i] < m) { m = a[i]; }
                }
                return m;
            }
            float sumof(__global float *a, int n) {
                float s = 0.0;
                #pragma acc parallel loop reduction(+:s) copyin(a) gang vector
                for (int i = 0; i < n; i++) { s = s + a[i]; }
                return s;
            }
            """
        )
        data = [float(x) for x in (5, 3, 8, 1, 9, 2, 7, 4)]
        assert program.run("minof", [data, 8]).value == 1.0
        assert program.run("sumof", [data, 8]).value == sum(data)

    def test_report_records_decisions(self):
        program = AccProgram(
            """
            void f(__global float *a, int n) {
                #pragma acc parallel loop copy(a)
                for (int i = 0; i < n; i++) { a[i] = 0.0; }
            }
            """
        )
        assert any("kernel" in line for line in program.report)

    def test_cpu_and_gpu_targets_agree(self):
        source = """
        void doubleit(__global float *a, int n) {
            #pragma acc parallel loop copy(a) gang vector
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
        }
        """
        a1 = [1.0, 2.0, 3.0, 4.0]
        a2 = list(a1)
        AccProgram(source, "GPU").run("doubleit", [a1, 4])
        AccProgram(source, "CPU").run("doubleit", [a2, 4])
        assert a1 == a2 == [2.0, 4.0, 6.0, 8.0]
