"""Pragma-line parsing."""

import pytest

from repro.errors import AccError
from repro.openacc.pragmas import parse_pragma


class TestForms:
    def test_parallel_loop(self):
        pragma = parse_pragma("#pragma acc parallel loop", 3)
        assert pragma.kind == "parallel_loop"
        assert pragma.line == 3
        assert not pragma.tuned

    def test_kernels_alias(self):
        assert parse_pragma("#pragma acc kernels", 1).kind == "parallel_loop"

    def test_data_region(self):
        pragma = parse_pragma("#pragma acc data copy(m[0:n*n])", 1)
        assert pragma.kind == "data"
        assert pragma.copy == ["m"]

    def test_omp_parallel_for(self):
        pragma = parse_pragma("#pragma omp parallel for", 1)
        assert pragma.kind == "parallel_loop"

    def test_other_omp_directives_ignored(self):
        assert parse_pragma("#pragma omp barrier", 1) is None

    def test_non_pragma_directive_ignored(self):
        assert parse_pragma("#include <stdio.h>", 1) is None

    def test_unknown_acc_directive_rejected(self):
        with pytest.raises(AccError):
            parse_pragma("#pragma acc teleport", 1)


class TestClauses:
    def test_data_clauses_with_sections(self):
        pragma = parse_pragma(
            "#pragma acc parallel loop copyin(a[0:n], b) copyout(c) copy(d)",
            1,
        )
        assert pragma.copyin == ["a", "b"]
        assert pragma.copyout == ["c"]
        assert pragma.copy == ["d"]

    def test_gang_worker_vector_mark_tuned(self):
        pragma = parse_pragma("#pragma acc parallel loop gang worker vector", 1)
        assert pragma.gang and pragma.worker and pragma.vector
        assert pragma.tuned

    def test_collapse_and_num_gangs(self):
        pragma = parse_pragma(
            "#pragma acc parallel loop collapse(2) num_gangs(8)", 1
        )
        assert pragma.collapse == 2
        assert pragma.num_gangs == 8

    def test_reduction_clause(self):
        pragma = parse_pragma(
            "#pragma acc parallel loop reduction(min:m)", 1
        )
        assert pragma.reduction == [("min", "m")]

    @pytest.mark.parametrize("op", ["min", "max", "+"])
    def test_reduction_operators(self, op):
        pragma = parse_pragma(
            f"#pragma acc parallel loop reduction({op}:x)", 1
        )
        assert pragma.reduction == [(op, "x")]

    def test_unsupported_reduction_operator(self):
        with pytest.raises(AccError):
            parse_pragma("#pragma acc parallel loop reduction(*:x)", 1)

    def test_malformed_reduction(self):
        with pytest.raises(AccError):
            parse_pragma("#pragma acc parallel loop reduction(m)", 1)

    def test_unknown_clause_rejected(self):
        with pytest.raises(AccError, match="clause"):
            parse_pragma("#pragma acc parallel loop sparkle(3)", 1)

    def test_bad_name_in_clause(self):
        with pytest.raises(AccError):
            parse_pragma("#pragma acc parallel loop copy(1abc)", 1)
