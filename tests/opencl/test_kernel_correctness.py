"""A gallery of diverse kernels validated against numpy oracles, run
through the full substrate (program build, arg binding, dispatch)."""

import numpy as np
import pytest

from repro.opencl import Buffer, CommandQueue, Context, Program, find_device


@pytest.fixture()
def gpu():
    device = find_device("GPU")
    ctx = Context([device])
    queue = CommandQueue(ctx, device)
    return ctx, queue


def dispatch(ctx, queue, source, name, buffers, scalars, gsz, lsz=None):
    program = Program(ctx, source).build()
    kernel = program.create_kernel(name)
    index = 0
    for buf in buffers:
        kernel.set_arg(index, buf)
        index += 1
    for scalar in scalars:
        kernel.set_arg(index, scalar)
        index += 1
    queue.enqueue_nd_range_kernel(kernel, gsz, lsz)


def to_buffer(ctx, queue, values, dtype="float"):
    buf = Buffer(ctx, len(values), dtype)
    queue.enqueue_write_buffer(buf, list(values))
    return buf


def read(queue, buf):
    out = [0.0] * buf.n_elements if buf.dtype == "float" else [0] * buf.n_elements
    queue.enqueue_read_buffer(buf, out)
    return out


class TestStencil:
    SOURCE = """
    __kernel void blur3(__global float *src, __global float *dst, int n) {
        int i = get_global_id(0);
        if (i > 0 && i < n - 1) {
            dst[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0;
        } else {
            dst[i] = src[i];
        }
    }
    """

    def test_matches_numpy(self, gpu):
        ctx, queue = gpu
        n = 64
        rng = np.random.default_rng(7)
        data = rng.uniform(-1, 1, n).tolist()
        src = to_buffer(ctx, queue, data)
        dst = Buffer(ctx, n)
        dispatch(ctx, queue, self.SOURCE, "blur3", [src, dst], [n], [n])
        out = np.array(read(queue, dst))
        expected = np.array(data, dtype=float)
        inner = (expected[:-2] + expected[1:-1] + expected[2:]) / 3.0
        assert np.allclose(out[1:-1], inner)
        assert out[0] == data[0] and out[-1] == data[-1]


class TestMatVec:
    SOURCE = """
    __kernel void matvec(__global float *m, __global float *v,
                         __global float *out, int cols) {
        int row = get_global_id(0);
        float acc = 0.0;
        for (int c = 0; c < cols; c++) {
            acc += m[row * cols + c] * v[c];
        }
        out[row] = acc;
    }
    """

    def test_matches_numpy(self, gpu):
        ctx, queue = gpu
        rows, cols = 12, 7
        rng = np.random.default_rng(11)
        m = rng.uniform(-2, 2, (rows, cols))
        v = rng.uniform(-2, 2, cols)
        buf_m = to_buffer(ctx, queue, m.flatten().tolist())
        buf_v = to_buffer(ctx, queue, v.tolist())
        buf_o = Buffer(ctx, rows)
        dispatch(
            ctx, queue, self.SOURCE, "matvec",
            [buf_m, buf_v, buf_o], [cols], [rows],
        )
        assert np.allclose(read(queue, buf_o), m @ v)


class TestGroupScan:
    SOURCE = """
    __kernel void group_scan(__global int *data, __global int *out) {
        __local int tile[8];
        int lid = get_local_id(0);
        int gid = get_global_id(0);
        tile[lid] = data[gid];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int offset = 1; offset < 8; offset = offset * 2) {
            int add = 0;
            if (lid >= offset) { add = tile[lid - offset]; }
            barrier(CLK_LOCAL_MEM_FENCE);
            tile[lid] = tile[lid] + add;
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        out[gid] = tile[lid];
    }
    """

    def test_inclusive_scan_per_group(self, gpu):
        ctx, queue = gpu
        data = list(range(1, 17))
        src = to_buffer(ctx, queue, data, "int")
        dst = Buffer(ctx, 16, "int")
        dispatch(ctx, queue, self.SOURCE, "group_scan", [src, dst], [],
                 [16], [8])
        out = read(queue, dst)
        expected = (
            np.cumsum(data[:8]).tolist() + np.cumsum(data[8:]).tolist()
        )
        assert out == expected


class TestHistogram:
    SOURCE = """
    __kernel void count_bins(__global int *values, __global int *hist,
                             int n, int bins) {
        int b = get_global_id(0);
        int count = 0;
        for (int i = 0; i < n; i++) {
            if (values[i] % bins == b) { count++; }
        }
        hist[b] = count;
    }
    """

    def test_matches_numpy(self, gpu):
        ctx, queue = gpu
        rng = np.random.default_rng(3)
        values = rng.integers(0, 100, 200).tolist()
        bins = 8
        buf_v = to_buffer(ctx, queue, values, "int")
        buf_h = Buffer(ctx, bins, "int")
        dispatch(
            ctx, queue, self.SOURCE, "count_bins",
            [buf_v, buf_h], [len(values), bins], [bins], [bins],
        )
        out = read(queue, buf_h)
        expected = [sum(1 for v in values if v % bins == b) for b in range(bins)]
        assert out == expected


class TestTranspose2D:
    SOURCE = """
    __kernel void transpose(__global float *src, __global float *dst,
                            int rows, int cols) {
        int c = get_global_id(0);
        int r = get_global_id(1);
        dst[c * rows + r] = src[r * cols + c];
    }
    """

    def test_matches_numpy(self, gpu):
        ctx, queue = gpu
        rows, cols = 6, 4
        rng = np.random.default_rng(5)
        m = rng.uniform(0, 1, (rows, cols))
        src = to_buffer(ctx, queue, m.flatten().tolist())
        dst = Buffer(ctx, rows * cols)
        dispatch(
            ctx, queue, self.SOURCE, "transpose",
            [src, dst], [rows, cols], [cols, rows], [2, 2],
        )
        out = np.array(read(queue, dst)).reshape(cols, rows)
        assert np.allclose(out, m.T)


class TestMathKernels:
    SOURCE = """
    __kernel void wave(__global float *x, __global float *out, int n) {
        int i = get_global_id(0);
        if (i < n) {
            out[i] = sin(x[i]) * exp(-x[i] * x[i] / 2.0)
                     + pow(fabs(x[i]), 0.5);
        }
    }
    """

    def test_matches_numpy(self, gpu):
        ctx, queue = gpu
        n = 48
        x = np.linspace(-3, 3, n)
        buf_x = to_buffer(ctx, queue, x.tolist())
        buf_o = Buffer(ctx, n)
        dispatch(ctx, queue, self.SOURCE, "wave", [buf_x, buf_o], [n], [n])
        expected = np.sin(x) * np.exp(-x * x / 2.0) + np.sqrt(np.abs(x))
        assert np.allclose(read(queue, buf_o), expected)
