"""Every demotion from the vectorised tier is visible as a
``dispatch.fallback`` counter with a reason string, and the iteration
cap on masked loops falls back to the scalar tier without corrupting
buffers."""

from __future__ import annotations

import pytest

from repro import kcache
from repro.kir import npcodegen
from repro.opencl import Buffer, CommandQueue, Context, Program, find_device
from repro.opencl import dispatch
from repro.trace import tracing

pytestmark = pytest.mark.skipif(
    not npcodegen.AVAILABLE, reason="numpy not installed"
)

ELIGIBLE = """
__kernel void add1(__global int *a) {
    int i = get_global_id(0);
    a[i] = a[i] + 1;
}
"""

DIVERGENT_BARRIER = """
__kernel void bad(__global int *out) {
    int i = get_global_id(0);
    if (i == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
    out[i] = i;
}
"""

IMPURE_CALL = """
int bump(__global int *a, int i) { a[i] = a[i] + 1; return a[i]; }
__kernel void k(__global int *a) {
    int i = get_global_id(0);
    bump(a, i);
}
"""

# Per-lane trip counts vary with the global id, so the loop is masked
# and subject to the iteration cap; stores accumulate inside the loop,
# so a mid-loop cap abort would leave partial sums behind unless the
# dispatcher restores the pre-dispatch buffer contents.
CAPPED_LOOP = """
__kernel void accum(__global int *out) {
    int i = get_global_id(0);
    for (int j = 0; j < i % 7 + 5; j++) {
        out[i] = out[i] + 1;
    }
}
"""


def _run(source, name, n=512, lsz=8, init=0):
    device = find_device("GPU")
    ctx = Context([device])
    queue = CommandQueue(ctx, device)
    program = Program(ctx, source).build()
    kernel = program.create_kernel(name)
    buf = Buffer(ctx, n, "int")
    queue.enqueue_write_buffer(buf, [init] * n)
    kernel.set_arg(0, buf)
    queue.enqueue_nd_range_kernel(kernel, [n], [lsz])
    queue.finish()
    return list(buf.data)


class TestFallbackCounters:
    def test_eligible_dispatch_counts_nothing(self):
        with tracing() as tr:
            out = _run(ELIGIBLE, "add1")
        assert out == [1] * 512
        assert tr.counter("dispatch.fallback") == 0

    def test_small_ndrange_reason(self):
        with tracing() as tr:
            out = _run(ELIGIBLE, "add1", n=32, lsz=8)
        assert out == [1] * 32
        assert tr.counter("dispatch.fallback") == 1
        assert tr.counter("dispatch.fallback.small-ndrange") == 1

    def test_divergent_barrier_reason(self):
        with tracing() as tr:
            out = _run(DIVERGENT_BARRIER, "bad", n=512, lsz=1)
        assert out == list(range(512))
        assert tr.counter("dispatch.fallback") == 1
        assert tr.counter("dispatch.fallback.barrier") == 1

    def test_user_call_reason(self):
        with tracing() as tr:
            out = _run(IMPURE_CALL, "k")
        assert out == [1] * 512
        assert tr.counter("dispatch.fallback") == 1
        assert tr.counter("dispatch.fallback.user-call") == 1

    def test_legacy_mode_not_counted_as_fallback(self):
        dispatch.set_legacy_execution(True)
        try:
            with tracing() as tr:
                out = _run(ELIGIBLE, "add1")
        finally:
            dispatch.set_legacy_execution(False)
        assert out == [1] * 512
        assert tr.counter("dispatch.fallback") == 0


class TestIterationCap:
    def test_cap_falls_back_and_restores_buffers(self, monkeypatch):
        kcache.clear()  # force a rebuild under the tiny cap
        monkeypatch.setattr(npcodegen, "LOOP_ITER_CAP", 3)
        with tracing() as tr:
            out = _run(CAPPED_LOOP, "accum")
        # Scalar rerun from the restored (all-zero) buffer: exact sums.
        assert out == [i % 7 + 5 for i in range(512)]
        assert tr.counter("dispatch.fallback") == 1
        assert tr.counter("dispatch.fallback.iter-cap") == 1

    def test_cap_not_hit_stays_vectorised(self):
        kcache.clear()  # drop any module built under a monkeypatched cap
        assert npcodegen.LOOP_ITER_CAP >= 1 << 16
        with tracing() as tr:
            out = _run(CAPPED_LOOP, "accum")
        assert out == [i % 7 + 5 for i in range(512)]
        assert tr.counter("dispatch.fallback") == 0

    def test_cap_under_compaction_restores_and_falls_back(self, monkeypatch):
        """A runaway loop that compacts mid-flight must still restore
        buffers exactly on the cap abort and rerun on the warp-fold.

        Trip counts diverge per lane (`i % 7 + 5` rounds), so with
        compaction forced on the loop gathers to its active subset after
        the fastest lanes exit — and *then* hits the monkeypatched cap.
        The scatter/restore path must unwind both the compaction frame
        and the partial stores.
        """
        kcache.clear()  # force a rebuild under the tiny cap
        monkeypatch.setattr(npcodegen, "LOOP_ITER_CAP", 7)
        saved = dispatch.configure()
        dispatch.configure(compact_density=1.0, compact_check_every=1)
        try:
            with tracing() as tr:
                out = _run(CAPPED_LOOP, "accum", init=3)
        finally:
            dispatch.configure(**saved)
        # Scalar rerun from the restored (all-threes) buffer: exact sums.
        assert out == [3 + i % 7 + 5 for i in range(512)]
        assert tr.counter("dispatch.fallback") == 1
        assert tr.counter("dispatch.fallback.iter-cap") == 1
        # The compaction events before the abort are still reported.
        assert tr.counter("dispatch.compact") >= 1
