"""Multi-device NDRange splitting via ``Context.enqueue_nd_range``.

The split contract (docs/ARCHITECTURE.md, "Multi-device dispatch"): a
single dispatch on a multi-device context executes the kernel *once*,
so buffer contents are bit-identical to single-device execution; each
device is charged its own work-group slice (folded with its own SIMD
width) plus the broadcast/gather transfer traffic of joining the split.
"""

from __future__ import annotations

import pytest

from repro.opencl import (
    Buffer,
    COPY_HOST_PTR,
    Context,
    Program,
    READ_WRITE,
    group_warp_costs,
)
from repro.opencl.costmodel import cpu_spec, gpu_spec
from repro.opencl.dispatch import (
    device_weight,
    multi_device_kernel_ns,
    split_share_counts,
)
from repro.opencl.platform import Device
from repro.errors import CLInvalidValue
from repro.trace import tracing
from repro.apps.matmul.runners import generate
from repro.apps.matmul.sources import KERNEL_SOURCE

N = 32  # 4 outermost work-group rows with 8x8 groups


def _gpu():
    # A scaled-down GPU so the CPU's share does not round to zero.
    return Device(gpu_spec(scale=0.1, name="split-gpu"))


def _cpu():
    return Device(cpu_spec(name="split-cpu"))


def _matmul(context, devices):
    program = Program(context, KERNEL_SOURCE).build(list(devices))
    a, b = generate(N)
    init = (READ_WRITE, COPY_HOST_PTR)
    buf_a = Buffer(context, N * N, flags=init, host_data=a)
    buf_b = Buffer(context, N * N, flags=init, host_data=b)
    buf_c = Buffer(context, N * N)
    kernel = program.create_kernel("matmul")
    kernel.set_arg(0, buf_a)
    kernel.set_arg(1, buf_b)
    kernel.set_arg(2, buf_c)
    kernel.set_arg(3, N)
    return kernel, (buf_a, buf_b, buf_c)


class TestShareCounts:
    def test_shares_sum_to_total(self):
        weights = [device_weight(gpu_spec()), device_weight(cpu_spec())]
        for total in range(0, 40):
            assert sum(split_share_counts(total, weights)) == total

    def test_proportionality(self):
        assert split_share_counts(4, [3.0, 1.0]) == [3, 1]
        assert split_share_counts(10, [1.0, 1.0]) == [5, 5]

    def test_largest_remainder_tie_breaks_by_position(self):
        assert split_share_counts(1, [1.0, 1.0]) == [1, 0]
        assert split_share_counts(3, [1.0, 1.0]) == [2, 1]

    def test_zero_weight_device_gets_nothing(self):
        assert split_share_counts(7, [1.0, 0.0]) == [7, 0]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(CLInvalidValue):
            split_share_counts(4, [0.0, 0.0])
        with pytest.raises(CLInvalidValue):
            split_share_counts(-1, [1.0])

    def test_deterministic(self):
        weights = [2.7, 1.3, 0.9]
        assert split_share_counts(17, weights) == split_share_counts(
            17, weights
        )


class TestWarpSliceIdentity:
    def test_slice_folds_equal_whole_fold(self):
        """Folding a work-group-aligned slice yields exactly the
        corresponding rows of the whole-range fold (the property that
        makes the split's pricing consistent with single-device)."""
        gsz, lsz, simd = (8, 8), (4, 4), 4
        item_ops = [(i * 13 + 5) % 17 + 1 for i in range(64)]
        whole = group_warp_costs(item_ops, gsz, lsz, simd)
        # Slice along the outermost dim: first group row = items 0..31.
        half = group_warp_costs(item_ops[:32], (8, 4), lsz, simd)
        assert half == whole[: len(whole) // 2]
        rest = group_warp_costs(item_ops[32:], (8, 4), lsz, simd)
        assert rest == whole[len(whole) // 2 :]


class TestMultiDeviceDispatch:
    def _single_device_reference(self):
        gpu = _gpu()
        ctx = Context([gpu])
        kernel, bufs = _matmul(ctx, [gpu])
        ctx.enqueue_nd_range(kernel, [N, N], [8, 8])
        return ctx, bufs

    def _split_run(self):
        gpu, cpu = _gpu(), _cpu()
        ctx = Context([gpu, cpu])
        kernel, bufs = _matmul(ctx, [gpu, cpu])
        events = ctx.enqueue_nd_range(kernel, [N, N], [8, 8])
        return ctx, bufs, events, (gpu, cpu)

    def test_split_actually_happens(self):
        _, _, events, (gpu, cpu) = self._split_run()
        kernel_events = [e for e in events if e.command == "NDRANGE_KERNEL"]
        assert len(kernel_events) == 2  # both devices participate

    def test_bit_identical_to_single_device(self):
        _, (_, _, ref_c) = self._single_device_reference()
        _, (_, _, split_c), _, _ = self._split_run()
        assert list(split_c.data) == list(ref_c.data)

    def test_each_device_charged_its_slice(self):
        ctx, _, events, (gpu, cpu) = self._split_run()
        kernel_events = [e for e in events if e.command == "NDRANGE_KERNEL"]
        assert ctx.ledger.kernel_launches == 2
        assert ctx.ledger.kernel_ns == pytest.approx(
            sum(e.duration_ns for e in kernel_events)
        )
        # The secondary device paid broadcast (inputs) + gather (its
        # share of the output) on the host link.
        assert ctx.ledger.bytes_to_device == 2 * N * N * 4  # a and b
        assert 0 < ctx.ledger.bytes_from_device < N * N * 4

    def test_per_device_costs_visible_in_summary(self):
        with tracing() as tr:
            ctx, _, _, (gpu, cpu) = self._split_run()
        summary = tr.summary(with_counters=True, by_track=True)
        tracks = summary["tracks"]
        assert f"device/{gpu.name}" in tracks
        assert f"device/{cpu.name}" in tracks
        assert tracks[f"device/{gpu.name}"]["kernel"] > 0
        assert tracks[f"device/{cpu.name}"]["kernel"] > 0
        assert tracks[f"device/{cpu.name}"]["to_device"] > 0
        assert summary["counters"]["dispatch.split"] == 1
        assert summary["counters"]["dispatch.split.devices"] == 2

    def test_single_device_context_delegates(self):
        gpu = _gpu()
        ctx = Context([gpu])
        kernel, _ = _matmul(ctx, [gpu])
        events = ctx.enqueue_nd_range(kernel, [N, N], [8, 8])
        assert len(events) == 1
        assert ctx.ledger.bytes_to_device == 0  # no broadcast charged

    def test_lopsided_weights_degrade_to_one_device(self):
        # With the full-size GPU the CPU's share rounds to zero and the
        # dispatch must quietly stay single-device.
        gpu = Device(gpu_spec(name="big-gpu"))
        cpu = _cpu()
        ctx = Context([gpu, cpu])
        kernel, _ = _matmul(ctx, [gpu, cpu])
        events = ctx.enqueue_nd_range(kernel, [N, N], [8, 8])
        assert len(events) == 1
        assert ctx.ledger.bytes_to_device == 0

    def test_deterministic_split_pricing(self):
        ctx1, _, ev1, _ = self._split_run()
        ctx2, _, ev2, _ = self._split_run()
        assert [e.duration_ns for e in ev1] == [e.duration_ns for e in ev2]
        assert ctx1.ledger.kernel_ns == ctx2.ledger.kernel_ns


class TestMultiDeviceKernelNs:
    def test_parts_cover_the_range(self):
        gpu, cpu = _gpu(), _cpu()
        ctx = Context([gpu, cpu])
        kernel, _ = _matmul(ctx, [gpu, cpu])
        entries = kernel.bound_entries(ctx)
        shares = split_share_counts(
            N // 8, [device_weight(gpu.spec), device_weight(cpu.spec)]
        )
        parts = multi_device_kernel_ns(
            kernel.runner(gpu),
            [gpu.spec, cpu.spec],
            shares,
            entries,
            (N, N),
            (8, 8),
        )
        items = sum(p[1] for p in parts if p is not None)
        assert items == N * N
        for part, share in zip(parts, shares):
            if share == 0:
                assert part is None
            else:
                sub_gsz, n_items, ns = part
                assert sub_gsz == (N, share * 8)
                assert ns > 0
