"""Property tests for the deterministic cost model.

The cost model is the paper substitute for real hardware, so its
invariants carry the whole evaluation: pricing must be deterministic,
monotone in the amount of work, pay for SIMD divergence as the max of a
warp's lanes, and price transfers as latency + bytes/bandwidth with
asymmetric host-to-device / device-to-host links.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opencl.costmodel import (
    DeviceSpec,
    cpu_spec,
    gpu_spec,
    _group_warp_costs,
    _schedule,
)


def make_spec(compute_units=2, simd_width=4, ops_per_ns=1.0,
              kernel_launch_ns=100.0):
    return DeviceSpec(
        name="prop-test device",
        device_type="GPU",
        compute_units=compute_units,
        simd_width=simd_width,
        ops_per_ns=ops_per_ns,
        h2d_bytes_per_ns=12.0,
        d2h_bytes_per_ns=10.0,
        transfer_latency_ns=400.0,
        kernel_launch_ns=kernel_launch_ns,
        api_call_ns=300.0,
        compile_ns=1000.0,
        max_work_group_size=256,
    )


@st.composite
def ndrange_1d(draw):
    """A 1-D dispatch: (item_ops, global_size, local_size)."""
    local = draw(st.integers(min_value=1, max_value=8))
    groups = draw(st.integers(min_value=1, max_value=6))
    n = local * groups
    item_ops = draw(
        st.lists(st.integers(min_value=0, max_value=100),
                 min_size=n, max_size=n)
    )
    return item_ops, (n,), (local,)


class TestDeterminism:
    @settings(deadline=None)
    @given(ndrange_1d(),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=8))
    def test_kernel_pricing_is_deterministic(self, dispatch, cu, simd):
        item_ops, gsz, lsz = dispatch
        spec = make_spec(compute_units=cu, simd_width=simd)
        first = spec.kernel_ns(item_ops, gsz, lsz)
        assert all(
            spec.kernel_ns(item_ops, gsz, lsz) == first for _ in range(3)
        )

    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 20),
           st.booleans())
    def test_transfer_pricing_is_deterministic(self, nbytes, to_device):
        spec = make_spec()
        first = spec.transfer_ns(nbytes, to_device)
        assert spec.transfer_ns(nbytes, to_device) == first


class TestMonotonicity:
    @settings(deadline=None)
    @given(ndrange_1d(),
           st.data(),
           st.integers(min_value=1, max_value=50))
    def test_more_ops_per_item_never_cheaper(self, dispatch, data, delta):
        item_ops, gsz, lsz = dispatch
        spec = make_spec()
        base = spec.kernel_ns(item_ops, gsz, lsz)
        idx = data.draw(
            st.integers(min_value=0, max_value=len(item_ops) - 1)
        )
        bumped = list(item_ops)
        bumped[idx] += delta
        assert spec.kernel_ns(bumped, gsz, lsz) >= base

    @settings(deadline=None)
    @given(ndrange_1d(), st.data())
    def test_more_work_items_never_cheaper(self, dispatch, data):
        """Appending one more work-group can only grow the makespan."""
        item_ops, (n,), (local,) = dispatch
        spec = make_spec()
        base = spec.kernel_ns(item_ops, (n,), (local,))
        extra = data.draw(
            st.lists(st.integers(min_value=0, max_value=100),
                     min_size=local, max_size=local)
        )
        grown = item_ops + extra
        assert spec.kernel_ns(grown, (n + local,), (local,)) >= base

    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 20),
           st.integers(min_value=1, max_value=4096),
           st.booleans())
    def test_more_bytes_never_cheaper(self, nbytes, extra, to_device):
        spec = make_spec()
        assert (spec.transfer_ns(nbytes + extra, to_device)
                > spec.transfer_ns(nbytes, to_device))


class TestWarpDivergence:
    @settings(deadline=None)
    @given(ndrange_1d(),
           st.integers(min_value=1, max_value=8),
           st.floats(min_value=0.25, max_value=4.0))
    def test_single_cu_cost_is_sum_of_warp_maxima(
        self, dispatch, simd, ops_per_ns
    ):
        """With one compute unit there is no scheduling freedom: the
        kernel costs launch + (sum over warps of max lane ops) / rate."""
        item_ops, gsz, lsz = dispatch
        spec = make_spec(compute_units=1, simd_width=simd,
                         ops_per_ns=ops_per_ns)
        local = lsz[0]
        expected_ops = 0
        for g in range(0, len(item_ops), local):
            group = item_ops[g:g + local]
            for w in range(0, local, simd):
                expected_ops += max(group[w:w + simd])
        expected = spec.kernel_launch_ns + expected_ops / ops_per_ns
        assert spec.kernel_ns(item_ops, gsz, lsz) == pytest.approx(expected)

    @settings(deadline=None)
    @given(ndrange_1d(), st.integers(min_value=2, max_value=8))
    def test_lanes_below_warp_max_are_free(self, dispatch, simd):
        """Divergence is priced as max-of-lanes: raising every lane of a
        warp to that warp's maximum changes nothing."""
        item_ops, gsz, lsz = dispatch
        spec = make_spec(simd_width=simd)
        local = lsz[0]
        levelled = []
        for g in range(0, len(item_ops), local):
            group = item_ops[g:g + local]
            for w in range(0, local, simd):
                warp = group[w:w + simd]
                levelled.extend([max(warp)] * len(warp))
        assert (spec.kernel_ns(levelled, gsz, lsz)
                == spec.kernel_ns(item_ops, gsz, lsz))

    def test_group_warp_costs_unit_example(self):
        # two groups of 4, simd 2: warps (3,1) (4,4) / (0,2) (5,0)
        warps = _group_warp_costs(
            [3, 1, 4, 4, 0, 2, 5, 0], (8,), (4,), 2
        )
        assert warps == [[3, 4], [2, 5]]


class TestTransferAsymmetry:
    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 24))
    def test_transfer_is_latency_plus_bytes_over_bandwidth(self, nbytes):
        spec = make_spec()
        assert spec.transfer_ns(nbytes, to_device=True) == (
            spec.transfer_latency_ns + nbytes / spec.h2d_bytes_per_ns
        )
        assert spec.transfer_ns(nbytes, to_device=False) == (
            spec.transfer_latency_ns + nbytes / spec.d2h_bytes_per_ns
        )

    @settings(deadline=None)
    @given(st.integers(min_value=1, max_value=1 << 24))
    def test_h2d_and_d2h_are_asymmetric_on_the_gpu(self, nbytes):
        spec = gpu_spec()
        assert spec.h2d_bytes_per_ns != spec.d2h_bytes_per_ns
        assert (spec.transfer_ns(nbytes, to_device=True)
                != spec.transfer_ns(nbytes, to_device=False))

    def test_cpu_link_is_symmetric(self):
        spec = cpu_spec()
        assert spec.h2d_bytes_per_ns == spec.d2h_bytes_per_ns


class TestScheduler:
    @settings(deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6),
                    max_size=32),
           st.integers(min_value=1, max_value=8))
    def test_makespan_bounds(self, group_ns, cu):
        makespan = _schedule(group_ns, cu)
        total = sum(group_ns)
        longest = max(group_ns, default=0.0)
        assert makespan >= longest
        assert makespan >= total / cu - 1e-6
        assert makespan <= total + 1e-6

    @settings(deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6),
                    max_size=32))
    def test_single_cu_is_serial(self, group_ns):
        assert _schedule(group_ns, 1) == sum(group_ns)
