"""Differential scheduling tests: random command DAGs vs a reference oracle.

Hypothesis generates random command programs — mixed transfers, priced
kernels with explicit read/write sets, device-side copies, barriers,
markers, ``finish`` calls and host API charges, spread over one to
three queues on one to three devices — and executes each program in
both queue modes.  An independent reference scheduler (a longest-path
computation over the augmented dependency DAG: explicit wait lists,
inferred whole-buffer hazards, per-engine serialization, fences, and
host release times) recomputes every placement from the recorded
durations alone; the real scheduler must agree exactly, on the
queue-local axis and on the composed end-to-end axis.

On top of the placement equality, the metamorphic scheduling contract:
the scheduled makespan never exceeds the serial drain (with equality
in-order), ``overlap_ns`` conserves exactly the difference, composed
elapsed time never grows when switching to out-of-order, and every
priced total — ledger segments, API-call and launch counts, byte
counters, profiling timestamps, buffer contents — is byte-identical in
both modes.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opencl import Buffer, CommandQueue, Context, find_device, reset_platforms
from repro.opencl.context import fresh_clock

pytestmark = pytest.mark.sched

#: Device of each generated queue (queues 0 and 2 share the GPU: two
#: contexts, two queues, one device — composed placement must still
#: hold up).
DEVICE_TYPES = ("GPU", "CPU", "GPU")

ENGINE_OF_OP = {
    "write": "dma_h2d",
    "read": "dma_d2h",
    "copy": "compute",
    "kernel": "compute",
}

#: Ops that schedule a priced command (record a placement).
COMMANDS = frozenset(ENGINE_OF_OP)
#: Ops that record a zero-duration sync event.
SYNCS = frozenset(("marker", "barrier"))


@st.composite
def programs(draw):
    """A random multi-queue command program.

    Wait lists are drawn as raw integers and resolved at execution
    time modulo the waiting queue's event count, so a draw is always
    valid whatever the queue's history; the oracle resolves them the
    same way.
    """
    n_queues = draw(st.integers(min_value=1, max_value=3))
    n_bufs = [draw(st.integers(min_value=1, max_value=3))
              for _ in range(n_queues)]
    n_ops = draw(st.integers(min_value=1, max_value=20))
    ops = []
    for _ in range(n_ops):
        q = draw(st.integers(min_value=0, max_value=n_queues - 1))
        kind = draw(st.sampled_from(
            ["write", "read", "copy", "kernel", "kernel",
             "barrier", "marker", "finish", "api"]
        ))
        waits = draw(st.one_of(
            st.none(),
            st.lists(st.integers(min_value=0, max_value=999),
                     min_size=1, max_size=2),
        ))
        if kind in ("write", "read"):
            buf = draw(st.integers(min_value=0, max_value=n_bufs[q] - 1))
            ops.append((kind, q, {"buf": buf, "waits": waits}))
        elif kind == "copy":
            if n_bufs[q] < 2:
                kind = "kernel"  # a copy needs two distinct buffers
            else:
                pair = draw(st.permutations(range(n_bufs[q])))
                ops.append((kind, q, {"src": pair[0], "dst": pair[1],
                                      "waits": waits}))
        if kind == "kernel":
            reads = draw(st.sets(
                st.integers(min_value=0, max_value=n_bufs[q] - 1)))
            writes = draw(st.sets(
                st.integers(min_value=0, max_value=n_bufs[q] - 1)))
            ns = float(draw(st.integers(min_value=1, max_value=2000)))
            ops.append((kind, q, {"reads": sorted(reads),
                                  "writes": sorted(writes),
                                  "ns": ns, "waits": waits}))
        elif kind in SYNCS:
            ops.append((kind, q, {"waits": waits}))
        elif kind in ("finish", "api"):
            ops.append((kind, q, {}))
    return n_queues, n_bufs, ops


def _resolve_waits(waits, events):
    """Map raw drawn integers onto the queue's event list (or None)."""
    if waits is None or not events:
        return None
    return [events[w % len(events)] for w in waits]


def _execute(program, out_of_order):
    """Run *program* on real queues; snapshot everything checkable."""
    n_queues, n_bufs, ops = program
    reset_platforms()  # fresh Device objects: no busy-state carry-over
    with fresh_clock() as clock:
        ctxs, queues, bufs = [], [], []
        for qi in range(n_queues):
            device = find_device(DEVICE_TYPES[qi])
            ctx = Context([device], clock=clock)
            queues.append(CommandQueue(ctx, device,
                                       out_of_order=out_of_order))
            ctxs.append(ctx)
            bufs.append([Buffer(ctx, 8) for _ in range(n_bufs[qi])])
        host0 = clock.timeline.host_pos_ns

        placements, durations, profiling, read_outs = [], [], [], []
        for kind, q, spec in ops:
            queue = queues[q]
            dev_spec = queue.device.spec
            waits = _resolve_waits(spec.get("waits"), queue.events)
            event = None
            ns = None
            if kind == "write":
                buf = bufs[q][spec["buf"]]
                # The oracle gets the command's priced duration as an
                # input, re-derived here from the cost model (pricing
                # is not under test; placement is).  Event.duration_ns
                # would be off by an ULP: it is (start + ns) - start at
                # a large timestamp.
                ns = dev_spec.transfer_ns(buf.nbytes, to_device=True)
                event = queue.enqueue_write_buffer(
                    buf, [float(i + q) for i in range(buf.n_elements)],
                    wait_for=waits,
                )
            elif kind == "read":
                buf = bufs[q][spec["buf"]]
                ns = dev_spec.transfer_ns(buf.nbytes, to_device=False)
                out = [0.0] * buf.n_elements
                event = queue.enqueue_read_buffer(buf, out, wait_for=waits)
                read_outs.append(list(out))
            elif kind == "copy":
                src = bufs[q][spec["src"]]
                ns = src.n_elements / (dev_spec.lanes * dev_spec.ops_per_ns)
                event = queue.enqueue_copy_buffer(
                    src, bufs[q][spec["dst"]], wait_for=waits,
                )
            elif kind == "kernel":
                ns = spec["ns"]
                event = queue.enqueue_priced_kernel(
                    "k", ns,
                    reads=[bufs[q][i].id for i in spec["reads"]],
                    writes=[bufs[q][i].id for i in spec["writes"]],
                    wait_for=waits,
                )
            elif kind == "marker":
                ns = 0.0
                event = queue.enqueue_marker(wait_for=waits)
            elif kind == "barrier":
                ns = 0.0
                event = queue.enqueue_barrier(wait_for=waits)
            elif kind == "finish":
                queue.finish()
            elif kind == "api":
                ctxs[q].charge_api_call()
            if event is not None:
                placements.append((event.sched_start_ns, event.sched_end_ns,
                                   event.e2e_start_ns, event.e2e_end_ns))
                durations.append(ns)
                profiling.append(tuple(
                    event.profiling_info(n)
                    for n in ("QUEUED", "SUBMIT", "START", "END")
                ))
            else:
                placements.append(None)
                durations.append(None)

        return {
            "placements": placements,
            "durations": durations,
            "profiling": profiling,
            "host0": host0,
            "elapsed": clock.timeline.elapsed_ns,
            "attribution": clock.timeline.attribution_exact(),
            "queues": [(qu.makespan_ns, qu.serial_makespan_ns,
                        qu.overlap_ns) for qu in queues],
            "api_ns": [ctx.devices[0].spec.api_call_ns for ctx in ctxs],
            "ledgers": [
                (ctx.ledger.breakdown(), ctx.ledger.api_calls,
                 ctx.ledger.kernel_launches, ctx.ledger.bytes_to_device,
                 ctx.ledger.bytes_from_device)
                for ctx in ctxs
            ],
            "buffers": [[list(b.data) for b in row] for row in bufs],
            "reads": read_outs,
        }


class _OracleQueue:
    """Reference per-queue scheduler state (local and composed axes)."""

    def __init__(self):
        self.events = []  # (local_end, e2e_end) per recorded event
        self.serial_end = 0.0
        self.sched_max_end = 0.0
        self.engine_free = {}
        self.fence = 0.0
        self.last_writer = {}   # buf key -> event index
        self.last_readers = {}  # buf key -> [event index]
        self.e2e_prev_end = 0.0
        self.e2e_engine_free = {}
        self.e2e_fence = 0.0
        self.e2e_max_end = 0.0


def _oracle(program, durations, api_ns, host0, out_of_order):
    """Longest-path reference schedule from the recorded durations.

    Processes ops in enqueue order; each command's start is the longest
    path to it through explicit waits, buffer hazards, fences, engine
    availability and (composed axis) the host release time.  Returns
    per-op placements plus the composed elapsed time.
    """
    n_queues, n_bufs, ops = program
    host = host0
    covered_max = host0
    qs = [_OracleQueue() for _ in range(n_queues)]
    placements = []
    for (kind, q, spec), ns in zip(ops, durations):
        oq = qs[q]
        if kind == "api":
            host += api_ns[q]
            covered_max = max(covered_max, host)
            placements.append(None)
            continue
        if kind == "finish":
            host = max(host, oq.e2e_max_end)
            if out_of_order:
                oq.fence = max(oq.fence, oq.sched_max_end)
                oq.e2e_fence = max(oq.e2e_fence, oq.e2e_max_end)
                oq.last_writer.clear()
                oq.last_readers.clear()
            placements.append(None)
            continue

        raw_waits = spec.get("waits")
        waits = (None if raw_waits is None or not oq.events
                 else [w % len(oq.events) for w in raw_waits])

        if kind in SYNCS:
            if waits:
                at = max(oq.events[i][0] for i in waits)
                e2e_at = max(oq.events[i][1] for i in waits)
            else:
                at = oq.sched_max_end
                e2e_at = oq.e2e_max_end
            at = max(at, oq.fence)
            e2e_at = max(e2e_at, oq.e2e_fence, host)
            if kind == "barrier" and out_of_order:
                oq.fence = max(oq.fence, at)
                oq.e2e_fence = max(oq.e2e_fence, e2e_at)
                # The real queue receives wait_for=None both for a
                # drawn None and for an unresolvable list (no events
                # yet), and only then also clears its hazard tables.
                if waits is None:
                    oq.fence = max(oq.fence, oq.sched_max_end)
                    oq.e2e_fence = max(oq.e2e_fence, oq.e2e_max_end)
                    oq.last_writer.clear()
                    oq.last_readers.clear()
            oq.events.append((at, e2e_at))
            placements.append((at, at, e2e_at, e2e_at))
            continue

        # A priced command.  Buffer access sets:
        if kind == "write":
            reads, writes = [], [spec["buf"]]
        elif kind == "read":
            reads, writes = [spec["buf"]], []
        elif kind == "copy":
            reads, writes = [spec["src"]], [spec["dst"]]
        else:
            reads, writes = spec["reads"], spec["writes"]

        serial_start = oq.serial_end
        oq.serial_end = serial_start + ns
        if not out_of_order:
            start, end = serial_start, serial_start + ns
            oq.sched_max_end = oq.serial_end
            e2e_start = max(host, oq.e2e_prev_end)
            e2e_end = e2e_start + ns
            oq.e2e_prev_end = e2e_end
        else:
            ready = oq.fence
            e2e_ready = max(host, oq.e2e_fence)
            for i in waits or ():
                ready = max(ready, oq.events[i][0])
                e2e_ready = max(e2e_ready, oq.events[i][1])
            for buf in reads:
                writer = oq.last_writer.get(buf)
                if writer is not None:
                    ready = max(ready, oq.events[writer][0])
                    e2e_ready = max(e2e_ready, oq.events[writer][1])
            for buf in writes:
                writer = oq.last_writer.get(buf)
                if writer is not None:
                    ready = max(ready, oq.events[writer][0])
                    e2e_ready = max(e2e_ready, oq.events[writer][1])
                for reader in oq.last_readers.get(buf, ()):
                    ready = max(ready, oq.events[reader][0])
                    e2e_ready = max(e2e_ready, oq.events[reader][1])
            engine = ENGINE_OF_OP[kind]
            start = max(ready, oq.engine_free.get(engine, 0.0))
            end = start + ns
            oq.engine_free[engine] = end
            oq.sched_max_end = max(oq.sched_max_end, end)
            e2e_start = max(e2e_ready, oq.e2e_engine_free.get(engine, 0.0))
            e2e_end = e2e_start + ns
            oq.e2e_engine_free[engine] = e2e_end
        oq.e2e_max_end = max(oq.e2e_max_end, e2e_end)
        covered_max = max(covered_max, e2e_end)
        index = len(oq.events)
        oq.events.append((end, e2e_end))
        if out_of_order:
            for buf in writes:
                oq.last_writer[buf] = index
                oq.last_readers[buf] = []
            for buf in reads:
                oq.last_readers.setdefault(buf, []).append(index)
        placements.append((start, end, e2e_start, e2e_end))
    return placements, max(covered_max, host)


@settings(deadline=None, max_examples=60)
@given(programs())
def test_scheduler_matches_longest_path_oracle(program):
    """Every placement, on both axes and in both modes, equals the
    independent oracle's longest-path computation — exactly, since both
    perform the same max/add float operations."""
    for out_of_order in (False, True):
        run = _execute(program, out_of_order)
        expected, expected_elapsed = _oracle(
            program, run["durations"], run["api_ns"], run["host0"],
            out_of_order,
        )
        assert run["placements"] == expected
        assert run["elapsed"] == expected_elapsed


@settings(deadline=None, max_examples=60)
@given(programs())
def test_metamorphic_scheduling_invariants(program):
    """Mode changes the schedule and nothing else, and only shrinks it."""
    base = _execute(program, False)
    ooo = _execute(program, True)

    # Makespan contract, per queue.
    for makespan, serial, overlap in base["queues"]:
        assert makespan == serial  # in-order IS the serial drain
        assert overlap == 0.0
    for (m_ooo, s_ooo, overlap), (m_in, s_in, _) in zip(
        ooo["queues"], base["queues"]
    ):
        assert s_ooo == s_in  # same command stream, same serial drain
        assert m_ooo <= s_ooo
        assert overlap == s_ooo - m_ooo  # conservation, no clamp needed

    # End to end, out-of-order never loses.
    assert ooo["elapsed"] <= base["elapsed"]

    # Priced totals are byte-identical across modes.
    for key in ("ledgers", "profiling", "buffers", "reads", "durations"):
        assert ooo[key] == base[key], key

    # Attribution covers each mode's elapsed interval exactly and the
    # composed placements leave no idle gap (every start is the max of
    # already-covered instants).
    for run in (base, ooo):
        attribution = run["attribution"]
        assert sum(attribution.values(), Fraction(0)) == Fraction(
            run["elapsed"]
        )
        assert attribution["idle"] == 0


def test_oracle_is_not_a_tautology():
    """The oracle must disagree with a deliberately wrong schedule —
    guards against the differential test degenerating into comparing
    the implementation with itself."""
    program = (
        1, [1],
        [
            ("kernel", 0, {"reads": [], "writes": [0], "ns": 100.0,
                           "waits": None}),
            ("read", 0, {"buf": 0, "waits": None}),
        ],
    )
    run = _execute(program, True)
    expected, _ = _oracle(
        program, run["durations"], run["api_ns"], run["host0"], True
    )
    assert run["placements"] == expected
    # Drop the RAW hazard from the oracle's second placement: the read
    # would start at 0 instead of after the kernel — and must no longer
    # match the real scheduler.
    wrong = list(expected)
    start, end, e2e_start, e2e_end = wrong[1]
    dur = end - start
    wrong[1] = (0.0, dur, e2e_start - start, e2e_start - start + dur)
    assert run["placements"] != wrong
