"""Program dedup and the clCreateProgramWithBinary cost rule.

Within one context, the first build of a (source, device-spec) pair
pays the device's full ``compile_ns``; any later build of the same pair
— through the same or a different Program object — finds the binary in
the context registry and pays only a cheap ``load_program_binary`` API
call.  ``Context.reset_ledger`` drops that state so every measured run
prices its own compiles.
"""

from __future__ import annotations

import pytest

from repro.apps import lud
from repro.harness import scaled_devices
from repro.opencl import (
    Context,
    Program,
    get_platforms,
    reset_platforms,
)
from repro.opencl.api import (
    clCreateProgramWithSource,
    clReleaseProgram,
)
from repro.trace import tracing

SOURCE = """
__kernel void twice(__global float *a) {
    int i = get_global_id(0);
    a[i] = a[i] * 2.0;
}
"""

OTHER_SOURCE = """
__kernel void thrice(__global float *a) {
    int i = get_global_id(0);
    a[i] = a[i] * 3.0;
}
"""


@pytest.fixture(autouse=True)
def _default_platforms():
    reset_platforms()
    yield
    reset_platforms()


@pytest.fixture()
def gpu_context():
    platform = get_platforms()[0]
    device = next(d for d in platform.devices if d.device_type == "GPU")
    return Context([device]), device


def _span_names(tracer):
    return [s.name for s in tracer.spans if s.cost]


class TestBinaryCostRule:
    def test_first_build_charges_compile_ns(self, gpu_context):
        context, device = gpu_context
        with tracing() as tr:
            Program(context, SOURCE).build([device])
        assert _span_names(tr).count("build_program") == 1
        assert tr.summary()["overhead"] == device.spec.compile_ns

    def test_rebuild_of_same_pair_charges_api_call(self, gpu_context):
        context, device = gpu_context
        first = Program(context, SOURCE).build([device])
        with tracing() as tr:
            second = Program(context, SOURCE).build([device])
        names = _span_names(tr)
        assert names.count("load_program_binary") == 1
        assert names.count("build_program") == 0
        assert tr.summary()["overhead"] == device.spec.api_call_ns
        # Same compiled artefact object, not merely an equal one.
        assert second.compiled_for(device) is first.compiled_for(device)

    def test_different_source_still_pays_full_compile(self, gpu_context):
        context, device = gpu_context
        Program(context, SOURCE).build([device])
        with tracing() as tr:
            Program(context, OTHER_SOURCE).build([device])
        assert _span_names(tr).count("build_program") == 1

    def test_other_context_does_not_share_binaries(self, gpu_context):
        context, device = gpu_context
        Program(context, SOURCE).build([device])
        other = Context([device])
        with tracing() as tr:
            Program(other, SOURCE).build([device])
        assert _span_names(tr).count("build_program") == 1

    def test_reset_ledger_drops_binary_registry(self, gpu_context):
        context, device = gpu_context
        Program(context, SOURCE).build([device])
        context.reset_ledger()
        with tracing() as tr:
            Program(context, SOURCE).build([device])
        assert _span_names(tr).count("build_program") == 1
        assert _span_names(tr).count("load_program_binary") == 0


class TestProgramDedup:
    def test_create_with_source_returns_shared_object(self, gpu_context):
        context, _ = gpu_context
        p1 = clCreateProgramWithSource(context, SOURCE)
        p2 = clCreateProgramWithSource(context, SOURCE)
        assert p1 is p2
        assert p1.refcount == 2

    def test_release_keeps_build_state_until_last_reference(
        self, gpu_context
    ):
        context, device = gpu_context
        p1 = clCreateProgramWithSource(context, SOURCE)
        p1.build([device])
        p2 = clCreateProgramWithSource(context, SOURCE)
        clReleaseProgram(p2)
        assert p1.is_built
        clReleaseProgram(p1)
        assert not p1.is_built
        # A fresh create after the last release is a new program.
        p3 = clCreateProgramWithSource(context, SOURCE)
        assert p3 is not p1

    def test_shared_acquires_existing_build(self, gpu_context):
        context, device = gpu_context
        first = Program.shared(context, SOURCE, device)
        with tracing() as tr:
            second = Program.shared(context, SOURCE, device)
        assert second is first
        assert first.refcount == 2
        names = _span_names(tr)
        assert names.count("load_program_binary") == 1
        assert names.count("build_program") == 0


class TestActorPipelineSharing:
    def test_lud_actor_pipeline_builds_once(self):
        """The three lud kernel actors share one KERNEL_SOURCE: the
        first actor compiles it, the other two load the registered
        binary.  This is the only workload in the repo where the new
        cost rule is visible (the Ensemble compiler emits distinct
        source per OpenCL actor, so VM workloads compile each source
        exactly once anyway)."""
        from repro import kcache

        kcache.clear()  # other tests may have warmed the wall-clock cache
        n = 16
        with scaled_devices(0.08, 1.0, 2048 / n):
            with tracing() as tr:
                lud.run_actors(n, "GPU")
        names = _span_names(tr)
        assert names.count("build_program") == 1
        assert names.count("load_program_binary") == 2
        assert tr.counter("kcache.miss") == 1.0
