"""Deterministic fault injection: plans, gates, retries, failover.

Covers the reliability tentpole end to end at the substrate level:
explicit and seeded fault plans, the per-operation gates (build,
transfers, dispatch, API calls, vectorised tier), bounded retry with
priced backoff, device loss with multi-device failover, and the
determinism guarantee (same plan + seed => bit-identical ledgers).
"""

import pytest

from repro import opencl as cl
from repro.errors import (
    CLBuildProgramFailure,
    CLDeviceLost,
    CLInvalidValue,
    CLOutOfHostMemory,
    CLOutOfResources,
    CLTransferFailure,
)
from repro.opencl import dispatch, faults
from repro.opencl.faults import (
    DEVICE_LOST,
    PERMANENT,
    TRANSIENT,
    Fault,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.trace import tracing

pytestmark = pytest.mark.faults

SRC = """
__kernel void fill(__global int *a, int v) {
    a[get_global_id(0)] = v;
}
"""


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    cl.reset_platforms()
    yield
    faults.clear()
    cl.reset_platforms()


def gpu_context():
    device = cl.find_device("GPU")
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device)
    return device, context, queue


def ledger_totals(ledger) -> dict:
    """Every ledger field, for bit-for-bit run comparisons."""
    return {
        "h2d_ns": ledger.h2d_ns,
        "d2h_ns": ledger.d2h_ns,
        "kernel_ns": ledger.kernel_ns,
        "host_ns": ledger.host_ns,
        "api_calls": ledger.api_calls,
        "kernel_launches": ledger.kernel_launches,
        "bytes_to_device": ledger.bytes_to_device,
        "bytes_from_device": ledger.bytes_from_device,
    }


class TestFaultSpec:
    def test_validates_op_and_kind(self):
        with pytest.raises(CLInvalidValue):
            FaultSpec("teleport")
        with pytest.raises(CLInvalidValue):
            FaultSpec("h2d", kind="catastrophic")
        with pytest.raises(CLInvalidValue):
            FaultSpec("h2d", times=0)

    def test_matches_window_and_key_pattern(self):
        spec = FaultSpec("kernel", key="fill@*", index=2, times=2)
        assert not spec.matches("kernel", "fill@gpu", 1)
        assert spec.matches("kernel", "fill@gpu", 2)
        assert spec.matches("kernel", "fill@gpu", 3)
        assert not spec.matches("kernel", "fill@gpu", 4)
        assert not spec.matches("kernel", "other@gpu", 2)
        assert not spec.matches("h2d", "fill@gpu", 2)


class TestFaultPlan:
    def test_explicit_spec_fires_at_coordinates(self):
        plan = FaultPlan([FaultSpec("h2d", key="buf1", index=1)])
        assert plan.decide("h2d", "buf1") is None
        fault = plan.decide("h2d", "buf1")
        assert fault == Fault("h2d", TRANSIENT, "buf1", 1)
        assert plan.injected == 1

    def test_seeded_draw_is_deterministic_and_reset_replays(self):
        plan = FaultPlan(seed=7, rate=0.5)
        first = [plan.decide("kernel", "k@dev") for _ in range(64)]
        plan.reset()
        second = [plan.decide("kernel", "k@dev") for _ in range(64)]
        assert first == second
        assert any(f is not None for f in first)
        assert any(f is None for f in first)

    def test_keys_are_independent_streams(self):
        plan = FaultPlan(seed=3, rate=0.5)
        a = [plan.decide("h2d", "bufA") for _ in range(32)]
        plan.reset()
        # Interleaving another key's stream does not disturb bufA's.
        b = []
        for _ in range(32):
            plan.decide("h2d", "bufB")
            b.append(plan.decide("h2d", "bufA"))
        assert a == b

    def test_validates_rate_kind_op(self):
        with pytest.raises(CLInvalidValue):
            FaultPlan(rate=1.5)
        with pytest.raises(CLInvalidValue):
            FaultPlan(kinds=("sideways",))
        with pytest.raises(CLInvalidValue):
            FaultPlan(ops=("teleport",))


class TestConfigure:
    def test_install_and_clear(self):
        plan = FaultPlan([FaultSpec("h2d")])
        settings = dispatch.configure(faults=plan)
        assert settings["faults"] is plan
        assert faults.active_plan() is plan
        settings = dispatch.configure(faults=None)
        assert settings["faults"] is None

    def test_retry_policy_roundtrip(self):
        policy = RetryPolicy(max_attempts=5, backoff_ns=10.0)
        assert dispatch.configure(retry=policy)["retry"] is policy
        assert dispatch.configure(retry=None)["retry"] == RetryPolicy()

    def test_rejects_wrong_types(self):
        with pytest.raises(CLInvalidValue):
            dispatch.configure(faults=42)
        with pytest.raises(CLInvalidValue):
            dispatch.configure(retry="never")

    def test_omitting_arguments_changes_nothing(self):
        plan = FaultPlan([FaultSpec("h2d")])
        dispatch.configure(faults=plan)
        assert dispatch.configure()["faults"] is plan


class TestTransferFaults:
    def test_transient_h2d_recovers_and_charges_retries(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("h2d", kind=TRANSIENT)]),
            retry=RetryPolicy(max_attempts=3, backoff_ns=100.0),
        )
        _, context, queue = gpu_context()
        buf = cl.Buffer(context, 8, dtype="int")
        baseline_host = context.ledger.host_ns
        with tracing() as tracer:
            queue.enqueue_write_buffer(buf, [1, 2, 3, 4, 5, 6, 7, 8])
        out = [0] * 8
        queue.enqueue_read_buffer(buf, out)
        assert out == [1, 2, 3, 4, 5, 6, 7, 8]
        counters = tracer.counters()
        assert counters["fault.injected"] == 1
        assert counters["fault.injected.transient"] == 1
        assert counters["fault.retry"] == 1
        # One failed attempt charged as h2d, backoff charged as host.
        assert context.ledger.host_ns >= baseline_host + 100.0

    def test_permanent_d2h_raises_with_fault_metadata(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("d2h", kind=PERMANENT)])
        )
        _, context, queue = gpu_context()
        buf = cl.Buffer(context, 4, dtype="int")
        queue.enqueue_write_buffer(buf, [9, 9, 9, 9])
        with pytest.raises(CLTransferFailure) as info:
            queue.enqueue_read_buffer(buf, [0] * 4)
        assert info.value.transient is False
        assert info.value.fault.op == "d2h"

    def test_failed_write_does_not_mutate_the_buffer(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("h2d", kind=PERMANENT, index=1)])
        )
        _, context, queue = gpu_context()
        buf = cl.Buffer(context, 4, dtype="int")
        queue.enqueue_write_buffer(buf, [1, 2, 3, 4])
        with pytest.raises(CLTransferFailure):
            queue.enqueue_write_buffer(buf, [5, 6, 7, 8])
        out = [0] * 4
        queue.enqueue_read_buffer(buf, out)
        assert out == [1, 2, 3, 4]

    def test_retry_exhaustion_surfaces_original_kind(self):
        dispatch.configure(
            faults=FaultPlan(
                [FaultSpec("h2d", kind=TRANSIENT, times=10)]
            ),
            retry=RetryPolicy(max_attempts=3, backoff_ns=0.0),
        )
        _, context, queue = gpu_context()
        buf = cl.Buffer(context, 4, dtype="int")
        with tracing() as tracer:
            with pytest.raises(CLTransferFailure) as info:
                queue.enqueue_write_buffer(buf, [1, 2, 3, 4])
        assert info.value.transient is True
        assert info.value.fault.kind == TRANSIENT
        assert tracer.counters()["fault.retry"] == 2  # attempts 2 and 3


class TestKernelAndApiFaults:
    def test_kernel_fault_raises_out_of_resources(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("kernel", kind=PERMANENT)])
        )
        _, context, queue = gpu_context()
        program = cl.Program(context, SRC).build()
        kernel = program.create_kernel("fill")
        buf = cl.Buffer(context, 16, dtype="int")
        kernel.set_arg(0, buf)
        kernel.set_arg(1, 3)
        with pytest.raises(CLOutOfResources):
            queue.enqueue_nd_range_kernel(kernel, (16,))

    def test_api_fault_raises_out_of_host_memory(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("api", kind=PERMANENT)]),
        )
        _, context, _ = gpu_context()
        with pytest.raises(CLOutOfHostMemory):
            context.charge_api_call(name="clRetainContext")

    def test_transient_api_fault_recovers(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("api", kind=TRANSIENT)]),
        )
        _, context, _ = gpu_context()
        context.charge_api_call(name="clRetainContext")
        assert context.ledger.api_calls == 1


class TestBuildFaults:
    def test_transient_build_recovers(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("build", kind=TRANSIENT)])
        )
        _, context, _ = gpu_context()
        program = cl.Program(context, SRC).build()
        assert program.is_built

    def test_permanent_build_raises_with_injected_log(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("build", kind=PERMANENT, times=9)])
        )
        _, context, _ = gpu_context()
        with pytest.raises(CLBuildProgramFailure) as info:
            cl.Program(context, SRC).build()
        assert "injected permanent build fault" in info.value.build_log
        assert info.value.fault.op == "build"

    def test_faulted_build_charges_the_compile(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("build", kind=TRANSIENT)])
        )
        device, context, _ = gpu_context()
        cl.Program(context, SRC).build()
        # Two compile attempts charged (failed + succeeded).
        assert context.ledger.host_ns >= 2 * device.spec.compile_ns


class TestDeviceLoss:
    def test_lost_device_refuses_new_work_but_drains_reads(self):
        dispatch.configure(
            faults=FaultPlan(
                [FaultSpec("kernel", kind=DEVICE_LOST)]
            )
        )
        device, context, queue = gpu_context()
        program = cl.Program(context, SRC).build()
        kernel = program.create_kernel("fill")
        buf = cl.Buffer(context, 16, dtype="int")
        queue.enqueue_write_buffer(buf, [7] * 16)
        kernel.set_arg(0, buf)
        kernel.set_arg(1, 3)
        with pytest.raises(CLDeviceLost):
            queue.enqueue_nd_range_kernel(kernel, (16,))
        assert device.lost and not device.available
        with pytest.raises(CLDeviceLost):
            queue.enqueue_write_buffer(buf, [0] * 16)
        out = [0] * 16
        queue.enqueue_read_buffer(buf, out)
        assert out == [7] * 16

    def test_multi_device_dispatch_fails_over_to_survivors(self):
        dispatch.configure(
            faults=FaultPlan(
                [FaultSpec("kernel", kind=DEVICE_LOST, key="fill@*R9*")]
            )
        )
        platform = cl.get_platforms()[0]
        context = cl.Context(platform.devices)
        program = cl.Program(context, SRC).build()
        kernel = program.create_kernel("fill")
        buf = cl.Buffer(context, 1024, dtype="int")
        kernel.set_arg(0, buf)
        kernel.set_arg(1, 5)
        with tracing() as tracer:
            events = context.enqueue_nd_range(kernel, (1024,), (64,))
        assert len(events) == 1  # whole range landed on the survivor
        out = [0] * 1024
        cpu = next(d for d in platform.devices if not d.lost)
        context.queue_for(cpu).enqueue_read_buffer(buf, out)
        assert out == [5] * 1024
        counters = tracer.counters()
        assert counters["fault.failover"] == 1
        assert counters["fault.injected.device-lost"] == 1

    def test_every_device_lost_raises(self):
        dispatch.configure(
            faults=FaultPlan(
                [FaultSpec("kernel", kind=DEVICE_LOST, key="fill@*")]
            )
        )
        platform = cl.get_platforms()[0]
        context = cl.Context(platform.devices)
        program = cl.Program(context, SRC).build()
        kernel = program.create_kernel("fill")
        buf = cl.Buffer(context, 1024, dtype="int")
        kernel.set_arg(0, buf)
        kernel.set_arg(1, 5)
        with pytest.raises(CLDeviceLost):
            context.enqueue_nd_range(kernel, (1024,), (64,))
        with pytest.raises(CLDeviceLost):
            context.enqueue_nd_range(kernel, (1024,), (64,))


class TestVecTierDegrade:
    def test_vec_fault_degrades_with_identical_output_and_price(self):
        device, context, queue = gpu_context()
        program = cl.Program(context, SRC).build()
        kernel = program.create_kernel("fill")
        buf = cl.Buffer(context, 1024, dtype="int")
        kernel.set_arg(0, buf)
        kernel.set_arg(1, 9)
        queue.enqueue_nd_range_kernel(kernel, (1024,))
        clean_kernel_ns = context.ledger.kernel_ns
        reference = [0] * 1024
        queue.enqueue_read_buffer(buf, reference)

        dispatch.configure(
            faults=FaultPlan([FaultSpec("vec", kind=TRANSIENT)])
        )
        context.reset_ledger()
        buf2 = cl.Buffer(context, 1024, dtype="int")
        kernel.set_arg(0, buf2)
        with tracing() as tracer:
            queue.enqueue_nd_range_kernel(kernel, (1024,))
        degraded = [0] * 1024
        queue.enqueue_read_buffer(buf2, degraded)
        assert degraded == reference
        assert context.ledger.kernel_ns == pytest.approx(clean_kernel_ns)
        counters = tracer.counters()
        assert counters["fault.injected"] == 1
        assert counters["fault.failover"] == 1
        assert counters["dispatch.fallback.fault"] == 1


class TestDeterminism:
    @staticmethod
    def _workload():
        """One faulted run on a fresh platform; returns its cost totals."""
        cl.reset_platforms()
        device = cl.find_device("GPU")
        context = cl.Context([device])
        queue = cl.CommandQueue(context, device)
        program = cl.Program(context, SRC).build()
        kernel = program.create_kernel("fill")
        buf = cl.Buffer(context, 256, dtype="int")
        out = [0] * 256
        for value in range(6):
            try:
                queue.enqueue_write_buffer(buf, [value] * 256)
                kernel.set_arg(0, buf)
                kernel.set_arg(1, value)
                queue.enqueue_nd_range_kernel(kernel, (256,))
                queue.enqueue_read_buffer(buf, out)
            except (CLTransferFailure, CLOutOfResources):
                pass
        return ledger_totals(context.ledger), list(out)

    def test_same_seed_same_ledger_bit_for_bit(self):
        plan = FaultPlan(seed=11, rate=0.3, kinds=(TRANSIENT, PERMANENT))
        dispatch.configure(faults=plan)
        first_totals, first_out = self._workload()
        plan.reset()
        second_totals, second_out = self._workload()
        assert first_totals == second_totals
        assert first_out == second_out
        assert plan.injected > 0

    def test_no_plan_matches_fault_free_run(self):
        clean_totals, clean_out = self._workload()
        dispatch.configure(faults=None)
        again_totals, again_out = self._workload()
        assert clean_totals == again_totals
        assert clean_out == again_out


class TestTracerSummary:
    def test_summary_counters_include_fault_namespace(self):
        dispatch.configure(
            faults=FaultPlan([FaultSpec("h2d", kind=TRANSIENT)]),
            retry=RetryPolicy(max_attempts=2, backoff_ns=1.0),
        )
        _, context, queue = gpu_context()
        buf = cl.Buffer(context, 8, dtype="int")
        with tracing() as tracer:
            queue.enqueue_write_buffer(buf, [0] * 8)
            summary = tracer.summary(with_counters=True)
        assert summary["counters"]["fault.injected"] == 1
        assert summary["counters"]["fault.retry"] == 1
