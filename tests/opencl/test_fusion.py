"""Graph-level dispatch optimiser: kernel fusion and redundant-transfer
elimination (``dispatch.configure(fusion=True)``).

Covers the optimiser end to end at the substrate level: equal-range and
prologue fusion with bit-identical buffers, every legality demotion as a
``dispatch.fuse.reject.<reason>`` counter, fused-binary pricing
(compile once, then one API call per reuse), host->device transfer
elimination with its invalidation rules (kernel writes, ledger resets,
device loss, failover re-splits), the ManagedArray round-trip collapse,
and fused-vs-unfused agreement on the Figure-4 LUD pipeline and the
docrank corpus — both the flat-API and the actor variants.
"""

import pytest

from repro import opencl as cl
from repro.apps.docrank import runners as docrank
from repro.apps.lud import runners as lud
from repro.errors import CLDeviceLost
from repro.opencl import dispatch, faults
from repro.opencl.faults import DEVICE_LOST, FaultPlan, FaultSpec
from repro.runtime.residency import ManagedArray
from repro.trace import tracing

pytestmark = pytest.mark.fusion


@pytest.fixture(autouse=True)
def _clean():
    dispatch.configure(fusion=False, faults=None)
    faults.clear()
    cl.reset_platforms()
    yield
    dispatch.configure(fusion=False, faults=None)
    faults.clear()
    cl.reset_platforms()


PRODUCER = """
__kernel void scale2(__global float *a, __global float *b) {
    int i = get_global_id(0);
    b[i] = a[i] * 2.0;
}
"""

CONSUMER = """
__kernel void add1(__global float *b, __global float *c) {
    int i = get_global_id(0);
    c[i] = b[i] + 1.0;
}
"""

GATHER_CONSUMER = """
__kernel void rev(__global float *b, __global float *c, int n) {
    int i = get_global_id(0);
    c[i] = b[n - 1 - i];
}
"""

RETURN_PRODUCER = """
__kernel void guarded(__global float *a, __global float *b) {
    int i = get_global_id(0);
    if (a[i] < 0.0) { return; }
    b[i] = a[i] * 2.0;
}
"""

BARRIER_CONSUMER = """
__kernel void fenced(__global float *b, __global float *c) {
    int i = get_global_id(0);
    barrier(CLK_LOCAL_MEM_FENCE);
    c[i] = b[i] + 1.0;
}
"""

TWO_IN_CONSUMER = """
__kernel void addmul(__global float *b, __global float *x, __global float *y) {
    int i = get_global_id(0);
    y[i] = b[i] + x[i];
}
"""

PICK_PRODUCER = """
__kernel void pick(__global float *a, __global float *piv, int k) {
    piv[0] = a[k];
}
"""

GEOM_PRODUCER = """
__kernel void span(__global float *piv) {
    piv[0] = (float)get_global_size(0);
}
"""

DIV_CONSUMER = """
__kernel void divp(__global float *a, __global float *piv) {
    int i = get_global_id(0);
    a[i] = a[i] / piv[0];
}
"""


def gpu_context():
    device = cl.find_device("GPU")
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device)
    return device, context, queue


def make_kernel(context, source, name):
    return cl.Program(context, source).build().create_kernel(name)


def run_pair(
    queue,
    context,
    n=64,
    consumer_src=CONSUMER,
    consumer_name="add1",
    consumer_gsz=None,
    extra_args=(),
):
    """Enqueue the scale2 -> <consumer> chain; returns (b, c) contents."""
    k_a = make_kernel(context, PRODUCER, "scale2")
    k_b = make_kernel(context, consumer_src, consumer_name)
    buf_a = cl.Buffer(context, n)
    buf_b = cl.Buffer(context, n)
    buf_c = cl.Buffer(context, n)
    queue.enqueue_write_buffer(buf_a, [float(i) for i in range(n)])
    k_a.set_arg(0, buf_a)
    k_a.set_arg(1, buf_b)
    k_b.set_arg(0, buf_b)
    k_b.set_arg(1, buf_c)
    for index, value in enumerate(extra_args, start=2):
        k_b.set_arg(index, value)
    queue.enqueue_nd_range_kernel(k_a, [n])
    queue.enqueue_nd_range_kernel(k_b, consumer_gsz or [n])
    out_b, out_c = [0.0] * n, [0.0] * n
    queue.enqueue_read_buffer(buf_b, out_b)
    queue.enqueue_read_buffer(buf_c, out_c)
    return out_b, out_c


class TestConfigure:
    def test_default_is_off_and_toggle_round_trips(self):
        assert dispatch.configure()["fusion"] is False
        assert dispatch.configure(fusion=True)["fusion"] is True
        assert dispatch.configure(fusion=False)["fusion"] is False

    def test_omitting_fusion_changes_nothing(self):
        dispatch.configure(fusion=True)
        assert dispatch.configure()["fusion"] is True
        dispatch.configure(fusion=False)


class TestEqualRangeFusion:
    def test_fused_pair_is_bit_identical_and_saves_a_launch(self):
        n = 64
        _, ctx0, q0 = gpu_context()
        plain_b, plain_c = run_pair(q0, ctx0, n)
        launches_plain = ctx0.ledger.kernel_launches

        cl.reset_platforms()
        dispatch.configure(fusion=True)
        _, ctx1, q1 = gpu_context()
        with tracing() as tr:
            fused_b, fused_c = run_pair(q1, ctx1, n)
        assert fused_b == plain_b
        assert fused_c == plain_c
        assert ctx1.ledger.kernel_launches == launches_plain - 1
        assert tr.counter("dispatch.fuse") == 1
        assert tr.counter("dispatch.fuse.launches_saved") == 1

    def test_first_fusion_compiles_then_binary_reloads(self):
        device, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        before = context.ledger.host_ns
        run_pair(queue, context)
        compile_delta = context.ledger.host_ns - before
        assert compile_delta >= device.spec.compile_ns

        mid = context.ledger.host_ns
        run_pair(queue, context)
        reload_delta = context.ledger.host_ns - mid
        assert reload_delta < device.spec.compile_ns
        assert reload_delta >= device.spec.api_call_ns

    def test_producer_event_shares_the_fused_placement(self):
        n = 32
        device, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_a = make_kernel(context, PRODUCER, "scale2")
        k_b = make_kernel(context, CONSUMER, "add1")
        buf_a, buf_b, buf_c = (cl.Buffer(context, n) for _ in range(3))
        queue.enqueue_write_buffer(buf_a, [1.0] * n)
        k_a.set_arg(0, buf_a)
        k_a.set_arg(1, buf_b)
        k_b.set_arg(0, buf_b)
        k_b.set_arg(1, buf_c)
        ev_a = queue.enqueue_nd_range_kernel(k_a, [n])
        ev_b = queue.enqueue_nd_range_kernel(k_b, [n])
        assert ev_a.start_ns == ev_b.start_ns
        assert ev_a.end_ns == ev_b.end_ns


class TestPrologueFusion:
    def test_single_item_producer_runs_as_guarded_prologue(self):
        n = 48

        def chain(queue, context):
            k_pick = make_kernel(context, PICK_PRODUCER, "pick")
            k_div = make_kernel(context, DIV_CONSUMER, "divp")
            buf = cl.Buffer(context, n)
            piv = cl.Buffer(context, 1)
            queue.enqueue_write_buffer(
                buf, [float(i + 1) for i in range(n)]
            )
            k_pick.set_arg(0, buf)
            k_pick.set_arg(1, piv)
            k_pick.set_arg(2, 3)
            k_div.set_arg(0, buf)
            k_div.set_arg(1, piv)
            queue.enqueue_nd_range_kernel(k_pick, [1])
            queue.enqueue_nd_range_kernel(k_div, [n])
            out = [0.0] * n
            queue.enqueue_read_buffer(buf, out)
            return out

        _, ctx0, q0 = gpu_context()
        plain = chain(q0, ctx0)
        cl.reset_platforms()
        dispatch.configure(fusion=True)
        _, ctx1, q1 = gpu_context()
        with tracing() as tr:
            fused = chain(q1, ctx1)
        assert fused == plain
        assert tr.counter("dispatch.fuse") == 1

    def test_geometry_reading_producer_demotes(self):
        n = 16
        device, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_span = make_kernel(context, GEOM_PRODUCER, "span")
        k_div = make_kernel(context, DIV_CONSUMER, "divp")
        buf = cl.Buffer(context, n)
        piv = cl.Buffer(context, 1)
        queue.enqueue_write_buffer(buf, [4.0] * n)
        k_span.set_arg(0, piv)
        k_div.set_arg(0, buf)
        k_div.set_arg(1, piv)
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_span, [1])
            queue.enqueue_nd_range_kernel(k_div, [n])
            out = [0.0] * n
            queue.enqueue_read_buffer(buf, out)
        # get_global_size(0) must see the producer's own range (1), not
        # the consumer's fused range.
        assert out == [4.0] * n
        assert tr.counter("dispatch.fuse") == 0
        assert tr.counter("dispatch.fuse.reject.geometry") == 1


class TestRejectReasons:
    def assert_reject(self, tr, reason):
        assert tr.counter("dispatch.fuse") == 0
        assert tr.counter(f"dispatch.fuse.reject.{reason}") >= 1

    def test_shape_mismatch_demotes(self):
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        with tracing() as tr:
            run_pair(queue, context, n=64, consumer_gsz=[32])
        self.assert_reject(tr, "shape")

    def test_gather_access_demotes(self):
        n = 64
        _, ctx0, q0 = gpu_context()
        plain_b, plain_c = run_pair(
            q0, ctx0, n, GATHER_CONSUMER, "rev", extra_args=(n,)
        )
        cl.reset_platforms()
        dispatch.configure(fusion=True)
        _, ctx1, q1 = gpu_context()
        with tracing() as tr:
            fused_b, fused_c = run_pair(
                q1, ctx1, n, GATHER_CONSUMER, "rev", extra_args=(n,)
            )
        assert (fused_b, fused_c) == (plain_b, plain_c)
        self.assert_reject(tr, "gather")

    def test_early_return_producer_demotes(self):
        n = 32
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_a = make_kernel(context, RETURN_PRODUCER, "guarded")
        k_b = make_kernel(context, CONSUMER, "add1")
        buf_a, buf_b, buf_c = (cl.Buffer(context, n) for _ in range(3))
        queue.enqueue_write_buffer(buf_a, [1.0] * n)
        k_a.set_arg(0, buf_a)
        k_a.set_arg(1, buf_b)
        k_b.set_arg(0, buf_b)
        k_b.set_arg(1, buf_c)
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_a, [n])
            queue.enqueue_nd_range_kernel(k_b, [n])
            queue.finish()
        self.assert_reject(tr, "return")

    def test_barrier_kernel_demotes(self):
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        with tracing() as tr:
            run_pair(queue, context, n=64, consumer_src=BARRIER_CONSUMER,
                     consumer_name="fenced")
        self.assert_reject(tr, "barrier")

    def test_write_aliasing_demotes(self):
        n = 32
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_a = make_kernel(context, PRODUCER, "scale2")
        k_b = make_kernel(context, TWO_IN_CONSUMER, "addmul")
        buf_a, buf_b, buf_y = (cl.Buffer(context, n) for _ in range(3))
        queue.enqueue_write_buffer(buf_a, [2.0] * n)
        k_a.set_arg(0, buf_a)
        k_a.set_arg(1, buf_b)
        # buf_y bound both as a read input and as the written output.
        k_b.set_arg(0, buf_b)
        k_b.set_arg(1, buf_y)
        k_b.set_arg(2, buf_y)
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_a, [n])
            queue.enqueue_nd_range_kernel(k_b, [n])
            queue.finish()
        self.assert_reject(tr, "aliasing")

    def test_unrelated_kernels_demote_without_dataflow_edge(self):
        n = 32
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_a = make_kernel(context, PRODUCER, "scale2")
        k_b = make_kernel(context, PRODUCER, "scale2")
        bufs = [cl.Buffer(context, n) for _ in range(4)]
        for buf in bufs[:1] + bufs[2:3]:
            queue.enqueue_write_buffer(buf, [1.0] * n)
        k_a.set_arg(0, bufs[0])
        k_a.set_arg(1, bufs[1])
        k_b.set_arg(0, bufs[2])
        k_b.set_arg(1, bufs[3])
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_a, [n])
            queue.enqueue_nd_range_kernel(k_b, [n])
            queue.finish()
        self.assert_reject(tr, "no-intermediate")

    def test_host_read_flushes_the_pending_kernel(self):
        n = 16
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_a = make_kernel(context, PRODUCER, "scale2")
        buf_a, buf_b = cl.Buffer(context, n), cl.Buffer(context, n)
        queue.enqueue_write_buffer(buf_a, [3.0] * n)
        k_a.set_arg(0, buf_a)
        k_a.set_arg(1, buf_b)
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_a, [n])
            out = [0.0] * n
            queue.enqueue_read_buffer(buf_b, out)
        assert out == [6.0] * n
        self.assert_reject(tr, "host-read")

    def test_host_observation_of_buffer_data_flushes(self):
        n = 16
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_a = make_kernel(context, PRODUCER, "scale2")
        buf_a, buf_b = cl.Buffer(context, n), cl.Buffer(context, n)
        queue.enqueue_write_buffer(buf_a, [5.0] * n)
        k_a.set_arg(0, buf_a)
        k_a.set_arg(1, buf_b)
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_a, [n])
            observed = list(buf_b.data)
        assert observed == [10.0] * n
        self.assert_reject(tr, "host-observe")

    def test_explicit_wait_list_dispatches_immediately(self):
        n = 16
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_a = make_kernel(context, PRODUCER, "scale2")
        k_b = make_kernel(context, CONSUMER, "add1")
        buf_a, buf_b, buf_c = (cl.Buffer(context, n) for _ in range(3))
        ev = queue.enqueue_write_buffer(buf_a, [1.0] * n)
        k_a.set_arg(0, buf_a)
        k_a.set_arg(1, buf_b)
        k_b.set_arg(0, buf_b)
        k_b.set_arg(1, buf_c)
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_a, [n])
            queue.enqueue_nd_range_kernel(k_b, [n], wait_for=[ev])
            queue.finish()
        assert tr.counter("dispatch.fuse") == 0
        assert tr.counter("dispatch.fuse.reject.sync") == 1

    def test_disabling_fusion_flushes_on_the_next_dispatch(self):
        n = 16
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        k_a = make_kernel(context, PRODUCER, "scale2")
        buf_a, buf_b = cl.Buffer(context, n), cl.Buffer(context, n)
        queue.enqueue_write_buffer(buf_a, [2.0] * n)
        k_a.set_arg(0, buf_a)
        k_a.set_arg(1, buf_b)
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_a, [n])
            dispatch.configure(fusion=False)
            queue.enqueue_nd_range_kernel(k_a, [n])
            queue.finish()
        assert tr.counter("dispatch.fuse.reject.disabled") == 1
        out = [0.0] * n
        queue.enqueue_read_buffer(buf_b, out)
        assert out == [4.0] * n


class TestTransferElimination:
    def test_repeat_upload_is_elided_and_unpriced(self):
        n = 128
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        buf = cl.Buffer(context, n)
        data = [float(i) for i in range(n)]
        queue.enqueue_write_buffer(buf, data)
        h2d_ns = context.ledger.h2d_ns
        bytes_up = context.ledger.bytes_to_device
        with tracing() as tr:
            event = queue.enqueue_write_buffer(buf, data)
        assert context.ledger.h2d_ns == h2d_ns
        assert context.ledger.bytes_to_device == bytes_up
        assert event.duration_ns == 0.0
        assert tr.counter("dispatch.xfer_elim") == 1
        assert tr.counter("dispatch.xfer_elim.bytes") == buf.nbytes

    def test_changed_data_is_priced_in_full(self):
        n = 64
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        buf = cl.Buffer(context, n)
        queue.enqueue_write_buffer(buf, [1.0] * n)
        h2d_ns = context.ledger.h2d_ns
        with tracing() as tr:
            queue.enqueue_write_buffer(buf, [2.0] * n)
        assert context.ledger.h2d_ns > h2d_ns
        assert tr.counter("dispatch.xfer_elim") == 0

    def test_fusion_off_never_elides(self):
        n = 64
        _, context, queue = gpu_context()
        buf = cl.Buffer(context, n)
        data = [1.0] * n
        queue.enqueue_write_buffer(buf, data)
        h2d_ns = context.ledger.h2d_ns
        queue.enqueue_write_buffer(buf, data)
        assert context.ledger.h2d_ns == 2 * h2d_ns

    def test_kernel_write_invalidates_the_marker(self):
        n = 32
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        kernel = make_kernel(context, PRODUCER, "scale2")
        buf_a, buf_b = cl.Buffer(context, n), cl.Buffer(context, n)
        queue.enqueue_write_buffer(buf_a, [1.0] * n)
        queue.enqueue_write_buffer(buf_b, [2.0] * n)
        kernel.set_arg(0, buf_a)
        kernel.set_arg(1, buf_b)
        queue.enqueue_nd_range_kernel(kernel, [n])
        queue.finish()
        h2d_ns = context.ledger.h2d_ns
        # buf_b now holds [2.0]*n again via the kernel, but the upload
        # must be priced: the device copy is a kernel product, not the
        # certified image of a host transfer.
        with tracing() as tr:
            queue.enqueue_write_buffer(buf_b, [2.0] * n)
        assert context.ledger.h2d_ns > h2d_ns
        assert tr.counter("dispatch.xfer_elim") == 0

    def test_read_back_arms_the_round_trip_collapse(self):
        n = 64
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        kernel = make_kernel(context, PRODUCER, "scale2")
        buf_a, buf_b = cl.Buffer(context, n), cl.Buffer(context, n)
        queue.enqueue_write_buffer(buf_a, [1.0] * n)
        kernel.set_arg(0, buf_a)
        kernel.set_arg(1, buf_b)
        queue.enqueue_nd_range_kernel(kernel, [n])
        out = [0.0] * n
        queue.enqueue_read_buffer(buf_b, out)
        h2d_ns = context.ledger.h2d_ns
        with tracing() as tr:
            queue.enqueue_write_buffer(buf_b, out)
        assert context.ledger.h2d_ns == h2d_ns
        assert tr.counter("dispatch.xfer_elim") == 1

    def test_reset_ledger_invalidates_residency_state(self):
        n = 64
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        buf = cl.Buffer(context, n)
        data = [3.0] * n
        queue.enqueue_write_buffer(buf, data)
        context.reset_ledger()
        with tracing() as tr:
            queue.enqueue_write_buffer(buf, data)
        # A measured run prices its own transfers: the marker from the
        # previous run's upload must not survive the reset.
        assert context.ledger.h2d_ns > 0.0
        assert tr.counter("dispatch.xfer_elim") == 0

    def test_reset_ledger_flushes_a_pending_kernel_into_the_old_run(self):
        n = 16
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        kernel = make_kernel(context, PRODUCER, "scale2")
        buf_a, buf_b = cl.Buffer(context, n), cl.Buffer(context, n)
        queue.enqueue_write_buffer(buf_a, [1.0] * n)
        kernel.set_arg(0, buf_a)
        kernel.set_arg(1, buf_b)
        queue.enqueue_nd_range_kernel(kernel, [n])
        old = context.ledger
        fresh = context.reset_ledger()
        assert old.kernel_launches == 1
        assert fresh.kernel_launches == 0
        out = [0.0] * n
        queue.enqueue_read_buffer(buf_b, out)
        assert out == [2.0] * n

    def test_device_loss_invalidates_the_marker(self):
        n = 1024
        dispatch.configure(
            fusion=True,
            faults=FaultPlan([FaultSpec("kernel", kind=DEVICE_LOST,
                                        key="fill@*R9*")]),
        )
        platform = cl.get_platforms()[0]
        context = cl.Context(platform.devices)
        program = cl.Program(
            context,
            """
            __kernel void fill(__global float *a, __global float *b) {
                int i = get_global_id(0);
                b[i] = a[i];
            }
            """,
        ).build()
        kernel = program.create_kernel("fill")
        buf_a = cl.Buffer(context, n)
        buf_b = cl.Buffer(context, n)
        gpu = next(d for d in platform.devices if "R9" in d.name)
        data = [1.0] * n
        context.queue_for(gpu).enqueue_write_buffer(buf_a, data)
        kernel.set_arg(0, buf_a)
        kernel.set_arg(1, buf_b)
        # The multi-device dispatch loses the GPU and fails over.
        context.enqueue_nd_range(kernel, (n,), (64,))
        assert gpu.lost
        survivor = next(d for d in platform.devices if not d.lost)
        h2d_ns = context.ledger.h2d_ns
        with tracing() as tr:
            context.queue_for(survivor).enqueue_write_buffer(buf_a, data)
        # The marker names the lost GPU, so the survivor re-prices the
        # upload in full.
        assert context.ledger.h2d_ns > h2d_ns
        assert tr.counter("dispatch.xfer_elim") == 0

    def test_failover_resplit_clears_written_buffer_markers(self):
        n = 64
        dispatch.configure(fusion=True)
        platform = cl.get_platforms()[0]
        context = cl.Context(platform.devices)
        program = cl.Program(
            context,
            """
            __kernel void keep(__global float *a) {
                int i = get_global_id(0);
                a[i] = a[i];
            }
            """,
        ).build()
        kernel = program.create_kernel("keep")
        buf = cl.Buffer(context, n)
        data = [2.0] * n
        device = platform.devices[0]
        context.queue_for(device).enqueue_write_buffer(buf, data)
        kernel.set_arg(0, buf)
        context.enqueue_nd_range(kernel, (n,), (8,))
        h2d_ns = context.ledger.h2d_ns
        with tracing() as tr:
            context.queue_for(device).enqueue_write_buffer(buf, data)
        # The split dispatch wrote the buffer (even value-identically),
        # so the next upload is priced.
        assert context.ledger.h2d_ns > h2d_ns
        assert tr.counter("dispatch.xfer_elim") == 0


class TestManagedArrayRoundTrip:
    def _device_write(self, context, queue, arr):
        kernel = make_kernel(
            context,
            """
            __kernel void bump(__global float *a) {
                int i = get_global_id(0);
                a[i] = a[i] + 1.0;
            }
            """,
            "bump",
        )
        buf = arr.to_device(queue)
        kernel.set_arg(0, buf)
        queue.enqueue_nd_range_kernel(kernel, [buf.n_elements])
        queue.finish()
        arr.mark_device_written()

    def test_round_trip_collapses_under_fusion(self):
        n = 64
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        arr = ManagedArray([1.0] * n, (n,))
        self._device_write(context, queue, arr)
        assert arr.host() == [2.0] * n  # read-back; device copy stays warm
        h2d_ns = context.ledger.h2d_ns
        with tracing() as tr:
            arr.to_device(queue)
        assert tr.counter("residency.warm") == 1
        assert tr.counter("dispatch.xfer_elim") == 1
        assert context.ledger.h2d_ns == h2d_ns

    def test_fusion_off_releases_the_device_copy(self):
        n = 16
        _, context, queue = gpu_context()
        arr = ManagedArray([1.0] * n, (n,))
        self._device_write(context, queue, arr)
        arr.host()
        assert arr._buffer is None

    def test_lost_device_copy_is_never_kept_warm(self):
        n = 16
        _, context, queue = gpu_context()
        dispatch.configure(fusion=True)
        arr = ManagedArray([1.0] * n, (n,))
        self._device_write(context, queue, arr)
        dispatch.configure(
            faults=FaultPlan([FaultSpec("kernel", kind=DEVICE_LOST)])
        )
        kernel = make_kernel(context, PRODUCER, "scale2")
        buf_a, buf_b = cl.Buffer(context, n), cl.Buffer(context, n)
        kernel.set_arg(0, buf_a)
        kernel.set_arg(1, buf_b)
        with pytest.raises(CLDeviceLost):
            queue.enqueue_nd_range_kernel(kernel, [n])
            queue.finish()
        assert queue.device.lost
        # Reads drain on lost devices, so the sync still works — but
        # the device copy must not be kept warm for a dead queue.
        assert arr.host() == [2.0] * n
        assert arr._buffer is None


class TestFiguresAgreement:
    def _with_fusion(self, fn):
        cl.reset_platforms()
        base = fn()
        cl.reset_platforms()
        dispatch.configure(fusion=True)
        with tracing() as tr:
            fused = fn()
        dispatch.configure(fusion=False)
        return base, fused, tr

    def test_lud_api_pipeline_agrees_and_gets_cheaper(self):
        base, fused, tr = self._with_fusion(lambda: lud.run_api(32))
        assert fused.result == base.result
        assert fused.meta["m"] == base.meta["m"]
        assert fused.total_ns < base.total_ns
        assert tr.counter("dispatch.fuse") == 32

    def test_lud_actor_pipeline_agrees_and_gets_cheaper(self):
        base, fused, tr = self._with_fusion(lambda: lud.run_actors(32))
        assert fused.result == base.result
        assert fused.meta["m"] == base.meta["m"]
        assert fused.total_ns < base.total_ns
        assert tr.counter("dispatch.fuse") == 32

    def test_docrank_api_agrees_and_elides_repeat_uploads(self):
        base, fused, tr = self._with_fusion(
            lambda: docrank.run_api(ndocs=64, v=16, repeats=4)
        )
        assert fused.result == base.result
        assert fused.total_ns < base.total_ns
        # Repeats 2..4 re-upload the unchanged corpus and weights.
        assert tr.counter("dispatch.xfer_elim") >= 6

    def test_docrank_actor_pipeline_agrees(self):
        base, fused, _ = self._with_fusion(
            lambda: docrank.run_actors(ndocs=64, v=16, repeats=4)
        )
        assert fused.result == base.result
