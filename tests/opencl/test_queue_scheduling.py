"""In-order vs out-of-order queue scheduling equivalence.

The contract under test (docs/ARCHITECTURE.md, "The queue scheduling
model"): switching a queue to ``CL_QUEUE_OUT_OF_ORDER_EXEC_MODE``
changes *only* the schedule timeline — buffer contents, warp maxima,
ledger totals and profiling timestamps are bit-identical — and the
out-of-order makespan is never longer than the in-order drain of the
same command stream.
"""

from __future__ import annotations

import pytest

from repro import opencl
from repro.opencl import (
    Buffer,
    CommandQueue,
    Context,
    Program,
    find_device,
    reset_platforms,
)
from repro.opencl.context import fresh_clock
from repro.runtime.oclenv import (
    device_matrix,
    reset_device_matrix,
    set_out_of_order_queues,
)
from repro.trace import tracing

SRC = """
__kernel void scale2(__global float *a) {
    int i = get_global_id(0);
    a[i] = a[i] * 2.0;
}

__kernel void addinto(__global float *src, __global float *dst) {
    int i = get_global_id(0);
    dst[i] = dst[i] + src[i];
}
"""

N = 64


@pytest.fixture(autouse=True)
def _clean_runtime():
    reset_platforms()
    reset_device_matrix()
    set_out_of_order_queues(False)
    yield
    set_out_of_order_queues(False)
    reset_device_matrix()
    reset_platforms()


def _setup(out_of_order):
    device = find_device("GPU")
    ctx = Context([device])
    queue = CommandQueue(ctx, device, out_of_order=out_of_order)
    program = Program(ctx, SRC).build([device])
    return ctx, queue, program


def _run_stream(out_of_order):
    """A stream with independent and dependent commands; returns the
    queue, final buffer contents and the recorded events."""
    reset_platforms()  # fresh Device objects: no busy-state carry-over
    with fresh_clock():
        ctx, queue, program = _setup(out_of_order)
        a = Buffer(ctx, N)
        b = Buffer(ctx, N)
        queue.enqueue_write_buffer(a, [float(i) for i in range(N)])
        queue.enqueue_write_buffer(b, [1.0] * N)
        scale = program.create_kernel("scale2")
        scale.set_arg(0, a)
        queue.enqueue_nd_range_kernel(scale, [N], [16])
        add = program.create_kernel("addinto")
        add.set_arg(0, a)
        add.set_arg(1, b)
        queue.enqueue_nd_range_kernel(add, [N], [16])
        out_a, out_b = [0.0] * N, [0.0] * N
        queue.enqueue_read_buffer(a, out_a)
        queue.enqueue_read_buffer(b, out_b)
        queue.finish()
        return queue, ctx, (out_a, out_b)


class TestEquivalence:
    def test_buffers_and_ledger_identical(self):
        q_in, ctx_in, data_in = _run_stream(out_of_order=False)
        q_ooo, ctx_ooo, data_ooo = _run_stream(out_of_order=True)
        assert data_in == data_ooo
        assert ctx_in.ledger.breakdown() == ctx_ooo.ledger.breakdown()
        assert ctx_in.ledger.kernel_launches == ctx_ooo.ledger.kernel_launches

    def test_profiling_timestamps_mode_independent(self):
        q_in, _, _ = _run_stream(out_of_order=False)
        q_ooo, _, _ = _run_stream(out_of_order=True)
        stamps = lambda q: [
            (e.command, e.queued_ns, e.submit_ns, e.start_ns, e.end_ns)
            for e in q.events
        ]
        assert stamps(q_in) == stamps(q_ooo)

    def test_ooo_makespan_never_longer(self):
        q_in, _, _ = _run_stream(out_of_order=False)
        q_ooo, _, _ = _run_stream(out_of_order=True)
        assert q_ooo.serial_makespan_ns == pytest.approx(q_in.makespan_ns)
        assert q_ooo.makespan_ns <= q_in.makespan_ns
        assert q_ooo.overlap_ns >= 0.0

    def test_in_order_schedule_is_the_serial_chain(self):
        q, _, _ = _run_stream(out_of_order=False)
        assert q.makespan_ns == pytest.approx(q.serial_makespan_ns)
        assert q.overlap_ns == 0.0
        end = 0.0
        for event in q.events:
            if event.command in (opencl.MARKER, opencl.BARRIER):
                continue
            assert event.sched_start_ns == pytest.approx(end)
            end = event.sched_end_ns

    def test_ooo_schedule_is_deterministic(self):
        q1, _, _ = _run_stream(out_of_order=True)
        q2, _, _ = _run_stream(out_of_order=True)
        sched = lambda q: [
            (e.command, e.sched_start_ns, e.sched_end_ns) for e in q.events
        ]
        assert sched(q1) == sched(q2)


class TestHazards:
    def _kernel(self, program, name, *bufs):
        k = program.create_kernel(name)
        for i, buf in enumerate(bufs):
            k.set_arg(i, buf)
        return k

    def test_independent_commands_overlap(self):
        ctx, queue, program = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        b = Buffer(ctx, N)
        e1 = queue.enqueue_write_buffer(a, [0.0] * N)  # dma_h2d
        k = self._kernel(program, "scale2", b)
        e2 = queue.enqueue_nd_range_kernel(k, [N], [16])  # compute
        # Different engines, no shared buffers: both start at 0.
        assert e1.sched_start_ns == 0.0
        assert e2.sched_start_ns == 0.0
        assert queue.makespan_ns == pytest.approx(
            max(e1.duration_ns, e2.duration_ns)
        )
        assert queue.overlap_ns == pytest.approx(
            min(e1.duration_ns, e2.duration_ns)
        )

    def test_raw_hazard_orders_reader_after_writer(self):
        ctx, queue, program = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        e_write = queue.enqueue_write_buffer(a, [0.0] * N)
        k = self._kernel(program, "scale2", a)  # reads and writes a
        e_kernel = queue.enqueue_nd_range_kernel(k, [N], [16])
        assert e_kernel.sched_start_ns == pytest.approx(e_write.sched_end_ns)

    def test_war_hazard_orders_writer_after_reader(self):
        ctx, queue, program = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        out = [0.0] * N
        e_read = queue.enqueue_read_buffer(a, out)  # dma_d2h, reads a
        e_write = queue.enqueue_write_buffer(a, [1.0] * N)  # writes a
        assert e_write.sched_start_ns == pytest.approx(e_read.sched_end_ns)

    def test_waw_hazard_orders_writes(self):
        ctx, queue, program = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        k = self._kernel(program, "scale2", a)  # compute engine, writes a
        e1 = queue.enqueue_nd_range_kernel(k, [N], [16])
        e2 = queue.enqueue_write_buffer(a, [1.0] * N)  # dma engine, writes a
        assert e2.sched_start_ns == pytest.approx(e1.sched_end_ns)

    def test_same_engine_serializes_without_hazards(self):
        ctx, queue, _ = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        b = Buffer(ctx, N)
        e1 = queue.enqueue_write_buffer(a, [0.0] * N)
        e2 = queue.enqueue_write_buffer(b, [0.0] * N)  # same dma_h2d engine
        assert e2.sched_start_ns == pytest.approx(e1.sched_end_ns)

    def test_explicit_wait_list_orders_unrelated_commands(self):
        ctx, queue, program = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        b = Buffer(ctx, N)
        e1 = queue.enqueue_write_buffer(a, [0.0] * N)
        k = self._kernel(program, "scale2", b)
        e2 = queue.enqueue_nd_range_kernel(k, [N], [16], wait_for=[e1])
        assert e2.sched_start_ns == pytest.approx(e1.sched_end_ns)


class TestSyncPoints:
    def test_barrier_fences_later_commands(self):
        ctx, queue, program = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        b = Buffer(ctx, N)
        e1 = queue.enqueue_write_buffer(a, [0.0] * N)
        barrier = queue.enqueue_barrier()
        k = program.create_kernel("scale2")
        k.set_arg(0, b)
        e2 = queue.enqueue_nd_range_kernel(k, [N], [16])
        assert barrier.sched_end_ns == pytest.approx(e1.sched_end_ns)
        assert e2.sched_start_ns >= barrier.sched_end_ns

    def test_marker_does_not_fence(self):
        ctx, queue, program = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        b = Buffer(ctx, N)
        e1 = queue.enqueue_write_buffer(a, [0.0] * N)
        marker = queue.enqueue_marker()
        k = program.create_kernel("scale2")
        k.set_arg(0, b)
        e2 = queue.enqueue_nd_range_kernel(k, [N], [16])
        assert marker.sched_end_ns == pytest.approx(e1.sched_end_ns)
        assert e2.sched_start_ns == 0.0  # independent: not held up

    def test_finish_fences_the_schedule(self):
        ctx, queue, program = _setup(out_of_order=True)
        a = Buffer(ctx, N)
        b = Buffer(ctx, N)
        e1 = queue.enqueue_write_buffer(a, [0.0] * N)
        queue.finish()
        k = program.create_kernel("scale2")
        k.set_arg(0, b)
        e2 = queue.enqueue_nd_range_kernel(k, [N], [16])
        assert e2.sched_start_ns >= e1.sched_end_ns

    def test_api_barrier_and_marker_wrappers(self):
        device = find_device("GPU")
        ctx = opencl.api.clCreateContext([device])
        queue = opencl.api.clCreateCommandQueue(
            ctx, device, properties=[opencl.CL_QUEUE_OUT_OF_ORDER_EXEC_MODE]
        )
        assert queue.out_of_order
        a = opencl.api.clCreateBuffer(ctx, [opencl.READ_WRITE], N)
        opencl.api.clEnqueueWriteBuffer(queue, a, True, [0.0] * N)
        marker = opencl.api.clEnqueueMarkerWithWaitList(queue)
        barrier = opencl.api.clEnqueueBarrierWithWaitList(queue)
        assert marker.command == opencl.MARKER
        assert barrier.command == opencl.BARRIER
        assert opencl.api.clCreateCommandQueue(ctx, device).out_of_order is False


class TestOverlapCounter:
    def test_overlap_reported_to_tracer(self):
        with tracing() as tr:
            ctx, queue, program = _setup(out_of_order=True)
            a = Buffer(ctx, N)
            b = Buffer(ctx, N)
            queue.enqueue_write_buffer(a, [0.0] * N)
            k = program.create_kernel("scale2")
            k.set_arg(0, b)
            queue.enqueue_nd_range_kernel(k, [N], [16])
        assert tr.counter("queue.overlap_ns") == pytest.approx(
            queue.overlap_ns
        )
        assert queue.overlap_ns > 0.0

    def test_no_counter_when_in_order(self):
        with tracing() as tr:
            ctx, queue, program = _setup(out_of_order=False)
            a = Buffer(ctx, N)
            queue.enqueue_write_buffer(a, [0.0] * N)
        assert tr.counter("queue.overlap_ns") == 0


class TestLudPipeline:
    """Figure-4's LUD actor pipeline, the paper workload the scheduler
    targets.  Shared-nothing mode (movable=False) re-transfers between
    hops, so transfers of iteration k+1 genuinely overlap the kernels of
    iteration k: out-of-order must *strictly* shorten the schedule while
    leaving the checksum and every ledger segment untouched."""

    N_LUD = 12

    def _run(self, out_of_order):
        from repro.apps.lud import runners

        set_out_of_order_queues(out_of_order)
        reset_device_matrix()
        with fresh_clock():
            outcome = runners.run_actors(self.N_LUD, "GPU", movable=False)
        envs = device_matrix().environments()
        assert len(envs) == 1  # one queue per device (Section 6.2.1)
        queue = envs[0].queue
        return outcome, queue

    def test_strict_makespan_reduction_with_identical_results(self):
        base, q_in = self._run(out_of_order=False)
        ooo, q_ooo = self._run(out_of_order=True)
        # Identical numerics and identical priced work...
        assert ooo.result == base.result
        assert ooo.meta["m"] == base.meta["m"]
        assert ooo.breakdown == base.breakdown
        # ...the same serial drain length...
        assert q_ooo.serial_makespan_ns == pytest.approx(q_in.makespan_ns)
        # ...but a strictly shorter schedule.
        assert q_ooo.makespan_ns < q_in.makespan_ns
        assert q_ooo.overlap_ns > 0.0

    def test_ooo_pipeline_is_deterministic(self):
        first, q1 = self._run(out_of_order=True)
        second, q2 = self._run(out_of_order=True)
        assert first.result == second.result
        assert q1.makespan_ns == pytest.approx(q2.makespan_ns)
        assert q1.overlap_ns == pytest.approx(q2.overlap_ns)
