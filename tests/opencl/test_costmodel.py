"""Cost-model unit tests: warps, scheduling, transfers, ledgers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.opencl.costmodel import (
    CostLedger,
    SimClock,
    _group_warp_costs,
    _schedule,
    cpu_spec,
    gpu_spec,
)


class TestWarpGrouping:
    def test_uniform_items_one_group(self):
        warps = _group_warp_costs([5] * 8, [8], [8], simd=4)
        assert warps == [[5, 5]]

    def test_divergence_pays_warp_max(self):
        warps = _group_warp_costs([1, 100, 1, 1], [4], [4], simd=4)
        assert warps == [[100]]

    def test_groups_partition_linear_items(self):
        # 8 items, 2 groups of 4, simd 2.
        item_ops = [1, 2, 3, 4, 10, 20, 30, 40]
        warps = _group_warp_costs(item_ops, [8], [4], simd=2)
        assert warps == [[2, 4], [20, 40]]

    def test_2d_grouping_respects_tiles(self):
        # 4x2 range with 2x2 tiles: two groups.
        #   items row0: a b c d / row1: e f g h
        item_ops = [1, 2, 3, 4, 5, 6, 7, 8]
        warps = _group_warp_costs(item_ops, [4, 2], [2, 2], simd=4)
        # group 0 holds (0,0),(1,0),(0,1),(1,1) = 1,2,5,6
        assert sorted(map(max, warps)) == [6, 8]

    def test_item_count_preserved(self):
        warps = _group_warp_costs(list(range(24)), [6, 4], [3, 2], simd=2)
        total_items = sum(
            len(w) for group in warps for w in [group]
        )
        assert len(warps) == (6 // 3) * (4 // 2)


class TestScheduler:
    def test_single_cu_serialises(self):
        assert _schedule([3.0, 4.0, 5.0], 1) == 12.0

    def test_many_cus_parallelise(self):
        assert _schedule([3.0, 4.0, 5.0], 3) == 5.0

    def test_greedy_balancing(self):
        # 4 groups on 2 CUs: greedy earliest-free.
        assert _schedule([4.0, 3.0, 2.0, 1.0], 2) == 5.0

    def test_empty(self):
        assert _schedule([], 8) == 0.0


class TestKernelPricing:
    def test_more_lanes_is_faster(self):
        small = gpu_spec(0.05)
        big = gpu_spec(1.0)
        items = [10] * 1024
        t_small = small.kernel_ns(items, [1024], [64]) - small.kernel_launch_ns
        t_big = big.kernel_ns(items, [1024], [64]) - big.kernel_launch_ns
        assert t_big < t_small

    def test_launch_overhead_floor(self):
        spec = gpu_spec(1.0)
        assert spec.kernel_ns([1], [1], [1]) >= spec.kernel_launch_ns

    def test_divergent_workload_costs_more_than_uniform(self):
        spec = gpu_spec(0.2)
        n = 512
        uniform = [50] * n
        divergent = [1] * n
        divergent[:: spec.simd_width] = [
            50 * spec.simd_width // spec.simd_width
        ] * (n // spec.simd_width)
        # same max per warp but far less total work: price must still
        # charge the warp max, so both cost the same per warp
        t_uniform = spec.kernel_ns(uniform, [n], [64])
        t_divergent = spec.kernel_ns(divergent, [n], [64])
        assert t_divergent == pytest.approx(t_uniform)


class TestTransfers:
    def test_transfer_scales_with_bytes(self):
        spec = gpu_spec(1.0)
        t1 = spec.transfer_ns(1000, to_device=True)
        t2 = spec.transfer_ns(2000, to_device=True)
        assert t2 > t1
        assert t2 - t1 == pytest.approx(1000 / spec.h2d_bytes_per_ns)

    def test_latency_floor(self):
        spec = gpu_spec(1.0)
        assert spec.transfer_ns(0, True) == spec.transfer_latency_ns

    def test_asymmetric_link(self):
        spec = gpu_spec(1.0)
        assert spec.h2d_bytes_per_ns != spec.d2h_bytes_per_ns


class TestClockAndLedger:
    def test_clock_accumulates(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now_ns == 7.5

    def test_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_clock_thread_safety(self):
        import threading

        clock = SimClock()

        def bump():
            for _ in range(1000):
                clock.advance(1.0)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now_ns == 8000.0

    def test_ledger_categories(self):
        ledger = CostLedger()
        ledger.charge("h2d", 1.0)
        ledger.charge("d2h", 2.0)
        ledger.charge("kernel", 3.0)
        ledger.charge("host", 4.0)
        assert ledger.total_ns == 10.0
        assert ledger.breakdown() == {
            "to_device": 1.0,
            "from_device": 2.0,
            "kernel": 3.0,
            "overhead": 4.0,
        }

    def test_ledger_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            CostLedger().charge("magic", 1.0)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(st.integers(1, 100), min_size=1, max_size=64),
    cus=st.integers(1, 8),
)
def test_property_makespan_bounds(ops, cus):
    """Makespan is between max(group) and sum(groups) for any schedule."""
    costs = [float(o) for o in ops]
    makespan = _schedule(costs, cus)
    assert makespan >= max(costs) - 1e-9
    assert makespan <= sum(costs) + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    item_ops=st.lists(st.integers(0, 50), min_size=8, max_size=8),
    simd=st.sampled_from([1, 2, 4, 8]),
)
def test_property_warp_max_dominates(item_ops, simd):
    """Total warp-priced work is >= the true total / simd and >= max."""
    warps = _group_warp_costs(item_ops, [8], [8], simd)
    priced = sum(sum(w) * simd for w in warps)
    assert priced >= sum(item_ops)
    if any(item_ops):
        assert max(max(w) for w in warps) == max(item_ops)
