"""Fusion x faults: injected failures on the deferred-dispatch path.

Regression coverage for two chaos hazards of the graph-level dispatch
optimiser:

* a fault injected on a kernel enqueue while another kernel sits in the
  queue's pending slot must flush that producer as an ordinary launch —
  its caller's Event stamped and priced exactly once, never stranded,
  never double-charged;
* transfer elimination (``dispatch.xfer_elim``) must never elide an
  upload to a device that was lost and failed over — the residency
  marker is per ``(epoch, device)``, so the re-upload on the survivor
  is always priced.
"""

import pytest

from repro import opencl as cl
from repro.errors import CLDeviceLost, CLOutOfResources
from repro.opencl import dispatch, faults
from repro.opencl.faults import (
    DEVICE_LOST,
    PERMANENT,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from repro.trace import tracing

pytestmark = pytest.mark.chaos

PRODUCER = """
__kernel void twice(__global float *a, __global float *b) {
    int i = get_global_id(0);
    b[i] = a[i] * 2.0;
}
"""

CONSUMER = """
__kernel void add1(__global float *b, __global float *c) {
    int i = get_global_id(0);
    c[i] = b[i] + 1.0;
}
"""

POKE = """
__kernel void poke(__global float *scratch) {
    scratch[0] = 1.0;
}
"""


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    cl.reset_platforms()
    yield
    dispatch.configure(fusion=False, faults=None)
    faults.clear()
    cl.reset_platforms()


def gpu_context():
    device = cl.find_device("GPU")
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device)
    return device, context, queue


def chain_setup(context, queue, n=16):
    """Buffers + bound producer/consumer kernels for the twice->add1
    chain, with the input already uploaded."""
    k_a = cl.Program(context, PRODUCER).build().create_kernel("twice")
    k_b = cl.Program(context, CONSUMER).build().create_kernel("add1")
    buf_a = cl.Buffer(context, n)
    buf_b = cl.Buffer(context, n)
    buf_c = cl.Buffer(context, n)
    queue.enqueue_write_buffer(buf_a, [float(i) for i in range(n)])
    k_a.set_arg(0, buf_a)
    k_a.set_arg(1, buf_b)
    k_b.set_arg(0, buf_b)
    k_b.set_arg(1, buf_c)
    return k_a, k_b, buf_b, buf_c


class TestPendingSlotFaults:
    """Satellite regression: fault on an enqueue with a pending kernel."""

    def test_permanent_fault_flushes_pending_without_double_charge(self):
        n = 16
        dispatch.configure(
            fusion=True,
            faults=FaultPlan([FaultSpec("kernel", PERMANENT, key="add1@*")]),
        )
        _, context, queue = gpu_context()
        k_a, k_b, buf_b, _ = chain_setup(context, queue, n)
        with tracing() as tr:
            event_a = queue.enqueue_nd_range_kernel(k_a, [n])
            assert context.ledger.kernel_launches == 0  # deferred
            with pytest.raises(CLOutOfResources) as exc:
                queue.enqueue_nd_range_kernel(k_b, [n])
            assert exc.value.fault is not None
        # The pending producer flushed as an ordinary launch: its event
        # is stamped and priced exactly once.
        assert context.ledger.kernel_launches == 1
        assert event_a.duration_ns > 0
        # Counter conservation: one injection, no fusion, one
        # fault-triggered flush, a single fault.kernel charge.
        assert tr.counter("fault.injected") == 1
        assert tr.counter("dispatch.fuse") == 0
        assert tr.counter("dispatch.fuse.reject.fault") == 1
        assert len([s for s in tr.spans if s.name == "fault.kernel"]) == 1
        # Nothing left pending; the producer is not re-launched and its
        # output is intact.
        queue.finish()
        assert context.ledger.kernel_launches == 1
        out_b = [0.0] * n
        queue.enqueue_read_buffer(buf_b, out_b)
        assert out_b == [float(i) * 2.0 for i in range(n)]

    def test_transient_fault_retries_then_fuses_once(self):
        n = 16
        dispatch.configure(
            fusion=True,
            faults=FaultPlan([FaultSpec("kernel", TRANSIENT, key="add1@*")]),
        )
        _, context, queue = gpu_context()
        k_a, k_b, _, buf_c = chain_setup(context, queue, n)
        with tracing() as tr:
            event_a = queue.enqueue_nd_range_kernel(k_a, [n])
            event_b = queue.enqueue_nd_range_kernel(k_b, [n])
            queue.finish()
        # The retry recovered in place and the pair still fused: the
        # two enqueues account to exactly one launch + one fusion.
        assert tr.counter("dispatch.fuse") == 1
        assert context.ledger.kernel_launches == 1
        assert event_a.duration_ns > 0
        assert event_b.duration_ns > 0
        # One injection, one retry, one backoff span, one aborted
        # attempt — charged exactly once.
        assert tr.counter("fault.injected") == 1
        assert tr.counter("fault.retry") == 1
        assert len([s for s in tr.spans if s.name == "fault.kernel"]) == 1
        assert len([s for s in tr.spans if s.name == "fault.backoff"]) == 1
        out_c = [0.0] * n
        queue.enqueue_read_buffer(buf_c, out_c)
        assert out_c == [float(i) * 2.0 + 1.0 for i in range(n)]

    def test_device_lost_still_flushes_pending_first(self):
        n = 16
        device, context, queue = gpu_context()
        k_a, k_b, buf_b, _ = chain_setup(context, queue, n)
        dispatch.configure(
            fusion=True,
            faults=FaultPlan(
                [FaultSpec("kernel", DEVICE_LOST, key="add1@*")]
            ),
        )
        with tracing() as tr:
            queue.enqueue_nd_range_kernel(k_a, [n])
            with pytest.raises(CLDeviceLost):
                queue.enqueue_nd_range_kernel(k_b, [n])
        assert device.lost
        # The producer executed before the loss surfaced, so buffer
        # contents stay consistent for the failover path.
        assert context.ledger.kernel_launches == 1
        assert tr.counter("dispatch.fuse.reject.device-lost") == 1
        assert list(buf_b.data) == [float(i) * 2.0 for i in range(n)]


class TestXferElimUnderLoss:
    """Satellite property: transfer elimination never elides an upload
    to a device that was lost and failed over."""

    def _chain(self, n, repeats):
        faults.clear()
        cl.reset_platforms()
        dispatch.configure(fusion=True)
        try:
            gpu = cl.find_device("GPU")
            cpu = cl.find_device("CPU")
            context = cl.Context([gpu, cpu])
            q_gpu = cl.CommandQueue(context, gpu)
            q_cpu = cl.CommandQueue(context, cpu)
            buf = cl.Buffer(context, n)
            scratch = cl.Buffer(context, 1)
            poke = cl.Program(context, POKE).build().create_kernel("poke")
            poke.set_arg(0, scratch)
            data = [float(i) for i in range(n)]
            plan = FaultPlan(
                [FaultSpec("kernel", DEVICE_LOST, key=f"poke@{gpu.name}")]
            )
            dispatch.configure(faults=plan)
            with tracing() as tr:
                q_gpu.enqueue_write_buffer(buf, data)
                for _ in range(repeats):
                    q_gpu.enqueue_write_buffer(buf, data)
                # Elision is active before the loss: every re-upload of
                # clean contents to the resident device was free.
                assert tr.counter("dispatch.xfer_elim") == repeats
                before = context.ledger.bytes_to_device
                assert before == buf.nbytes
                with pytest.raises(CLDeviceLost):
                    q_gpu.enqueue_nd_range_kernel(poke, [1])
                assert gpu.lost
                # The failed-over upload must be priced: the residency
                # marker names the lost device, never the survivor.
                q_cpu.enqueue_write_buffer(buf, data)
                assert tr.counter("dispatch.xfer_elim") == repeats
                assert context.ledger.bytes_to_device == before + buf.nbytes
                # And elision re-arms on the survivor as usual.
                q_cpu.enqueue_write_buffer(buf, data)
                assert tr.counter("dispatch.xfer_elim") == repeats + 1
        finally:
            dispatch.configure(fusion=False, faults=None)

    def test_failed_over_upload_is_always_priced(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = hypothesis.strategies

        @hypothesis.settings(max_examples=20, deadline=None)
        @hypothesis.given(n=st.integers(4, 64), repeats=st.integers(1, 4))
        def prop(n, repeats):
            self._chain(n, repeats)

        prop()
