"""Event profiling timestamps: QUEUED / SUBMIT / START / END.

Regression for the timeline collapse where all four timestamps were
aliased: a busy device must delay START past SUBMIT (queueing delay),
and consecutive commands on one device must never overlap.
"""

import pytest

from repro.errors import CLInvalidValue
from repro.opencl import Buffer, CommandQueue, Context
from repro.opencl.costmodel import SimClock, gpu_spec
from repro.opencl.platform import Device


def make_device():
    return Device(gpu_spec(name="event-test GPU"))


class TestIdleDevice:
    def test_immediate_start_on_idle_device(self):
        device = make_device()
        ctx = Context([device], clock=SimClock())
        queue = CommandQueue(ctx, device)
        buf = Buffer(ctx, 8)
        event = queue.enqueue_write_buffer(buf, [1.0] * 8)
        assert event.queued_ns == 0.0
        # In-order queue flushes immediately: SUBMIT == QUEUED.
        assert event.submit_ns == event.queued_ns
        # Idle device: no queueing delay.
        assert event.start_ns == event.submit_ns
        assert event.queue_delay_ns == 0.0
        expected = device.spec.transfer_ns(buf.nbytes, to_device=True)
        assert event.end_ns == pytest.approx(event.start_ns + expected)
        assert event.duration_ns == pytest.approx(expected)

    def test_consecutive_commands_do_not_overlap(self):
        device = make_device()
        ctx = Context([device], clock=SimClock())
        queue = CommandQueue(ctx, device)
        buf = Buffer(ctx, 64)
        for _ in range(4):
            queue.enqueue_write_buffer(buf, [0.0] * 64)
        for prev, cur in zip(queue.events, queue.events[1:]):
            assert cur.queued_ns >= prev.queued_ns
            assert cur.start_ns >= prev.end_ns


class TestBusyDevice:
    def test_start_exceeds_submit_when_device_is_busy(self):
        """Two hosts (contexts with independent clocks) share one
        device: the second host submits at its own time 0 while the
        device is still busy with the first host's transfer, so its
        command has START > SUBMIT — the queueing delay the aliased
        timestamps could never show."""
        device = make_device()
        ctx1 = Context([device], clock=SimClock())
        ctx2 = Context([device], clock=SimClock())
        q1 = CommandQueue(ctx1, device)
        q2 = CommandQueue(ctx2, device)
        big = Buffer(ctx1, 4096)
        first = q1.enqueue_write_buffer(big, [0.0] * 4096)
        assert device.busy_until_ns == pytest.approx(first.end_ns)

        small = Buffer(ctx2, 8)
        second = q2.enqueue_write_buffer(small, [0.0] * 8)
        assert second.queued_ns == 0.0
        assert second.submit_ns == second.queued_ns
        assert second.start_ns == pytest.approx(first.end_ns)
        assert second.start_ns > second.submit_ns
        assert second.queue_delay_ns == pytest.approx(first.end_ns)
        expected = device.spec.transfer_ns(small.nbytes, to_device=True)
        assert second.end_ns == pytest.approx(second.start_ns + expected)

    def test_device_timeline_is_shared_across_queues(self):
        device = make_device()
        ctx1 = Context([device], clock=SimClock())
        ctx2 = Context([device], clock=SimClock())
        q1 = CommandQueue(ctx1, device)
        q2 = CommandQueue(ctx2, device)
        b1 = Buffer(ctx1, 16)
        b2 = Buffer(ctx2, 16)
        events = [
            q1.enqueue_write_buffer(b1, [0.0] * 16),
            q2.enqueue_write_buffer(b2, [0.0] * 16),
            q1.enqueue_read_buffer(b1, [0.0] * 16),
        ]
        ordered = sorted(events, key=lambda e: e.start_ns)
        for prev, cur in zip(ordered, ordered[1:]):
            assert cur.start_ns >= prev.end_ns


class TestProfilingInfo:
    def test_profiling_lookup_matches_attributes(self):
        device = make_device()
        ctx1 = Context([device], clock=SimClock())
        ctx2 = Context([device], clock=SimClock())
        q1 = CommandQueue(ctx1, device)
        q2 = CommandQueue(ctx2, device)
        blocker = Buffer(ctx1, 1024)
        q1.enqueue_write_buffer(blocker, [0.0] * 1024)
        buf = Buffer(ctx2, 8)
        event = q2.enqueue_write_buffer(buf, [0.0] * 8)
        assert event.profiling_info("QUEUED") == event.queued_ns
        assert event.profiling_info("SUBMIT") == event.submit_ns
        assert event.profiling_info("START") == event.start_ns
        assert event.profiling_info("END") == event.end_ns
        # The four values are genuinely distinct stages, not aliases.
        assert event.profiling_info("START") > event.profiling_info("SUBMIT")
        assert event.profiling_info("END") > event.profiling_info("START")

    def test_bad_profiling_name_rejected(self):
        device = make_device()
        ctx = Context([device], clock=SimClock())
        queue = CommandQueue(ctx, device)
        buf = Buffer(ctx, 4)
        event = queue.enqueue_write_buffer(buf, [0.0] * 4)
        with pytest.raises(CLInvalidValue):
            event.profiling_info("COMPLETE")
