"""Property tests over random fusible/unfusible kernel chains.

The graph-level optimiser's contract, quantified over arbitrary
sequences of elementwise, gather and single-work-item kernels on a
shared buffer pool:

* **agreement** — with fusion enabled, every buffer ends bit-identical
  to the unfused run, whatever mix of legal and illegal pairs the chain
  contains;
* **conservation** — each enqueued kernel is accounted exactly once:
  ``dispatch.fuse.reject == kernels - 2 * dispatch.fuse`` (a fused pair
  consumes two dispatches, every other dispatch flushes with a reason);
* **demotion** — known-illegal pairs (mismatched shapes, gather access,
  write aliasing, missing dataflow edge) never fuse and surface the
  matching ``dispatch.fuse.reject.<reason>`` counter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import opencl as cl
from repro.opencl import dispatch
from repro.trace import tracing

pytestmark = pytest.mark.fusion

N = 32
N_BUFFERS = 3

EW_SOURCE = """
__kernel void ew(__global int *src, __global int *dst, int m, int c) {
    int i = get_global_id(0);
    dst[i] = src[i] * m + c;
}
"""

GATHER_SOURCE = """
__kernel void gather(__global int *src, __global int *dst, int s, int n) {
    int i = get_global_id(0);
    dst[i] = src[(i + s) % n];
}
"""

PICK_SOURCE = """
__kernel void pick(__global int *src, __global int *dst, int k) {
    dst[0] = src[k] + 1;
}
"""


@pytest.fixture(autouse=True)
def _clean():
    dispatch.configure(fusion=False)
    cl.reset_platforms()
    yield
    dispatch.configure(fusion=False)
    cl.reset_platforms()


def ew_steps():
    return st.tuples(
        st.just("ew"),
        st.integers(0, N_BUFFERS - 1),  # src (may equal dst: aliasing)
        st.integers(0, N_BUFFERS - 1),  # dst
        st.integers(-3, 3),  # m
        st.integers(-5, 5),  # c
        st.sampled_from([N, N // 2]),  # gsz
    )


def gather_steps():
    # src != dst is enforced in run_chain: an in-place gather is racy
    # in real OpenCL, so the substrate makes no ordering promise for it.
    return st.tuples(
        st.just("gather"),
        st.integers(0, N_BUFFERS - 1),
        st.integers(0, N_BUFFERS - 1),
        st.integers(0, N - 1),  # shift
        st.just(N),
        st.sampled_from([N, N // 2]),
    )


def pick_steps():
    return st.tuples(
        st.just("pick"),
        st.integers(0, N_BUFFERS - 1),
        st.integers(0, N_BUFFERS - 1),
        st.integers(0, N - 1),  # picked index
        st.just(0),
        st.just(1),  # single-work-item range
    )


def chains():
    return st.lists(
        st.one_of(ew_steps(), gather_steps(), pick_steps()),
        min_size=2,
        max_size=8,
    )


def run_chain(chain, init):
    """Execute *chain* on a fresh context; returns every buffer's final
    contents and the number of kernels actually enqueued."""
    device = cl.find_device("GPU")
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device)
    kernels = {
        "ew": cl.Program(context, EW_SOURCE).build().create_kernel("ew"),
        "gather": cl.Program(context, GATHER_SOURCE)
        .build()
        .create_kernel("gather"),
        "pick": cl.Program(context, PICK_SOURCE).build().create_kernel("pick"),
    }
    buffers = []
    for b in range(N_BUFFERS):
        buf = cl.Buffer(context, N, "int")
        queue.enqueue_write_buffer(buf, init[b])
        buffers.append(buf)
    enqueued = 0
    for kind, src, dst, s0, s1, gsz in chain:
        if kind == "gather" and src == dst:
            continue
        kernel = kernels[kind]
        kernel.set_arg(0, buffers[src])
        kernel.set_arg(1, buffers[dst])
        kernel.set_arg(2, s0)
        if kind != "pick":
            kernel.set_arg(3, s1)
        queue.enqueue_nd_range_kernel(kernel, [gsz])
        enqueued += 1
    outs = []
    for buf in buffers:
        out = [0] * N
        queue.enqueue_read_buffer(buf, out)
        outs.append(out)
    queue.finish()
    return outs, enqueued


def initial_contents():
    return [[(b * 31 + i * 7) % 23 - 11 for i in range(N)]
            for b in range(N_BUFFERS)]


class TestChainAgreement:
    @given(chain=chains())
    @settings(deadline=None, max_examples=40)
    def test_fused_chain_matches_unfused_bit_for_bit(self, chain):
        init = initial_contents()
        cl.reset_platforms()
        dispatch.configure(fusion=False)
        plain, _ = run_chain(chain, init)
        cl.reset_platforms()
        dispatch.configure(fusion=True)
        try:
            fused, _ = run_chain(chain, init)
        finally:
            dispatch.configure(fusion=False)
        assert fused == plain

    @given(chain=chains())
    @settings(deadline=None, max_examples=40)
    def test_every_dispatch_is_accounted_once(self, chain):
        init = initial_contents()
        cl.reset_platforms()
        dispatch.configure(fusion=True)
        try:
            with tracing() as tr:
                _, enqueued = run_chain(chain, init)
        finally:
            dispatch.configure(fusion=False)
        fused = tr.counter("dispatch.fuse")
        rejected = tr.counter("dispatch.fuse.reject")
        assert rejected == enqueued - 2 * fused


class TestIllegalPairsDemote:
    def _run_pair(self, first, second):
        init = initial_contents()
        cl.reset_platforms()
        dispatch.configure(fusion=True)
        try:
            with tracing() as tr:
                fused, _ = run_chain([first, second], init)
        finally:
            dispatch.configure(fusion=False)
        cl.reset_platforms()
        plain, _ = run_chain([first, second], init)
        assert fused == plain
        return tr

    @given(m=st.integers(-3, 3), c=st.integers(-5, 5))
    @settings(deadline=None, max_examples=15)
    def test_shape_mismatch_never_fuses(self, m, c):
        tr = self._run_pair(("ew", 0, 1, m, c, N), ("ew", 1, 2, m, c, N // 2))
        assert tr.counter("dispatch.fuse") == 0
        assert tr.counter("dispatch.fuse.reject.shape") == 1

    @given(shift=st.integers(1, N - 1))
    @settings(deadline=None, max_examples=15)
    def test_gather_consumer_never_fuses(self, shift):
        tr = self._run_pair(
            ("ew", 0, 1, 2, 1, N), ("gather", 1, 2, shift, N, N)
        )
        assert tr.counter("dispatch.fuse") == 0
        assert tr.counter("dispatch.fuse.reject.gather") == 1

    @given(m=st.integers(-3, 3))
    @settings(deadline=None, max_examples=15)
    def test_write_aliasing_never_fuses(self, m):
        tr = self._run_pair(("ew", 0, 1, 2, 0, N), ("ew", 1, 1, m, 1, N))
        assert tr.counter("dispatch.fuse") == 0
        assert tr.counter("dispatch.fuse.reject.aliasing") == 1

    @given(m=st.integers(-3, 3))
    @settings(deadline=None, max_examples=15)
    def test_disjoint_pair_never_fuses(self, m):
        tr = self._run_pair(("ew", 0, 0, 2, 1, N), ("ew", 1, 1, m, 2, N))
        # Both kernels alias src == dst, so the aliasing rule fires
        # before the dataflow rule ever gets asked.
        assert tr.counter("dispatch.fuse") == 0
        assert tr.counter("dispatch.fuse.reject") == 2

    @given(k=st.integers(0, N - 1), m=st.integers(-3, 3))
    @settings(deadline=None, max_examples=15)
    def test_single_item_producer_fuses_as_prologue(self, k, m):
        tr = self._run_pair(("pick", 0, 1, k, 0, 1), ("ew", 1, 2, m, 1, N))
        assert tr.counter("dispatch.fuse") == 1
        assert tr.counter("dispatch.fuse.launches_saved") == 1
