"""OpenCL substrate: platforms, contexts, buffers, queues, programs."""

import pytest

from repro import opencl
from repro.errors import (
    CLBuildProgramFailure,
    CLInvalidContext,
    CLInvalidKernelArgs,
    CLInvalidValue,
    CLInvalidWorkGroupSize,
    CLMemObjectReleased,
)
from repro.opencl import (
    Buffer,
    CommandQueue,
    Context,
    Program,
    find_device,
    get_platforms,
    reset_platforms,
    scaled_platform,
    set_platforms,
)

SQUARE = """
__kernel void square(__global float *a, __global float *out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = a[i] * a[i]; }
}
"""


@pytest.fixture(autouse=True)
def _default_platforms():
    reset_platforms()
    yield
    reset_platforms()


class TestDiscovery:
    def test_default_installation(self):
        platforms = get_platforms()
        assert len(platforms) == 1
        types = {d.device_type for d in platforms[0].devices}
        assert types == {"CPU", "GPU"}

    def test_find_device(self):
        assert find_device("GPU").device_type == "GPU"
        assert find_device("CPU").device_type == "CPU"

    def test_scaled_platform_installable(self):
        set_platforms([scaled_platform(0.5)])
        gpu = find_device("GPU")
        assert "x0.5" in gpu.name
        reset_platforms()
        assert "x0.5" not in find_device("GPU").name

    def test_empty_platform_list_rejected(self):
        with pytest.raises(CLInvalidValue):
            set_platforms([])


class TestContextAndBuffers:
    def test_context_needs_devices(self):
        with pytest.raises(CLInvalidValue):
            Context([])

    def test_buffer_allocation_and_dtype(self):
        ctx = Context([find_device("GPU")])
        buf = Buffer(ctx, 16, "int")
        assert buf.n_elements == 16
        assert buf.nbytes == 64
        assert buf.data == [0] * 16

    def test_copy_host_ptr(self):
        ctx = Context([find_device("GPU")])
        buf = Buffer(
            ctx, 3, "float", ["READ_ONLY", "COPY_HOST_PTR"],
            host_data=[1.0, 2.0, 3.0],
        )
        assert buf.data == [1.0, 2.0, 3.0]

    def test_bad_dtype_rejected(self):
        ctx = Context([find_device("GPU")])
        with pytest.raises(CLInvalidValue):
            Buffer(ctx, 4, "double")

    def test_use_after_release(self):
        ctx = Context([find_device("GPU")])
        buf = Buffer(ctx, 4)
        buf.release()
        with pytest.raises(CLMemObjectReleased):
            buf.check_alive()
        with pytest.raises(CLMemObjectReleased):
            buf.release()

    def test_context_release_frees_buffers(self):
        ctx = Context([find_device("GPU")])
        buf = Buffer(ctx, 4)
        ctx.release()
        assert buf.released


class TestQueues:
    def _ctx_queue(self):
        device = find_device("GPU")
        ctx = Context([device])
        return ctx, CommandQueue(ctx, device)

    def test_queue_requires_context_device(self):
        gpu = find_device("GPU")
        cpu = find_device("CPU")
        ctx = Context([gpu])
        with pytest.raises(CLInvalidContext):
            CommandQueue(ctx, cpu)

    def test_write_read_round_trip(self):
        ctx, queue = self._ctx_queue()
        buf = Buffer(ctx, 4)
        queue.enqueue_write_buffer(buf, [1.0, 2.0, 3.0, 4.0])
        out = [0.0] * 4
        queue.enqueue_read_buffer(buf, out)
        assert out == [1.0, 2.0, 3.0, 4.0]

    def test_size_mismatch_rejected(self):
        ctx, queue = self._ctx_queue()
        buf = Buffer(ctx, 4)
        with pytest.raises(CLInvalidValue):
            queue.enqueue_write_buffer(buf, [1.0])
        with pytest.raises(CLInvalidValue):
            queue.enqueue_read_buffer(buf, [0.0] * 3)

    def test_cross_context_buffer_rejected(self):
        device = find_device("GPU")
        ctx1 = Context([device])
        ctx2 = Context([device])
        queue = CommandQueue(ctx1, device)
        buf = Buffer(ctx2, 4)
        with pytest.raises(CLInvalidContext):
            queue.enqueue_write_buffer(buf, [0.0] * 4)

    def test_events_are_ordered_on_the_timeline(self):
        ctx, queue = self._ctx_queue()
        buf = Buffer(ctx, 1024)
        e1 = queue.enqueue_write_buffer(buf, [0.0] * 1024)
        out = [0.0] * 1024
        e2 = queue.enqueue_read_buffer(buf, out)
        assert e1.end_ns <= e2.queued_ns
        assert e1.duration_ns > 0
        assert e1.profiling_info("START") == e1.start_ns
        with pytest.raises(CLInvalidValue):
            e1.profiling_info("BOGUS")

    def test_copy_buffer(self):
        ctx, queue = self._ctx_queue()
        src = Buffer(ctx, 4)
        dst = Buffer(ctx, 4)
        queue.enqueue_write_buffer(src, [5.0, 6.0, 7.0, 8.0])
        queue.enqueue_copy_buffer(src, dst)
        assert dst.data == [5.0, 6.0, 7.0, 8.0]

    def test_ledger_accumulates_bytes(self):
        ctx, queue = self._ctx_queue()
        buf = Buffer(ctx, 8, "int")
        queue.enqueue_write_buffer(buf, list(range(8)))
        assert ctx.ledger.bytes_to_device == 32


class TestProgramsAndKernels:
    def _env(self):
        device = find_device("GPU")
        ctx = Context([device])
        queue = CommandQueue(ctx, device)
        return device, ctx, queue

    def test_build_and_dispatch(self):
        device, ctx, queue = self._env()
        program = Program(ctx, SQUARE).build()
        kernel = program.create_kernel("square")
        a = Buffer(ctx, 8)
        out = Buffer(ctx, 8)
        queue.enqueue_write_buffer(a, [float(i) for i in range(8)])
        kernel.set_arg(0, a)
        kernel.set_arg(1, out)
        kernel.set_arg(2, 8)
        event = queue.enqueue_nd_range_kernel(kernel, [8], [4])
        host = [0.0] * 8
        queue.enqueue_read_buffer(out, host)
        assert host == [float(i * i) for i in range(8)]
        assert event.command == "NDRANGE_KERNEL"
        assert ctx.ledger.kernel_launches == 1

    def test_build_failure_carries_log(self):
        _, ctx, _ = self._env()
        program = Program(ctx, "__kernel void broken( {")
        with pytest.raises(CLBuildProgramFailure) as info:
            program.build()
        assert info.value.build_log

    def test_kernel_before_build_rejected(self):
        _, ctx, _ = self._env()
        program = Program(ctx, SQUARE)
        with pytest.raises(CLInvalidValue):
            program.create_kernel("square")

    def test_unknown_kernel_name(self):
        _, ctx, _ = self._env()
        program = Program(ctx, SQUARE).build()
        with pytest.raises(CLInvalidValue):
            program.create_kernel("nope")
        assert program.kernel_names() == ["square"]

    def test_unset_arg_rejected_at_dispatch(self):
        device, ctx, queue = self._env()
        kernel = Program(ctx, SQUARE).build().create_kernel("square")
        kernel.set_arg(0, Buffer(ctx, 4))
        with pytest.raises(CLInvalidKernelArgs):
            queue.enqueue_nd_range_kernel(kernel, [4], [4])

    def test_arg_type_validation(self):
        device, ctx, _ = self._env()
        kernel = Program(ctx, SQUARE).build().create_kernel("square")
        with pytest.raises(CLInvalidValue):
            kernel.set_arg(0, 42)  # array param wants a Buffer
        with pytest.raises(CLInvalidValue):
            kernel.set_arg(2, Buffer(ctx, 4))  # scalar param
        with pytest.raises(CLInvalidValue):
            kernel.set_arg(0, Buffer(ctx, 4, "int"))  # dtype mismatch
        with pytest.raises(CLInvalidValue):
            kernel.set_arg(9, 1)

    def test_work_group_size_validation(self):
        device, ctx, queue = self._env()
        kernel = Program(ctx, SQUARE).build().create_kernel("square")
        kernel.set_arg(0, Buffer(ctx, 8))
        kernel.set_arg(1, Buffer(ctx, 8))
        kernel.set_arg(2, 8)
        with pytest.raises(CLInvalidWorkGroupSize):
            queue.enqueue_nd_range_kernel(kernel, [8], [3])
        with pytest.raises(CLInvalidWorkGroupSize):
            queue.enqueue_nd_range_kernel(kernel, [8], [8, 1])
        with pytest.raises(CLInvalidValue):
            queue.enqueue_nd_range_kernel(kernel, [0])

    def test_default_local_size_chosen(self):
        device, ctx, queue = self._env()
        kernel = Program(ctx, SQUARE).build().create_kernel("square")
        kernel.set_arg(0, Buffer(ctx, 24))
        kernel.set_arg(1, Buffer(ctx, 24))
        kernel.set_arg(2, 24)
        queue.enqueue_nd_range_kernel(kernel, [24])  # no local size

    def test_choose_local_size_divides(self):
        device = find_device("GPU")
        for size in (7, 24, 64, 100, 1024):
            local = device.choose_local_size([size])
            assert size % local[0] == 0
            assert local[0] <= device.spec.max_work_group_size


class TestFlatApi:
    def test_full_ceremony(self):
        from repro.opencl.api import (
            CL_DEVICE_TYPE_GPU,
            CL_MEM_READ_ONLY,
            CL_MEM_WRITE_ONLY,
            clBuildProgram,
            clCreateBuffer,
            clCreateCommandQueue,
            clCreateContext,
            clCreateKernel,
            clCreateProgramWithSource,
            clEnqueueNDRangeKernel,
            clEnqueueReadBuffer,
            clEnqueueWriteBuffer,
            clFinish,
            clGetDeviceIDs,
            clGetPlatformIDs,
            clReleaseContext,
        )

        platform = clGetPlatformIDs()[0]
        device = clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU)[0]
        ctx = clCreateContext([device])
        queue = clCreateCommandQueue(ctx, device)
        program = clCreateProgramWithSource(ctx, SQUARE)
        clBuildProgram(program)
        kernel = clCreateKernel(program, "square")
        buf_a = clCreateBuffer(ctx, [CL_MEM_READ_ONLY], 4, "float")
        buf_o = clCreateBuffer(ctx, [CL_MEM_WRITE_ONLY], 4, "float")
        clEnqueueWriteBuffer(queue, buf_a, True, [1.0, 2.0, 3.0, 4.0])
        from repro.opencl.api import clSetKernelArg

        clSetKernelArg(kernel, 0, buf_a)
        clSetKernelArg(kernel, 1, buf_o)
        clSetKernelArg(kernel, 2, 4)
        clEnqueueNDRangeKernel(queue, kernel, 1, [4])
        out = [0.0] * 4
        clEnqueueReadBuffer(queue, buf_o, True, out)
        clFinish(queue)
        assert out == [1.0, 4.0, 9.0, 16.0]
        assert ctx.ledger.api_calls >= 9
        clReleaseContext(ctx)

    def test_work_dim_checked(self):
        from repro.opencl.api import (
            clCreateContext,
            clEnqueueNDRangeKernel,
            clCreateCommandQueue,
        )

        device = find_device("GPU")
        ctx = clCreateContext([device])
        queue = clCreateCommandQueue(ctx, device)
        with pytest.raises(CLInvalidValue):
            clEnqueueNDRangeKernel(queue, None, 2, [8])
