"""Property tests over random fault plans.

The reliability layer's contract, quantified over arbitrary seeded
plans:

* **replay** — the same plan under the same seed produces bit-identical
  ledgers and buffer contents, however dense the injections;
* **recovery** — transient-only plans that stay within the retry budget
  never surface an error and never corrupt outputs;
* **exhaustion** — when retries run out, the surfaced exception carries
  the original fault's kind and op;
* **failover** — a multi-device dispatch that loses a device produces
  the same buffer contents as the fault-free dispatch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import opencl as cl
from repro.errors import CLError
from repro.opencl import dispatch, faults
from repro.opencl.faults import (
    DEVICE_LOST,
    PERMANENT,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)

pytestmark = pytest.mark.faults

SRC = """
__kernel void scale2(__global int *a, int n) {
    int i = get_global_id(0);
    if (i < n) { a[i] = a[i] * 2; }
}
"""


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    cl.reset_platforms()
    yield
    faults.clear()
    cl.reset_platforms()


def run_workload(rounds: int = 4):
    """A small host-driven workload on a fresh platform.

    Returns (ledger fields, final buffer contents, error kinds seen) —
    everything a replay must reproduce exactly.
    """
    cl.reset_platforms()
    device = cl.find_device("GPU")
    context = cl.Context([device])
    queue = cl.CommandQueue(context, device)
    program = cl.Program(context, SRC).build()
    kernel = program.create_kernel("scale2")
    buf = cl.Buffer(context, 64, dtype="int")
    out = [0] * 64
    errors = []
    for value in range(rounds):
        try:
            queue.enqueue_write_buffer(buf, [value + 1] * 64)
            kernel.set_arg(0, buf)
            kernel.set_arg(1, 64)
            queue.enqueue_nd_range_kernel(kernel, (64,))
            queue.enqueue_read_buffer(buf, out)
        except CLError as exc:
            errors.append(
                (type(exc).__name__,
                 exc.fault.kind if exc.fault else None)
            )
    ledger = context.ledger
    fields = (
        ledger.h2d_ns, ledger.d2h_ns, ledger.kernel_ns, ledger.host_ns,
        ledger.api_calls, ledger.kernel_launches,
        ledger.bytes_to_device, ledger.bytes_from_device,
    )
    return fields, list(out), errors


plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32),
    rate=st.floats(min_value=0.0, max_value=0.6),
    kinds=st.sampled_from([(TRANSIENT,), (PERMANENT,),
                           (TRANSIENT, PERMANENT)]),
)


class TestReplay:
    @settings(deadline=None, max_examples=30)
    @given(plans)
    def test_same_seed_bit_identical_ledgers_and_outputs(self, plan):
        dispatch.configure(faults=plan,
                           retry=RetryPolicy(max_attempts=2,
                                             backoff_ns=50.0))
        first = run_workload()
        plan.reset()
        second = run_workload()
        assert first == second


class TestRecovery:
    @settings(deadline=None, max_examples=30)
    @given(st.sampled_from(["h2d", "d2h", "kernel"]),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=3))
    def test_transient_faults_within_budget_never_surface(
        self, op, burst, index
    ):
        # A burst of `burst` consecutive transient faults recovers as
        # long as the retry budget exceeds it (attempts > burst).
        dispatch.configure(
            faults=FaultPlan(
                [FaultSpec(op, kind=TRANSIENT, index=index, times=burst)]
            ),
            retry=RetryPolicy(max_attempts=burst + 1, backoff_ns=10.0),
        )
        _, out, errors = run_workload()
        assert errors == []
        assert out == [8] * 64  # last of 4 rounds writes 4, kernel doubles

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_recovered_or_not_outputs_never_corrupt(self, seed):
        # A seeded random plan may exhaust the retry budget (each retry
        # redraws), but every surfaced error must be transient-kind and
        # a clean run of the same workload must be unaffected after.
        _, clean_out, _ = run_workload()
        dispatch.configure(
            faults=FaultPlan(seed=seed, rate=0.25, kinds=(TRANSIENT,)),
            retry=RetryPolicy(max_attempts=4, backoff_ns=0.0),
        )
        _, faulted_out, errors = run_workload()
        for name, kind in errors:
            assert kind == TRANSIENT
            assert name in ("CLTransferFailure", "CLOutOfResources")
        if not errors:
            assert faulted_out == clean_out
        dispatch.configure(faults=None)
        _, after_out, after_errors = run_workload()
        assert after_errors == []
        assert after_out == clean_out


class TestExhaustion:
    @settings(deadline=None, max_examples=15)
    @given(st.sampled_from(["h2d", "d2h", "kernel"]),
           st.integers(min_value=1, max_value=3))
    def test_exhaustion_surfaces_original_fault_kind(self, op, attempts):
        dispatch.configure(
            faults=FaultPlan([FaultSpec(op, kind=TRANSIENT, times=8)]),
            retry=RetryPolicy(max_attempts=attempts, backoff_ns=0.0),
        )
        _, _, errors = run_workload(rounds=1)
        assert len(errors) == 1
        name, kind = errors[0]
        assert kind == TRANSIENT
        expected = {
            "h2d": "CLTransferFailure",
            "d2h": "CLTransferFailure",
            "kernel": "CLOutOfResources",
        }[op]
        assert name == expected


class TestFailover:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=5))
    def test_failover_output_equals_fault_free_output(self, occurrence):
        def split_dispatch():
            platform = cl.get_platforms()[0]
            context = cl.Context(platform.devices)
            program = cl.Program(context, SRC).build()
            kernel = program.create_kernel("scale2")
            buf = cl.Buffer(context, 512, dtype="int")
            survivor_queue = context.queue_for(platform.devices[0])
            survivor_queue.enqueue_write_buffer(buf, [3] * 512)
            kernel.set_arg(0, buf)
            kernel.set_arg(1, 512)
            for _ in range(occurrence + 1):
                context.enqueue_nd_range(kernel, (512,), (32,))
            out = [0] * 512
            survivor = next(
                d for d in platform.devices if not d.lost
            )
            context.queue_for(survivor).enqueue_read_buffer(buf, out)
            return out

        cl.reset_platforms()
        faults.clear()
        clean = split_dispatch()

        cl.reset_platforms()
        dispatch.configure(faults=FaultPlan([
            FaultSpec("kernel", kind=DEVICE_LOST, key="scale2@*R9*",
                      index=occurrence)
        ]))
        faulted = split_dispatch()
        assert faulted == clean
