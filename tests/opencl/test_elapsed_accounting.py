"""Schedule-aware end-to-end accounting: attribution and fence semantics.

Three groups of guarantees around the composed
:class:`~repro.opencl.costmodel.ScheduleTimeline`:

* **attribution properties** (hypothesis): however serial charges,
  placed commands and host waits interleave, the exact attribution
  buckets sum to precisely ``elapsed_ns`` — no nanosecond is counted
  twice or dropped — and command streams issued through real queues
  leave no idle gap;
* **fence regressions**: ``finish()``, barriers and markers fence the
  *composed cross-queue* timeline exactly like they fence a single
  queue — a finish on one queue gates later commands on every queue
  (through the host cursor), a barrier fences only its own queue, a
  marker fences nothing;
* **reset regressions**: ``reset_ledger()`` restarts the composed
  origin for the next measured run without corrupting queue-local
  state (``overlap_ns``) and without stale cross-epoch placements
  inflating the new run.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opencl import (
    CommandQueue,
    Context,
    ScheduleTimeline,
    TIMELINE_SEGMENTS,
    find_device,
    reset_platforms,
)
from repro.opencl.context import fresh_clock

pytestmark = pytest.mark.sched


def _setup(out_of_order, clock=None):
    device = find_device("GPU")
    ctx = Context([device], clock=clock)
    queue = CommandQueue(ctx, device, out_of_order=out_of_order)
    return ctx, queue


def _kernel(queue, ns, reads=(), writes=(), wait_for=None):
    return queue.enqueue_priced_kernel(
        "k", ns, reads=reads, writes=writes, wait_for=wait_for
    )


class TestAttributionProperties:
    """sum(attribution) == elapsed, exactly, for arbitrary timelines."""

    @settings(deadline=None)
    @given(st.lists(
        st.one_of(
            # a serial charge of one of the four kinds
            st.tuples(st.just("serial"),
                      st.sampled_from(("transfer", "compute", "api")),
                      st.integers(min_value=0, max_value=500)),
            # an arbitrarily placed command (overlaps and gaps allowed)
            st.tuples(st.just("place"),
                      st.sampled_from(("transfer", "compute", "api")),
                      st.tuples(st.integers(min_value=0, max_value=2000),
                                st.integers(min_value=0, max_value=500))),
            # a blocking host wait to an arbitrary instant
            st.tuples(st.just("wait"), st.just("api"),
                      st.integers(min_value=0, max_value=2500)),
        ),
        max_size=25,
    ))
    def test_attribution_sums_to_elapsed_exactly(self, script):
        timeline = ScheduleTimeline()
        for op, kind, arg in script:
            if op == "serial":
                timeline.serial_advance(kind, float(arg))
            elif op == "place":
                start, dur = arg
                timeline.place(kind, float(start), float(start + dur))
            else:
                timeline.host_wait(float(arg))
        exact = timeline.attribution_exact()
        assert set(exact) == set(TIMELINE_SEGMENTS)
        assert sum(exact.values(), Fraction(0)) == Fraction(
            timeline.elapsed_ns
        )
        assert all(value >= 0 for value in exact.values())
        # The float view mirrors the exact one, key for key.
        assert timeline.attribution() == {
            kind: float(value) for kind, value in exact.items()
        }

    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(st.tuples(st.integers(min_value=0, max_value=2),
                           st.integers(min_value=1, max_value=300),
                           st.booleans()),
                 min_size=1, max_size=15),
        st.booleans(),
    )
    def test_queue_streams_have_no_idle_and_exact_coverage(
        self, stream, out_of_order
    ):
        """Commands issued through a real queue (with interleaved API
        charges and finishes) cover the composed axis gaplessly: every
        start is the max of already-covered instants."""
        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order, clock)
            for buf_id, ns, also_api in stream:
                _kernel(queue, float(ns), writes=(buf_id,))
                if also_api:
                    ctx.charge_api_call()
            queue.finish()
            exact = clock.timeline.attribution_exact()
            assert exact["idle"] == 0
            assert sum(exact.values(), Fraction(0)) == Fraction(
                clock.timeline.elapsed_ns
            )

    def test_single_inorder_queue_elapsed_equals_busy(self):
        """With one in-order queue and no host work, end-to-end time is
        the queue's serial drain: no overlap, elapsed == busy time."""
        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order=False, clock=clock)
            for ns in (100.0, 250.0, 75.0):
                _kernel(queue, ns)
            queue.finish()
            assert clock.timeline.elapsed_ns == clock.now_ns == 425.0
            attribution = clock.timeline.attribution()
            assert attribution["overlap"] == 0.0
            assert attribution["idle"] == 0.0
            assert attribution["compute"] == 425.0

    def test_elapsed_never_exceeds_busy_or_precedes_host(self):
        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order=True, clock=clock)
            _kernel(queue, 100.0, writes=(1,))
            _kernel(queue, 80.0, writes=(2,))  # overlaps on paper? no:
            # same engine — serializes; an api call does overlap.
            ctx.charge_api_call()
            assert clock.timeline.elapsed_ns <= clock.now_ns
            assert clock.timeline.host_pos_ns <= clock.timeline.elapsed_ns


class TestComposedFences:
    """finish/barrier/marker semantics on the cross-queue axis."""

    def test_finish_on_one_queue_gates_commands_on_another(self):
        reset_platforms()
        with fresh_clock() as clock:
            ctx1, q1 = _setup(out_of_order=True, clock=clock)
            ctx2, q2 = _setup(out_of_order=True, clock=clock)
            e1 = _kernel(q1, 500.0)
            q1.finish()  # blocking host call: cursor -> 500
            assert clock.timeline.host_pos_ns == 500.0
            e2 = _kernel(q2, 100.0)
            # q2 has no dependency on q1, but the host only issued its
            # command after the blocking finish returned.
            assert e2.e2e_start_ns == 500.0
            assert e2.sched_start_ns == 0.0  # queue-local: unaffected

    def test_finish_without_new_commands_is_idempotent(self):
        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order=False, clock=clock)
            _kernel(queue, 300.0)
            queue.finish()
            queue.finish()
            assert clock.timeline.host_pos_ns == 300.0
            assert clock.timeline.elapsed_ns == 300.0

    def test_barrier_fences_own_queue_only(self):
        reset_platforms()
        with fresh_clock() as clock:
            ctx1, q1 = _setup(out_of_order=True, clock=clock)
            ctx2, q2 = _setup(out_of_order=True, clock=clock)
            _kernel(q1, 400.0, writes=(1,))
            q1.enqueue_barrier()
            after_own = _kernel(q1, 50.0, writes=(2,))
            other = _kernel(q2, 60.0, writes=(9,))
            # Own queue: fenced behind the 400 ns kernel on both axes.
            assert after_own.sched_start_ns == 400.0
            assert after_own.e2e_start_ns == 400.0
            # Other queue: not fenced at all (barriers are queue-local;
            # no blocking host call happened).
            assert other.e2e_start_ns == 0.0

    def test_marker_does_not_fence_either_axis(self):
        from repro.opencl import Buffer

        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order=True, clock=clock)
            buf = Buffer(ctx, 8)
            _kernel(queue, 400.0, writes=(99,))
            marker = queue.enqueue_marker()
            # A transfer on the DMA engine with no hazard against the
            # kernel: a barrier would hold it, the marker must not.
            free = queue.enqueue_write_buffer(buf, [0.0] * 8)
            assert marker.e2e_end_ns == 400.0  # completes with the work
            assert free.sched_start_ns == 0.0  # independent: not held
            assert free.e2e_start_ns == 0.0

    def test_barrier_like_single_queue_composed(self):
        """A two-queue program where only the host cursor couples the
        queues behaves like the equivalent single-queue program."""
        reset_platforms()
        with fresh_clock() as clock:
            ctx1, q1 = _setup(out_of_order=True, clock=clock)
            _kernel(q1, 100.0, writes=(1,))
            q1.enqueue_barrier()
            tail1 = _kernel(q1, 30.0, writes=(2,))
            single_elapsed_contrib = tail1.e2e_end_ns
        reset_platforms()
        with fresh_clock() as clock:
            ctx1, q1 = _setup(out_of_order=True, clock=clock)
            ctx2, q2 = _setup(out_of_order=True, clock=clock)
            _kernel(q1, 100.0, writes=(1,))
            q1.enqueue_barrier()
            tail = _kernel(q1, 30.0, writes=(2,))
            assert tail.e2e_end_ns == single_elapsed_contrib


class TestResetLedger:
    """reset_ledger restarts the composed origin, and nothing else."""

    def test_reset_restarts_origin_and_preserves_overlap(self):
        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order=True, clock=clock)
            _kernel(queue, 100.0, writes=(1,))
            _kernel(queue, 80.0, reads=(1,), writes=(2,))
            overlap_before = queue.overlap_ns
            assert clock.timeline.elapsed_ns == 180.0
            ctx.reset_ledger()
            assert clock.timeline.elapsed_ns == 0.0
            assert queue.e2e_makespan_ns == 0.0  # stale epoch reads 0
            assert queue.overlap_ns == overlap_before  # queue-local kept
            fresh = _kernel(queue, 40.0, writes=(3,))
            assert fresh.e2e_start_ns == 0.0  # new run starts at origin

    def test_stale_cross_epoch_dependencies_do_not_inflate(self):
        """An explicit wait on an event placed before the reset must
        not drag its old composed coordinates into the new epoch."""
        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order=True, clock=clock)
            old = _kernel(queue, 900.0, writes=(1,))
            ctx.reset_ledger()
            dependent = _kernel(queue, 50.0, wait_for=[old])
            assert dependent.e2e_start_ns == 0.0
            # Queue-locally the wait still binds (that axis never
            # reset): the dependent starts after the old command.
            assert dependent.sched_start_ns == 900.0

    def test_reset_then_finish_does_not_drag_host_cursor(self):
        """finish() after a reset must not advance the cursor to the
        previous epoch's makespan."""
        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order=False, clock=clock)
            _kernel(queue, 700.0)
            ctx.reset_ledger()
            queue.finish()
            assert clock.timeline.host_pos_ns == 0.0
            assert clock.timeline.elapsed_ns == 0.0

    def test_hazards_rebind_across_reset(self):
        """Hazard tables still reference pre-reset events; composed
        placement must treat them as satisfied at the new origin."""
        reset_platforms()
        with fresh_clock() as clock:
            ctx, queue = _setup(out_of_order=True, clock=clock)
            _kernel(queue, 600.0, writes=(7,))
            ctx.reset_ledger()
            reader = _kernel(queue, 10.0, reads=(7,))
            assert reader.e2e_start_ns == 0.0
            assert reader.sched_start_ns == 600.0  # local RAW still real
