"""Error propagation and runtime faults in compiled Ensemble programs."""

import pytest

from repro import ensemble
from repro.errors import ActorError, KirRuntimeError
from repro.runtime.vm import EnsembleVM


def run(source: str, timeout: float = 20.0) -> EnsembleVM:
    vm = EnsembleVM(ensemble.compile_source(source))
    vm.run(timeout)
    return vm


MAIN = """
type mainI is interface(out integer unused)
stage home {{
  actor Main presents mainI {{
    constructor() {{}}
    behaviour {{
      {body}
      stop;
    }}
  }}
  boot {{ m = new Main(); }}
}}
"""


class TestRuntimeFaults:
    def test_division_by_zero_surfaces_as_actor_error(self):
        with pytest.raises(ActorError):
            run(MAIN.format(body="x = 0; y = 1 / x; printInt(y);"))

    def test_array_out_of_bounds(self):
        with pytest.raises(ActorError):
            run(MAIN.format(body="a = new integer[2] of 0; a[5] := 1;"))

    def test_negative_index(self):
        with pytest.raises(ActorError, match="out of range"):
            run(MAIN.format(body="a = new integer[2] of 0; x = a[0 - 1];"))

    def test_error_message_names_the_actor(self):
        with pytest.raises(ActorError, match="Main"):
            run(MAIN.format(body="x = 1 / 0;"))

    def test_deadlocked_program_times_out(self):
        source = """
type aI is interface(in integer never)
stage home {
  actor A presents aI {
    constructor() {}
    behaviour {
      receive v from never;
      stop;
    }
  }
  boot { a = new A(); }
}
"""
        compiled = ensemble.compile_source(source)
        vm = EnsembleVM(compiled)
        with pytest.raises(ActorError, match="did not stop"):
            vm.run(0.3)
        vm.stage.stop_all()


class TestKernelRuntimeFaults:
    def test_kernel_out_of_bounds_surfaces(self):
        source = """
type data_t is struct (real [] values)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type hostI is interface (
  out settings_t requests;
  out data_t dout;
  in data_t din
)
type kI is interface(in settings_t requests)
stage home {
  opencl actor K presents kI {
    constructor() {}
    behaviour {
      receive req from requests;
      receive d from req.input;
      d.values[99] := 1.0;
      send d on req.output;
    }
  }
  actor Host presents hostI {
    constructor() {}
    behaviour {
      ws = new integer[1] of 2;
      gs = new integer[1] of 0;
      i = new in data_t;
      o = new out data_t;
      connect dout to i;
      connect o to din;
      config = new settings_t(ws, gs, i, o);
      d = new data_t(new real[2] of 0.0);
      send config on requests;
      send d on dout;
      receive d from din;
      stop;
    }
  }
  boot {
    h = new Host();
    k = new K();
    connect h.requests to k.requests;
  }
}
"""
        with pytest.raises(ActorError, match="out of range"):
            run(source)


class TestIsolation:
    def test_two_vms_do_not_share_state(self):
        source = MAIN.format(body="printInt(randomInt(100));")
        vm1 = run(source)
        vm2 = run(source)
        assert vm1.output == vm2.output  # fresh deterministic rng each
        assert vm1.stage is not vm2.stage

    def test_actor_instances_have_private_state(self):
        source = """
type cI is interface(out integer tx)
type sI is interface(in integer rx)
stage home {
  actor Counter presents cI {
    count = 0;
    constructor() {}
    behaviour {
      count := count + 1;
      if count > 2 then { stop; }
      send count on tx;
    }
  }
  actor Sink presents sI {
    total = 0;
    constructor() {}
    behaviour {
      receive v from rx;
      total := total + v;
      if total == 6 then {
        printInt(total);
        stop;
      }
    }
  }
  boot {
    a = new Counter();
    b = new Counter();
    s = new Sink();
    connect a.tx to s.rx;
    connect b.tx to s.rx;
  }
}
"""
        vm = run(source)
        # each counter independently sends 1 then 2: total = 6
        assert vm.output == ["6"]
