"""Ensemble lexer and parser edge cases."""

import pytest

from repro.ensemble import ast, parse
from repro.ensemble.lexer import tokenize
from repro.errors import LexError, ParseError


class TestLexer:
    def test_range_vs_real(self):
        # `0 .. 9` must not lex 0. as a real.
        toks = [(t.kind, t.text) for t in tokenize("0 .. 9")]
        assert toks[:3] == [("int", "0"), ("op", ".."), ("int", "9")]

    def test_real_literal_forms(self):
        toks = [(t.kind, t.text) for t in tokenize("1.5 2.0e3")]
        assert toks[0] == ("real", "1.5")
        assert toks[1] == ("real", "2.0e3")

    def test_assignment_operators_distinct(self):
        toks = [t.text for t in tokenize("a := b = c == d")]
        assert toks[1] == ":="
        assert toks[3] == "="
        assert toks[5] == "=="

    def test_string_escapes(self):
        toks = tokenize('"a\\nb\\t\\"q\\""')
        assert toks[0].value if hasattr(toks[0], "value") else True
        assert toks[0].text == 'a\nb\t"q"'

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('"oops')

    def test_newline_in_string_rejected(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_comments(self):
        toks = [t.text for t in tokenize("a // x\n/* y\nz */ b")]
        assert toks[:2] == ["a", "b"]

    def test_keywords_are_not_identifiers(self):
        toks = tokenize("send sending")
        assert toks[0].kind == "kw"
        assert toks[1].kind == "id"


MINIMAL_STAGE = """
stage home {{
  actor A presents I {{
    constructor() {{}}
    behaviour {{ {body} }}
  }}
  boot {{ a = new A(); }}
}}
"""


def parse_with_body(body: str) -> ast.Program:
    return parse("type I is interface(out integer x)\n"
                 + MINIMAL_STAGE.format(body=body))


class TestParser:
    def test_program_requires_stage(self):
        with pytest.raises(ParseError, match="stage"):
            parse("type I is interface(out integer x)")

    def test_stage_requires_boot(self):
        with pytest.raises(ParseError, match="boot"):
            parse("""
stage home {
  actor A presents I {
    constructor() {}
    behaviour { stop; }
  }
}
""")

    def test_two_stages_rejected(self):
        with pytest.raises(ParseError, match="one stage"):
            parse("""
stage a { boot { } }
stage b { boot { } }
""")

    def test_opencl_settings_parsed(self):
        program = parse("""
type s_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in integer input;
    out integer output
)
type I is interface(in s_t requests)
stage home {
  opencl <device_index=1, device_type=CPU, platform_index=0>
  actor K presents I {
    constructor() {}
    behaviour {
      receive req from requests;
      receive d from req.input;
      send d on req.output;
    }
  }
  boot { k = new K(); }
}
""")
        actor = program.stage.actors[0]
        assert actor.is_opencl
        assert actor.opencl_settings == {
            "device_index": "1",
            "device_type": "CPU",
            "platform_index": "0",
        }

    def test_precedence(self):
        program = parse_with_body("x = 1 + 2 * 3 < 10 and true;")
        bind = program.stage.actors[0].behaviour[0]
        assert isinstance(bind, ast.Bind)
        top = bind.value
        assert isinstance(top, ast.BinOpE) and top.op == "and"
        cmp_ = top.left
        assert isinstance(cmp_, ast.BinOpE) and cmp_.op == "<"

    def test_symbolic_logic_operators(self):
        program = parse_with_body("x = true && false || !true;")
        top = program.stage.actors[0].behaviour[0].value
        assert top.op == "or"
        assert top.left.op == "and"
        assert isinstance(top.right, ast.UnOpE)

    def test_field_and_index_chains(self):
        program = parse_with_body("v = a.b[1][2].c;")
        value = program.stage.actors[0].behaviour[0].value
        assert isinstance(value, ast.FieldAccess)
        assert value.field == "c"
        assert isinstance(value.obj, ast.IndexAccess)

    def test_new_array_with_dims_and_fill(self):
        program = parse_with_body("v = new real[2][3] of 1.5;")
        value = program.stage.actors[0].behaviour[0].value
        assert isinstance(value, ast.NewArray)
        assert len(value.dims) == 2
        assert isinstance(value.fill, ast.RealLit)

    def test_new_local_array(self):
        program = parse_with_body("v = new local real[8] of 0.0;")
        value = program.stage.actors[0].behaviour[0].value
        assert value.space == "local"

    def test_new_channel_forms(self):
        program = parse_with_body(
            "i = new in real[][]; o = new out mov integer;"
        )
        stmts = program.stage.actors[0].behaviour
        assert isinstance(stmts[0].value, ast.NewChannel)
        assert stmts[0].value.direction == "in"
        assert isinstance(stmts[0].value.element, ast.ArrayTypeExpr)
        assert stmts[1].value.movable

    def test_buffered_channel_declaration(self):
        program = parse(
            "type I is interface(in integer jobs[16])\n"
            + MINIMAL_STAGE.format(body="stop;")
        )
        chan = program.interfaces[0].channels[0]
        assert chan.type.buffer == 16

    def test_buffer_on_out_channel_rejected(self):
        with pytest.raises(ParseError, match="receiving"):
            parse(
                "type I is interface(out integer jobs[16])\n"
                + MINIMAL_STAGE.format(body="stop;")
            )

    def test_else_if_chain(self):
        program = parse_with_body(
            "if true then { stop; } else if false then { stop; } "
            "else { stop; }"
        )
        if_stmt = program.stage.actors[0].behaviour[0]
        assert isinstance(if_stmt.orelse[0], ast.If)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_with_body("x = 1 y = 2;")

    def test_error_positions_reported(self):
        with pytest.raises(ParseError) as info:
            parse(
                "type I is interface(out integer x)\n"
                "stage home {\n  actor ; \n}"
            )
        assert info.value.line == 3

    def test_struct_fields_semicolon_separated(self):
        program = parse(
            "type p_t is struct (real x; real y; integer tag)\n"
            "type I is interface(out integer x)\n"
            + MINIMAL_STAGE.format(body="stop;")
        )
        assert [f.name for f in program.structs[0].fields] == [
            "x", "y", "tag",
        ]
