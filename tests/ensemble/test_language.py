"""Ensemble language semantics, exercised through compiled programs."""

import pytest

from repro import ensemble


def run(source: str) -> str:
    return ensemble.run_source(source, timeout=30).text


def single_actor(body: str, state: str = "", extra: str = "") -> str:
    """Wrap *body* as the behaviour of a lone actor that runs once."""
    return f"""
type mainI is interface(out integer unused)
stage home {{
  {extra}
  actor Main presents mainI {{
    {state}
    constructor() {{}}
    behaviour {{
      {body}
      stop;
    }}
  }}
  boot {{
    m = new Main();
  }}
}}
"""


class TestExpressions:
    def test_integer_arithmetic(self):
        out = run(single_actor("printInt(7 + 3 * 2 - 8 / 2 % 3);"))
        assert out == str(7 + 3 * 2 - 1)

    def test_integer_division_truncates(self):
        assert run(single_actor("printInt(7 / 2);")) == "3"
        assert run(single_actor("printInt(0 - 7 / 2);")) == "-3"

    def test_real_arithmetic_and_promotion(self):
        assert run(single_actor("printReal(1 / 2 + 0.25);")) == "0.25"
        assert run(single_actor("printReal(1 / 2.0);")) == "0.5"

    def test_boolean_logic(self):
        body = """
        a = true;
        b = false;
        printBool(a and not b);
        printBool(a and b or true);
        """
        assert run(single_actor(body)) == "truetrue"

    def test_comparisons(self):
        body = "printBool(1 < 2); printBool(2.5 >= 2.5); printBool(1 == 2);"
        assert run(single_actor(body)) == "truetruefalse"

    def test_string_literals_with_escapes(self):
        assert run(single_actor('printString("a\\tb\\n");')) == "a\tb\n"

    def test_math_builtins(self):
        assert run(single_actor("printReal(sqrt(9.0));")) == "3.0"
        assert run(single_actor("printReal(fmax(1.0, 2.5));")) == "2.5"

    def test_conversions(self):
        body = "printInt(realToInt(3.7)); printReal(intToReal(2));"
        assert run(single_actor(body)) == "32.0"


class TestStatements:
    def test_bind_vs_assign(self):
        body = "x = 1; x := x + 41; printInt(x);"
        assert run(single_actor(body)) == "42"

    def test_if_else_chain(self):
        body = """
        x = 5;
        if x > 10 then { printString("big"); }
        else if x > 3 then { printString("mid"); }
        else { printString("small"); }
        """
        assert run(single_actor(body)) == "mid"

    def test_for_is_inclusive(self):
        body = "s = 0; for i = 1 .. 4 do { s := s + i; } printInt(s);"
        assert run(single_actor(body)) == "10"

    def test_for_with_empty_range(self):
        body = "s = 0; for i = 5 .. 4 do { s := s + 1; } printInt(s);"
        assert run(single_actor(body)) == "0"

    def test_while(self):
        body = "x = 1; while x < 100 do { x := x * 2; } printInt(x);"
        assert run(single_actor(body)) == "128"

    def test_nested_loops_scope(self):
        body = """
        total = 0;
        for i = 0 .. 2 do {
          for j = 0 .. 2 do { total := total + i * 3 + j; }
        }
        printInt(total);
        """
        assert run(single_actor(body)) == str(sum(i * 3 + j for i in range(3) for j in range(3)))


class TestArraysAndStructs:
    def test_array_fill_and_index(self):
        body = """
        a = new integer[4] of 7;
        a[2] := 9;
        printInt(a[0] + a[2]);
        printInt(length(a));
        """
        assert run(single_actor(body)) == "164"

    def test_2d_arrays(self):
        body = """
        m = new real[2][3] of 1.5;
        m[1][2] := 4.5;
        printReal(m[0][0] + m[1][2]);
        printInt(length(m));
        printInt(length(m[0]));
        """
        assert run(single_actor(body)) == "6.023"

    def test_struct_construction_and_fields(self):
        extra = ""
        source = f"""
type point_t is struct (real x; real y)
type mainI is interface(out integer unused)
stage home {{
  actor Main presents mainI {{
    constructor() {{}}
    behaviour {{
      p = new point_t(1.5, 2.5);
      p.x := p.x + p.y;
      printReal(p.x);
      stop;
    }}
  }}
  boot {{ m = new Main(); }}
}}
"""
        assert run(source) == "4.0"

    def test_struct_with_array_field(self):
        source = """
type box_t is struct (integer [] items; integer count)
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour {
      b = new box_t(new integer[3] of 2, 3);
      b.items[1] := 5;
      total = 0;
      for i = 0 .. b.count - 1 do { total := total + b.items[i]; }
      printInt(total);
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        assert run(source) == "9"


class TestFunctionsAndState:
    def test_stage_functions(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  function fib(integer n) : integer {
    if n < 2 then { return n; }
    return fib(n - 1) + fib(n - 2);
  }
  actor Main presents mainI {
    constructor() {}
    behaviour {
      printInt(fib(10));
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        assert run(source) == "55"

    def test_actor_state_persists_across_iterations(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    total = 0;
    constructor() {}
    behaviour {
      total := total + 1;
      if total == 3 then {
        printInt(total);
        stop;
      }
    }
  }
  boot { m = new Main(); }
}
"""
        assert run(source) == "3"

    def test_constructor_arguments(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    base = 0;
    constructor(integer start) { base := start; }
    behaviour {
      printInt(base + 2);
      stop;
    }
  }
  boot { m = new Main(40); }
}
"""
        assert run(source) == "42"


class TestActorCommunication:
    def test_ping_pong(self):
        source = """
type pingI is interface(out integer tx; in integer rx)
type pongI is interface(in integer rx; out integer tx)
stage home {
  actor Ping presents pingI {
    constructor() {}
    behaviour {
      send 1 on tx;
      receive reply from rx;
      printInt(reply);
      stop;
    }
  }
  actor Pong presents pongI {
    constructor() {}
    behaviour {
      receive v from rx;
      send v + 41 on tx;
    }
  }
  boot {
    a = new Ping();
    b = new Pong();
    connect a.tx to b.rx;
    connect b.tx to a.rx;
  }
}
"""
        assert run(source) == "42"

    def test_dynamic_channels(self):
        source = """
type srvI is interface(in integer jobs)
type cliI is interface(out integer jobs)
stage home {
  actor Client presents cliI {
    constructor() {}
    behaviour {
      send 20 on jobs;
      send 22 on jobs;
      stop;
    }
  }
  actor Server presents srvI {
    total = 0;
    constructor() {}
    behaviour {
      receive v from jobs;
      total := total + v;
      if total == 42 then {
        printInt(total);
        stop;
      }
    }
  }
  boot {
    c = new Client();
    s = new Server();
    connect c.jobs to s.jobs;
  }
}
"""
        assert run(source) == "42"

    def test_struct_messages_are_copied(self):
        source = """
type msg_t is struct (integer [] data)
type txI is interface(out msg_t out1)
type rxI is interface(in msg_t in1)
stage home {
  actor Tx presents txI {
    constructor() {}
    behaviour {
      m = new msg_t(new integer[2] of 5);
      send m on out1;
      m.data[0] := 99;
      printInt(m.data[0]);
      stop;
    }
  }
  actor Rx presents rxI {
    constructor() {}
    behaviour {
      receive m from in1;
      printInt(m.data[0]);
      stop;
    }
  }
  boot {
    t = new Tx();
    r = new Rx();
    connect t.out1 to r.in1;
  }
}
"""
        out = run(source)
        assert sorted(out) == ["5", "9", "9"]  # 99 and 5 in either order
