"""OpenCL actors end to end: kernel extraction, flattening, dispatch,
movability and device selection."""

import pytest

from repro import ensemble
from repro.opencl import reset_platforms
from repro.runtime.oclenv import device_matrix, reset_device_matrix
from repro.runtime.vm import EnsembleVM


@pytest.fixture(autouse=True)
def _fresh():
    reset_platforms()
    reset_device_matrix()
    yield
    reset_device_matrix()
    reset_platforms()


def run_vm(source: str) -> tuple[list[str], EnsembleVM]:
    compiled = ensemble.compile_source(source)
    vm = EnsembleVM(compiled)
    vm.run(60)
    return vm.output, vm


SCALE_PROGRAM = """
type data_t is struct (
    real [] values;
    real factor
)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in {mov}data_t input;
    out {mov}data_t output
)
type hostI is interface (
  out settings_t requests;
  out {mov}data_t dout;
  in {mov}data_t din
)
type kI is interface(in settings_t requests)

stage home {{
  opencl <device_index=0, device_type={device}>
  actor Scale presents kI {{
    constructor() {{}}
    behaviour {{
      receive req from requests;
      receive d from req.input;
      i = get_global_id(0);
      d.values[i] := d.values[i] * d.factor;
      send d on req.output;
    }}
  }}

  actor Host presents hostI {{
    constructor() {{}}
    behaviour {{
      n = 8;
      ws = new integer[1] of n;
      gs = new integer[1] of 0;
      i = new in {mov}data_t;
      o = new out {mov}data_t;
      connect dout to i;
      connect o to din;
      config = new settings_t(ws, gs, i, o);
      v = new real[n] of 3.0;
      d = new data_t(v, 2.0);
      send config on requests;
      send d on dout;
      receive d from din;
      printReal(d.values[0]);
      printReal(d.values[7]);
      stop;
    }}
  }}

  boot {{
    h = new Host();
    k = new Scale();
    connect h.requests to k.requests;
  }}
}}
"""


class TestDispatch:
    @pytest.mark.parametrize("device", ["GPU", "CPU"])
    def test_scale_kernel_runs_on_device(self, device):
        output, _ = run_vm(
            SCALE_PROGRAM.format(mov="", device=device)
        )
        assert output == ["6.0", "6.0"]
        envs = device_matrix().environments()
        assert len(envs) == 1
        assert envs[0].device.device_type == device
        assert envs[0].context.ledger.kernel_launches == 1

    def test_movable_variant_skips_readback(self):
        output, _ = run_vm(SCALE_PROGRAM.format(mov="mov ", device="GPU"))
        assert output == ["6.0", "6.0"]
        ledger = device_matrix().combined_ledger()
        # values (8 floats) + the factor carrier go up; only the host
        # access at the end reads the values back.
        assert ledger.bytes_to_device == 8 * 4 + 4
        assert ledger.bytes_from_device == 8 * 4

    def test_nonmovable_variant_reads_back_eagerly(self):
        output, _ = run_vm(SCALE_PROGRAM.format(mov="", device="GPU"))
        assert output == ["6.0", "6.0"]
        ledger = device_matrix().combined_ledger()
        assert ledger.bytes_from_device >= 8 * 4


class TestKernelExtraction:
    def test_plan_contents(self):
        compiled = ensemble.compile_source(
            SCALE_PROGRAM.format(mov="", device="GPU")
        )
        plan = compiled.actors["Scale"].kernel_plan
        assert plan.kernel_name == "scale_kernel"
        assert plan.device_type == "GPU"
        assert [p.name for p in plan.params] == ["values", "factor"]
        assert plan.written_params == ["values"]
        assert "values" in plan.read_params
        assert not plan.in_movable

    def test_generated_source_is_valid_kernel_c(self):
        from repro import kernelc

        compiled = ensemble.compile_source(
            SCALE_PROGRAM.format(mov="", device="GPU")
        )
        plan = compiled.actors["Scale"].kernel_plan
        module = kernelc.compile_source(plan.kernel_source)
        kernel = module.kernel("scale_kernel")
        # Scalars travel as 1-element arrays (paper Section 6.1.2).
        assert str(kernel.params[1].type) == "global float[]"

    def test_scalar_writeback(self):
        source = """
type data_t is struct (integer counter)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type hostI is interface (
  out settings_t requests;
  out data_t dout;
  in data_t din
)
type kI is interface(in settings_t requests)
stage home {
  opencl actor Bump presents kI {
    constructor() {}
    behaviour {
      receive req from requests;
      receive d from req.input;
      d.counter := d.counter + 1;
      send d on req.output;
    }
  }
  actor Host presents hostI {
    constructor() {}
    behaviour {
      ws = new integer[1] of 1;
      gs = new integer[1] of 0;
      i = new in data_t;
      o = new out data_t;
      connect dout to i;
      connect o to din;
      config = new settings_t(ws, gs, i, o);
      d = new data_t(41);
      send config on requests;
      send d on dout;
      receive d from din;
      printInt(d.counter);
      stop;
    }
  }
  boot {
    h = new Host();
    b = new Bump();
    connect h.requests to b.requests;
  }
}
"""
        output, _ = run_vm(source)
        assert output == ["42"]

    def test_multidim_flattening_dims_params(self):
        from repro.apps.matmul.sources import ensemble_opencl_source

        compiled = ensemble.compile_source(ensemble_opencl_source(8))
        plan = compiled.actors["Multiply"].kernel_plan
        names = [p.name for p in plan.params]
        assert names == [
            "a", "a__dim1", "b", "b__dim1", "result", "result__dim1",
        ]
        assert "a[((y * a__dim1) + i)]" in plan.kernel_source

    def test_stage_function_lowered_into_kernel_source(self):
        source = """
type data_t is struct (real [] values)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type hostI is interface (
  out settings_t requests;
  out data_t dout;
  in data_t din
)
type kI is interface(in settings_t requests)
stage home {
  function cube(real x) : real {
    return x * x * x;
  }
  opencl actor K presents kI {
    constructor() {}
    behaviour {
      receive req from requests;
      receive d from req.input;
      i = get_global_id(0);
      d.values[i] := cube(d.values[i]);
      send d on req.output;
    }
  }
  actor Host presents hostI {
    constructor() {}
    behaviour {
      ws = new integer[1] of 4;
      gs = new integer[1] of 0;
      i = new in data_t;
      o = new out data_t;
      connect dout to i;
      connect o to din;
      config = new settings_t(ws, gs, i, o);
      d = new data_t(new real[4] of 3.0);
      send config on requests;
      send d on dout;
      receive d from din;
      printReal(d.values[2]);
      stop;
    }
  }
  boot {
    h = new Host();
    k = new K();
    connect h.requests to k.requests;
  }
}
"""
        compiled = ensemble.compile_source(source)
        plan = compiled.actors["K"].kernel_plan
        # The compiler generated a C equivalent of the stage function
        # inside the kernel source string (paper Section 6.1.3).
        assert "float cube(float x)" in plan.kernel_source
        vm = EnsembleVM(compiled)
        vm.run(60)
        assert vm.output == ["27.0"]
