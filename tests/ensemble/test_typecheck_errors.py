"""Static rejection: type errors, structural rules for opencl actors,
and the movability analysis."""

import pytest

from repro import ensemble
from repro.errors import MovabilityError, ParseError, TypeCheckError


def compile_(source: str):
    return ensemble.compile_source(source)


MINIMAL = """
type mainI is interface(out integer unused)
stage home {{
  actor Main presents mainI {{
    constructor() {{}}
    behaviour {{
      {body}
      stop;
    }}
  }}
  boot {{ m = new Main(); }}
}}
"""


def body_program(body: str) -> str:
    return MINIMAL.format(body=body)


class TestTypeErrors:
    @pytest.mark.parametrize(
        "body, message",
        [
            ("x := 1;", "unknown name"),
            ("x = 1; x = 2;", "already bound"),
            ("x = 1; x := 2.5;", "cannot assign"),
            ("x = 1 + true;", "numeric"),
            ("if 1 then { }", "boolean"),
            ("while 3.5 do { }", "boolean"),
            ("for i = 0 .. 1.5 do { }", "integers"),
            ("x = 1 % 2.0;", "integer"),
            ("a = new integer[2] of 0; a[1.5] := 1;", "integer"),
            ("a = new integer[2] of 0; x = a[0].field;", "field"),
            ("printInt(1.5);", "printInt"),
            ("printInt();", "arguments"),
            ("mystery(1);", "unknown function"),
            ("x = get_global_id(0);", "kernel"),
            ("x = 1 and true;", "boolean"),
        ],
    )
    def test_rejected(self, body, message):
        with pytest.raises(TypeCheckError, match=message):
            compile_(body_program(body))

    def test_binding_void_rejected(self):
        with pytest.raises(TypeCheckError, match="void"):
            compile_(body_program('x = printString("hi");'))

    def test_unknown_type_rejected(self):
        source = """
type mainI is interface(out mystery_t unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour { stop; }
  }
  boot { m = new Main(); }
}
"""
        with pytest.raises(TypeCheckError, match="unknown type"):
            compile_(source)

    def test_send_on_in_channel_rejected(self):
        source = """
type mainI is interface(in integer input)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour { send 1 on input; stop; }
  }
  boot { m = new Main(); }
}
"""
        with pytest.raises(TypeCheckError, match="out channel"):
            compile_(source)

    def test_connect_element_mismatch_rejected(self):
        source = """
type aI is interface(out integer tx)
type bI is interface(in real rx)
stage home {
  actor A presents aI {
    constructor() {}
    behaviour { stop; }
  }
  actor B presents bI {
    constructor() {}
    behaviour { stop; }
  }
  boot {
    a = new A();
    b = new B();
    connect a.tx to b.rx;
  }
}
"""
        with pytest.raises(TypeCheckError, match="connect"):
            compile_(source)

    def test_parse_error_on_assignment_to_expression(self):
        with pytest.raises(ParseError, match="':='"):
            compile_(body_program("1 + 1 = 2;"))


OPENCL_TEMPLATE = """
type data_t is struct (real [] values)
type settings_t is opencl struct (
    integer [] worksize;
    integer [] groupsize;
    in data_t input;
    out data_t output
)
type kI is interface({iface})
stage home {{
  opencl actor K presents kI {{
    constructor() {{}}
    behaviour {{
{behaviour}
    }}
  }}
  boot {{ k = new K(); }}
}}
"""


class TestOpenclStructure:
    def test_valid_kernel_actor_compiles(self):
        source = OPENCL_TEMPLATE.format(
            iface="in settings_t requests",
            behaviour="""
      receive req from requests;
      receive d from req.input;
      i = get_global_id(0);
      d.values[i] := d.values[i] * 2.0;
      send d on req.output;
""",
        )
        compiled = compile_(source)
        plan = compiled.actors["K"].kernel_plan
        assert plan is not None
        assert "k_kernel" in plan.kernel_source

    def test_interface_must_have_single_channel(self):
        source = OPENCL_TEMPLATE.format(
            iface="in settings_t requests; out data_t extra",
            behaviour="""
      receive req from requests;
      receive d from req.input;
      send d on req.output;
""",
        )
        with pytest.raises(TypeCheckError, match="single channel"):
            compile_(source)

    def test_first_statement_must_receive_request(self):
        source = OPENCL_TEMPLATE.format(
            iface="in settings_t requests",
            behaviour="""
      x = 1;
      receive req from requests;
      receive d from req.input;
      send d on req.output;
""",
        )
        with pytest.raises(TypeCheckError, match="first statement"):
            compile_(source)

    def test_last_statement_must_send_output(self):
        source = OPENCL_TEMPLATE.format(
            iface="in settings_t requests",
            behaviour="""
      receive req from requests;
      receive d from req.input;
      x = get_global_id(0);
""",
        )
        with pytest.raises(TypeCheckError, match="last statement"):
            compile_(source)

    def test_print_in_kernel_region_rejected(self):
        source = OPENCL_TEMPLATE.format(
            iface="in settings_t requests",
            behaviour="""
      receive req from requests;
      receive d from req.input;
      printString("no");
      send d on req.output;
""",
        )
        with pytest.raises(TypeCheckError, match="print"):
            compile_(source)

    def test_nested_receive_in_kernel_region_rejected(self):
        source = OPENCL_TEMPLATE.format(
            iface="in settings_t requests",
            behaviour="""
      receive req from requests;
      receive d from req.input;
      receive e from req.input;
      send d on req.output;
""",
        )
        with pytest.raises(TypeCheckError):
            compile_(source)

    def test_opencl_struct_shape_enforced(self):
        source = """
type bad_t is opencl struct (
    integer [] worksize;
    in integer input;
    out integer output
)
type kI is interface(in bad_t requests)
stage home {
  opencl actor K presents kI {
    constructor() {}
    behaviour {
      receive req from requests;
      receive d from req.input;
      send d on req.output;
    }
  }
  boot { k = new K(); }
}
"""
        with pytest.raises(TypeCheckError, match="two integer"):
            compile_(source)

    def test_workitem_builtins_allowed_only_in_kernel(self):
        with pytest.raises(TypeCheckError, match="kernel"):
            compile_(body_program("x = get_local_id(0);"))


MOV_TEMPLATE = """
type txI is interface(out mov real[] data)
type rxI is interface(in mov real[] data)
stage home {{
  actor Tx presents txI {{
    constructor() {{}}
    behaviour {{
{behaviour}
      stop;
    }}
  }}
  actor Rx presents rxI {{
    constructor() {{}}
    behaviour {{
      receive v from data;
      stop;
    }}
  }}
  boot {{
    t = new Tx();
    r = new Rx();
    connect t.data to r.data;
  }}
}}
"""


class TestMovabilityAnalysis:
    def test_use_after_send_rejected(self):
        source = MOV_TEMPLATE.format(
            behaviour="""
      v = new real[4] of 0.0;
      send v on data;
      printReal(v[0]);
"""
        )
        with pytest.raises(MovabilityError, match="used after"):
            compile_(source)

    def test_write_through_after_send_rejected(self):
        source = MOV_TEMPLATE.format(
            behaviour="""
      v = new real[4] of 0.0;
      send v on data;
      v[0] := 1.0;
"""
        )
        with pytest.raises(MovabilityError):
            compile_(source)

    def test_reassignment_after_send_accepted(self):
        source = MOV_TEMPLATE.format(
            behaviour="""
      v = new real[4] of 0.0;
      send v on data;
      v := new real[4] of 1.0;
      printReal(v[0]);
"""
        )
        compile_(source)

    def test_loop_carried_move_rejected(self):
        # Moved at the bottom of the behaviour loop, read at the top of
        # the next iteration: the back-edge analysis must catch it.
        source = """
type txI is interface(out mov real[] data)
type rxI is interface(in mov real[] data)
stage home {
  actor Tx presents txI {
    constructor() {}
    behaviour {
      v = new real[2] of 0.0;
      while v[0] < 10.0 do {
        v[0] := v[0] + 1.0;
        send v on data;
      }
      stop;
    }
  }
  actor Rx presents rxI {
    constructor() {}
    behaviour {
      receive v from data;
    }
  }
  boot {
    t = new Tx();
    r = new Rx();
    connect t.data to r.data;
  }
}
"""
        with pytest.raises(MovabilityError):
            compile_(source)

    def test_branch_join_is_conservative(self):
        source = MOV_TEMPLATE.format(
            behaviour="""
      v = new real[4] of 0.0;
      flag = true;
      if flag then {
        send v on data;
      }
      printReal(v[0]);
"""
        )
        with pytest.raises(MovabilityError):
            compile_(source)

    def test_receive_unmoves(self):
        source = """
type loopI is interface(out mov real[] tx; in mov real[] rx)
type echoI is interface(in mov real[] rx; out mov real[] tx)
stage home {
  actor Loop presents loopI {
    constructor() {}
    behaviour {
      v = new real[2] of 1.0;
      send v on tx;
      receive v from rx;
      printReal(v[0]);
      stop;
    }
  }
  actor Echo presents echoI {
    constructor() {}
    behaviour {
      receive v from rx;
      send v on tx;
    }
  }
  boot {
    l = new Loop();
    e = new Echo();
    connect l.tx to e.rx;
    connect e.tx to l.rx;
  }
}
"""
        compile_(source)

    def test_plain_channels_do_not_move(self):
        source = """
type txI is interface(out real[] data)
type rxI is interface(in real[] data)
stage home {
  actor Tx presents txI {
    constructor() {}
    behaviour {
      v = new real[4] of 0.0;
      send v on data;
      printReal(v[0]);
      stop;
    }
  }
  actor Rx presents rxI {
    constructor() {}
    behaviour {
      receive v from data;
      stop;
    }
  }
  boot {
    t = new Tx();
    r = new Rx();
    connect t.data to r.data;
  }
}
"""
        compile_(source)
