"""The end-to-end chaos sweep: figure regeneration under fault plans.

Drives :func:`repro.harness.chaos.chaos_sweep` over the default matrix
at smoke sizes — every Figure 3 chart and the Figure-4 pipeline
regenerated under transient/permanent/device-lost plans at each
injection site, fusion off and on.  The sweep itself enforces the three
chaos invariants per cell (bit-identical buffers, exact Fraction
recovery-cost delta, bit-for-bit replay); the tests here pin the matrix
shape, that every cell actually injects, and the cross-device failover
path that sits outside the exact-delta matrix.
"""

import pytest

from repro import opencl as cl
from repro.apps.lud import runners as lud
from repro.harness.chaos import (
    FIGURE_TARGETS,
    TARGETS,
    chaos_sweep,
    default_matrix,
    run_target,
)
from repro.harness.figures import scaled_devices
from repro.opencl import dispatch, faults
from repro.opencl.faults import (
    DEVICE_LOST,
    PERMANENT,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from repro.runtime import reset_device_matrix
from repro.trace import tracing

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    cl.reset_platforms()
    reset_device_matrix()
    yield
    dispatch.configure(fusion=False, faults=None)
    faults.clear()
    cl.reset_platforms()
    reset_device_matrix()


class TestMatrixShape:
    def test_matrix_is_broad_enough(self):
        matrix = default_matrix()
        names = [cell.name for cell in matrix]
        # The acceptance floor: at least 12 distinct plans.
        assert len(set(names)) == len(names) >= 12
        # Every injection site of the substrate *and* the VM/Ensemble
        # path appears, under both fusion settings.
        ops = {spec.op for cell in matrix for spec in cell.specs}
        assert ops == {
            "h2d", "d2h", "kernel", "api", "build",
            "native", "vm", "handoff", "vec",
        }
        assert {cell.fusion for cell in matrix} == {False, True}
        kinds = {spec.kind for cell in matrix for spec in cell.specs}
        assert kinds == {TRANSIENT, PERMANENT, DEVICE_LOST}
        # Coverage spans all five Figure 3 charts plus Figure 4.
        targets = {cell.target for cell in matrix}
        assert set(FIGURE_TARGETS) <= targets
        assert "fig4" in targets

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos target"):
            run_target("fig5")

    def test_targets_cover_figure_series(self):
        assert TARGETS == ("3a", "3b", "3c", "3d", "3e", "fig4")


class TestSweep:
    def test_default_matrix_smoke_sweep_holds_all_invariants(self):
        """The acceptance sweep: >= 12 plans, all inject, all three
        invariants enforced (the sweep raises on any violation)."""
        report = chaos_sweep(sizes="smoke")
        assert len(report.cells) == len(default_matrix()) >= 24
        zero = [cell.plan.name for cell in report.cells if not cell.injected]
        assert zero == [], f"cells that never injected: {zero}"
        assert report.injected > 0
        # Recovery is priced: transient cells charge backoff + attempts.
        assert any(cell.recovery_ns > 0 for cell in report.cells)
        # And the delta equals the recovery charge in every cell.
        for cell in report.cells:
            assert cell.delta_ns == cell.recovery_ns

    def test_single_cell_without_replay(self):
        cell = default_matrix()[0]
        report = chaos_sweep(matrix=[cell], sizes="smoke", replay=False)
        assert len(report.cells) == 1
        assert report.cells[0].injected >= 1


class TestDeviceLostFailover:
    """Cross-device failover re-prices on the survivor, so it sits
    outside the exact-delta matrix: assert invariants (a) and (c)."""

    N = 8

    def _run(self, plan=None):
        cl.reset_platforms()
        reset_device_matrix()
        if plan is not None:
            plan.reset()
        dispatch.configure(faults=plan)
        try:
            with scaled_devices(0.08, 2048 / self.N):
                with tracing() as tracer:
                    outcome = lud.run_actors(self.N, "GPU", movable=True)
        finally:
            dispatch.configure(faults=None)
        return outcome, tracer.counters()

    def test_mid_pipeline_device_loss_keeps_buffers_identical(self):
        clean, _ = self._run()
        # Pin the key to the GPU: per-device occurrence streams both
        # start at 0, so a bare `lud_scale@*` would kill the failover
        # device's retry as well and strand the pipeline.
        plan = FaultPlan(
            [FaultSpec("kernel", kind=DEVICE_LOST, key="lud_scale@GPU*")]
        )
        faulted, counters = self._run(plan)
        assert plan.injected == 1
        assert counters["fault.failover"] >= 1
        # (a) bit-identical buffers despite the mid-pipeline loss.
        assert faulted.result == clean.result
        assert faulted.meta["m"] == clean.meta["m"]
        # (c) the faulted run replays bit-for-bit under the same plan.
        again, _ = self._run(plan)
        assert again.result == faulted.result
        assert again.meta["m"] == faulted.meta["m"]
        assert again.breakdown == faulted.breakdown
