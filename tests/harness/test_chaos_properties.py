"""Property tests: random fault plans against the recovery-cost oracle.

Hypothesis sweeps random :class:`FaultPlan`\\s over a flat-API LUD
workload and holds every run to the chaos oracle: either the run
completes — in which case the result is bit-identical to the fault-free
run and the priced delta equals *exactly* the summed ``fault.*``
charges (Fraction arithmetic) — or it raises an error carrying the
injected fault.  Either way, resetting the plan and rerunning
reproduces the outcome bit-for-bit.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import opencl as cl  # noqa: E402
from repro.apps.lud import runners as lud  # noqa: E402
from repro.errors import CLError  # noqa: E402
from repro.harness.chaos import priced_totals  # noqa: E402
from repro.opencl import dispatch, faults  # noqa: E402
from repro.opencl.context import current_clock  # noqa: E402
from repro.opencl.faults import (  # noqa: E402
    DEVICE_LOST,
    PERMANENT,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from repro.trace import Tracer, tracing  # noqa: E402

pytestmark = pytest.mark.chaos

N = 8

SUBSTRATE_OPS = ("h2d", "d2h", "kernel", "api", "build")

spec_st = st.builds(
    FaultSpec,
    op=st.sampled_from(SUBSTRATE_OPS),
    kind=st.sampled_from((TRANSIENT, PERMANENT, DEVICE_LOST)),
    index=st.integers(0, 3),
    times=st.integers(1, 3),
)

# times <= 2 stays under the default RetryPolicy's 3 attempts and one
# spec per op keeps faulted windows from tiling 3+ consecutive
# occurrences of one stream, so these plans always recover in place.
recoverable_spec_st = st.builds(
    FaultSpec,
    op=st.sampled_from(SUBSTRATE_OPS),
    kind=st.just(TRANSIENT),
    index=st.integers(0, 3),
    times=st.integers(1, 2),
)


def run_once(plan=None):
    """One fresh flat-API LUD run; exact priced totals via the tracer."""
    faults.clear()
    cl.reset_platforms()
    if plan is not None:
        plan.reset()
        dispatch.configure(faults=plan)
    tracer = Tracer()
    current_clock().timeline.reset()
    try:
        with tracing(tracer):
            out = lud.run_api(N, "GPU")
    finally:
        dispatch.configure(faults=None)
    priced, fault_part = priced_totals((tracer,))
    return tuple(out.meta["m"]), out.result, priced, fault_part


def capture(plan):
    """Fingerprint a faulted run, injected-error crash included."""
    try:
        return ("ok",) + run_once(plan) + (plan.injected,)
    except CLError as exc:
        fault = getattr(exc, "fault", None)
        assert fault is not None, f"non-injected error escaped: {exc!r}"
        return ("raise", type(exc).__name__, str(exc), plan.injected)


@pytest.fixture(scope="module")
def clean():
    m, result, priced, fault_part = run_once()
    assert fault_part == 0
    return m, result, priced


@settings(max_examples=15, deadline=None)
@given(
    specs=st.lists(
        recoverable_spec_st,
        min_size=1,
        max_size=3,
        unique_by=lambda s: s.op,
    )
)
def test_recoverable_plans_complete_with_exact_delta(specs, clean):
    clean_m, clean_result, clean_priced = clean
    plan = FaultPlan(specs)
    m, result, priced, fault_part = run_once(plan)
    # (a) recovery is invisible in the data.
    assert m == clean_m
    assert result == clean_result
    # (b) the priced delta is exactly the recovery charge.
    assert priced - clean_priced == fault_part
    if plan.injected:
        assert fault_part > 0


@settings(max_examples=15, deadline=None)
@given(specs=st.lists(spec_st, min_size=1, max_size=3))
def test_any_plan_recovers_exactly_or_surfaces_the_fault(specs, clean):
    clean_m, clean_result, clean_priced = clean
    plan = FaultPlan(specs)
    first = capture(plan)
    if first[0] == "ok":
        _, m, result, priced, fault_part, _ = first
        assert m == clean_m
        assert result == clean_result
        assert priced - clean_priced == fault_part
    # (c) replay is bit-for-bit either way: same outcome, same priced
    # totals, same injected count — crash messages included.
    assert capture(plan) == first


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    rate=st.floats(0.0, 0.15, allow_nan=False),
)
def test_seeded_plans_replay_bit_for_bit(seed, rate, clean):
    plan = FaultPlan(seed=seed, rate=rate, kinds=(TRANSIENT, PERMANENT))
    assert capture(plan) == capture(plan)
