"""Golden regression test: every simulated nanosecond in the paper
figures is frozen.

``golden_figures.json`` captures the per-bar totals and segment
nanoseconds of Figures 3a-3e plus both ablation studies (A-mov
movability, A-vm interpreter cost).  The fixture was captured *before*
the host-path performance overhaul (kernel cache, batched/vectorised
NDRange execution) landed and is compared exactly — no tolerance — so
any execution-tier or caching change that perturbs priced results fails
here immediately.

The one intended cost-model change of the overhaul — re-acquiring an
already-built (source, device) program in the same run charges a cheap
``load_program_binary`` API call instead of a full recompile — is not
visible in any figure: the Ensemble compiler emits distinct kernel
source per OpenCL actor, and the figure workloads build each distinct
source once per run.  ``test_program_sharing.py`` covers the paths
where the new rule does apply.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.apps import lud, matmul
from repro.harness import scaled_devices
from repro.harness.figures import build_figure_by_id
from repro.runtime import device_matrix
from repro.runtime import vm as vm_module

GOLDEN_PATH = Path(__file__).parent / "golden_figures.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.mark.parametrize("figure_id", ["3a", "3b", "3c", "3d", "3e"])
def test_figure_bars_unchanged(golden: dict, figure_id: str) -> None:
    result = build_figure_by_id(figure_id)
    want = golden["figures"][figure_id]
    assert result.baseline_ns == want["baseline_ns"]
    got_labels = [bar.label for bar in result.bars]
    # The fixture was dumped with sort_keys=True, so compare as sets.
    assert len(got_labels) == len(want["bars"])
    assert set(got_labels) == set(want["bars"])
    for bar in result.bars:
        expected = want["bars"][bar.label]
        if bar.failed:
            assert expected == {"note": bar.note}
            continue
        assert bar.raw_total_ns == expected["raw_total_ns"], bar.label
        segments_ns = {
            seg: frac * result.baseline_ns
            for seg, frac in bar.segments.items()
        }
        assert segments_ns == expected["segments_ns"], bar.label


def test_movability_ablation_unchanged(golden: dict) -> None:
    n = 32
    want = golden["ablations"]["movability"]
    for movable, key in ((True, "mov"), (False, "nomov")):
        with scaled_devices(0.08, 1.0, 2048 / n):
            outcome = lud.run_ensemble(n, "GPU", movable=movable)
            ledger = device_matrix().combined_ledger()
        assert outcome.total_ns == want[key]["total_ns"]
        assert outcome.breakdown == want[key]["breakdown"]
        assert ledger.bytes_to_device == want[key]["bytes_to_device"]
        assert ledger.bytes_from_device == want[key]["bytes_from_device"]


def test_overlap_e2e_ablation_unchanged(golden: dict) -> None:
    """The end-to-end variant of the out-of-order ablation is frozen:
    queue makespans, composed elapsed time and its exact wall-time
    attribution, per mode.  The run uses actor threads, so this also
    pins down that composed-timeline placement is schedule-determined,
    not thread-timing-determined."""
    from repro.opencl.context import current_clock
    from repro.runtime.oclenv import set_out_of_order_queues

    want = golden["ablations"]["overlap_e2e"]
    n = want["n"]
    try:
        for key, out_of_order in (("in_order", False),
                                  ("out_of_order", True)):
            with scaled_devices(0.08, 1.0, 2048 / n):
                set_out_of_order_queues(out_of_order)
                lud.run_actors(n, "GPU", movable=False)
                (env,) = device_matrix().environments()
                timeline = current_clock().timeline
                expected = want[key]
                assert env.queue.makespan_ns == expected["makespan_ns"]
                assert env.queue.overlap_ns == expected["overlap_ns"]
                assert timeline.elapsed_ns == expected["elapsed_ns"]
                assert timeline.attribution() == expected["attribution"]
    finally:
        set_out_of_order_queues(False)


def test_vm_cost_ablation_unchanged(golden: dict) -> None:
    want = golden["ablations"]["vm_cost"]
    for bytecode_ns in (1.0, 4.0, 16.0):
        original = vm_module.BYTECODE_NS
        vm_module.BYTECODE_NS = bytecode_ns
        try:
            with scaled_devices(0.08, 16.0):
                ens = matmul.run_ensemble(32, "GPU")
                api = matmul.run_api(32, "GPU")
        finally:
            vm_module.BYTECODE_NS = original
        entry = want[str(bytecode_ns)]
        assert ens.total_ns == entry["ensemble_total_ns"]
        assert api.total_ns == entry["api_total_ns"]
        assert ens.breakdown == entry["ensemble_breakdown"]
        assert api.breakdown == entry["api_breakdown"]
        assert ens.total_ns / api.total_ns == entry["ratio"]
