"""Harness behaviour: scaled platforms, figure assembly, rendering."""

import pytest

from repro.harness import (
    SEGMENTS,
    Bar,
    FigureResult,
    FigureSpec,
    bench_platform,
    build_figure,
    render_figure,
    scaled_devices,
)
from repro.opencl import find_device, get_platforms, gpu_spec
from repro.runtime.oclenv import device_matrix


class TestBenchPlatform:
    def test_bandwidth_scaled_up_by_size_ratio(self):
        platform = bench_platform(0.1, 8.0)
        gpu = [d for d in platform.devices if d.device_type == "GPU"][0]
        base = gpu_spec(0.1)
        assert gpu.spec.h2d_bytes_per_ns == pytest.approx(
            base.h2d_bytes_per_ns * 8.0
        )

    def test_fixed_costs_scaled_down(self):
        platform = bench_platform(0.1, 8.0, fixed_ratio=100.0)
        gpu = [d for d in platform.devices if d.device_type == "GPU"][0]
        base = gpu_spec(0.1)
        assert gpu.spec.compile_ns == pytest.approx(base.compile_ns / 100.0)
        assert gpu.spec.kernel_launch_ns == pytest.approx(
            base.kernel_launch_ns / 100.0
        )

    def test_scaled_devices_installs_and_restores(self):
        before = get_platforms()[0].name
        with scaled_devices(0.1, 4.0):
            assert get_platforms()[0].name == "Repro bench platform"
            assert device_matrix().environments() == []
        assert get_platforms()[0].name == before


class TestFigureAssembly:
    @pytest.fixture(scope="class")
    def figure(self):
        from repro.apps import matmul

        spec = FigureSpec(
            "3a-test",
            "tiny matmul",
            ensemble=matmul.run_ensemble,
            c_opencl=matmul.run_api,
            openacc=matmul.run_openacc,
            params={"n": 8},
            compute_scale=0.1,
            size_ratio=4.0,
        )
        return build_figure(spec)

    def test_six_bars(self, figure):
        labels = [bar.label for bar in figure.bars]
        assert labels == [
            "Ensemble GPU",
            "C-OpenCL GPU",
            "C-OpenACC GPU",
            "Ensemble CPU",
            "C-OpenCL CPU",
            "C-OpenACC CPU",
        ]

    def test_baseline_normalisation(self, figure):
        assert figure.bar("Ensemble GPU").total == pytest.approx(1.0)
        for bar in figure.bars:
            if not bar.failed:
                assert bar.total == pytest.approx(
                    sum(bar.segments.values())
                )

    def test_segments_are_the_papers_four(self, figure):
        for bar in figure.bars:
            if not bar.failed:
                assert set(bar.segments) == set(SEGMENTS)

    def test_render_mentions_every_bar(self, figure):
        text = render_figure(figure)
        for bar in figure.bars:
            assert bar.label in text

    def test_missing_variant_rendered_as_failure(self):
        result = FigureResult(
            "x",
            "t",
            [
                Bar("Ensemble GPU", {s: 0.25 for s in SEGMENTS}, 1.0, 100.0),
                Bar("C-OpenACC GPU", {}, 0.0, 0.0, "compiler rejected"),
            ],
            100.0,
        )
        text = render_figure(result)
        assert "no result" in text

    def test_variant_disagreement_is_detected(self):
        from repro.apps.common import RunOutcome

        def good(device_type="GPU", **kw):
            return RunOutcome(1.0, {s: 1.0 for s in SEGMENTS})

        def bad(device_type="GPU", **kw):
            return RunOutcome(2.0, {s: 1.0 for s in SEGMENTS})

        spec = FigureSpec(
            "bad", "t", ensemble=good, c_opencl=bad, openacc=None
        )
        with pytest.raises(AssertionError, match="disagree"):
            build_figure(spec)
