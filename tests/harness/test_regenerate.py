"""The one-shot evaluation regenerator: determinism and completeness."""

import pytest

from repro.harness import regenerate


class TestRegenerate:
    def test_figure4_text(self):
        text = regenerate.regenerate_figure4(n=16)
        assert "pipeline" in text
        assert "48 launches" in text  # 3 kernels x 16 steps

    def test_movability_text(self):
        text = regenerate.regenerate_movability_ablation(n=16)
        assert "without" in text
        assert "x slower" in text

    def test_overlap_ablation_text(self):
        text = regenerate.regenerate_overlap_ablation(n=12)
        assert "out-of-order" in text
        assert "identical" in text

    def test_overlap_ablation_is_deterministic(self):
        assert regenerate.regenerate_overlap_ablation(n=12) == (
            regenerate.regenerate_overlap_ablation(n=12)
        )

    def test_figure4_is_deterministic(self):
        assert regenerate.regenerate_figure4(n=12) == (
            regenerate.regenerate_figure4(n=12)
        )

    def test_table1_is_deterministic(self):
        assert regenerate.regenerate_table1() == regenerate.regenerate_table1()


class TestCheckedInReport:
    def test_report_file_matches_table1(self):
        """evaluation_report.txt is regenerable: its Table 1 section is
        exactly what the metrics produce today."""
        import pathlib

        report = (
            pathlib.Path(__file__).resolve().parents[2]
            / "evaluation_report.txt"
        ).read_text()
        table = regenerate.regenerate_table1()
        assert table in report

    def test_report_contains_every_artefact(self):
        import pathlib

        report = (
            pathlib.Path(__file__).resolve().parents[2]
            / "evaluation_report.txt"
        ).read_text()
        for marker in (
            "Table 1",
            "Figure 3a",
            "Figure 3b",
            "Figure 3c",
            "Figure 3d",
            "Figure 3e",
            "Figure 4",
            "Movability ablation",
            "Out-of-order ablation",
        ):
            assert marker in report
