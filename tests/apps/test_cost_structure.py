"""Cost-structure assertions at the application level: the paper's
qualitative claims hold at arbitrary sizes, not just the benchmark's."""

import pytest

from repro.apps import docrank, lud, matmul, reduction
from repro.apps.common import merge_ledgers, reset_runtime_ledgers
from repro.runtime import device_matrix


class TestMovabilityTransferVolumes:
    def test_lud_matrix_crosses_once_with_mov(self):
        n = 16
        reset_runtime_ledgers()
        lud.run_actors(n, "GPU", movable=True)
        ledger = device_matrix().combined_ledger()
        matrix_bytes = n * n * 4
        assert ledger.bytes_to_device <= matrix_bytes + 64
        assert ledger.bytes_from_device <= matrix_bytes + 64
        assert ledger.kernel_launches == 3 * n

    def test_lud_without_mov_moves_per_hop(self):
        n = 16
        reset_runtime_ledgers()
        lud.run_actors(n, "GPU", movable=False)
        ledger = device_matrix().combined_ledger()
        matrix_bytes = n * n * 4
        # every kernel uploads the matrix; the two kernels that write it
        # read it back (the pivot kernel only writes the pivot cell)
        assert ledger.bytes_to_device >= 3 * n * matrix_bytes
        assert ledger.bytes_from_device >= 2 * n * matrix_bytes

    def test_docrank_corpus_uploaded_once_with_mov(self):
        ndocs, v, repeats = 32, 16, 6
        reset_runtime_ledgers()
        docrank.run_actors(ndocs, v, repeats, "GPU", movable=True)
        ledger = device_matrix().combined_ledger()
        corpus_bytes = ndocs * v * 4 + v * 4
        assert ledger.bytes_to_device <= corpus_bytes + 64
        assert ledger.kernel_launches == repeats

    def test_docrank_copy_variant_reuploads_per_repeat(self):
        ndocs, v, repeats = 32, 16, 6
        reset_runtime_ledgers()
        docrank.run_actors(ndocs, v, repeats, "GPU", movable=False)
        ledger = device_matrix().combined_ledger()
        corpus_bytes = ndocs * v * 4 + v * 4
        assert ledger.bytes_to_device >= repeats * corpus_bytes


class TestApiCostShape:
    def test_matmul_api_transfer_volume_is_exact(self):
        n = 16
        outcome = matmul.run_api(n, "GPU")
        # a and b go up; c comes back; c is write-only (no upload).
        # (Volumes are embedded in the segments via the ledger merge.)
        assert outcome.segment("to_device") > 0
        assert outcome.segment("from_device") > 0

    def test_reduction_is_transfer_heavy_at_scale(self):
        outcome = reduction.run_api(4096, "GPU")
        # at default (unscaled) device specs a reduction moves far more
        # data than it computes
        assert outcome.segment("to_device") > outcome.segment("kernel") / 4

    def test_gpu_kernel_faster_than_cpu_kernel(self):
        from repro.opencl import find_device

        n = 24
        gpu_launch = find_device("GPU").spec.kernel_launch_ns
        cpu_launch = find_device("CPU").spec.kernel_launch_ns
        gpu = matmul.run_api(n, "GPU").segment("kernel") - gpu_launch
        cpu = matmul.run_api(n, "CPU").segment("kernel") - cpu_launch
        assert gpu < cpu


class TestEnsembleOverhead:
    def test_vm_overhead_exceeds_api_overhead(self):
        # Measured the way the figures are: on a bench platform whose
        # fixed costs (one-off compile, API calls) are scaled into the
        # paper-size regime, the VM interpretation dominates overhead.
        from repro.harness import scaled_devices

        n = 12
        with scaled_devices(0.08, 16.0):
            ens = matmul.run_ensemble(n, "GPU")
            api = matmul.run_api(n, "GPU")
        assert ens.segment("overhead") > api.segment("overhead")
        # but OpenCL actions match exactly
        assert ens.segment("to_device") == pytest.approx(
            api.segment("to_device")
        )
        assert ens.segment("from_device") == pytest.approx(
            api.segment("from_device")
        )

    def test_docrank_kernel_segment_larger_in_ensemble(self):
        args = (24, 12, 2)
        ens = docrank.run_ensemble(*args, "GPU")
        api = docrank.run_api(*args, "GPU")
        assert ens.segment("kernel") > api.segment("kernel")
        ens_comm = ens.segment("to_device") + ens.segment("from_device")
        api_comm = api.segment("to_device") + api.segment("from_device")
        assert ens_comm < api_comm
