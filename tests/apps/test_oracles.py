"""Application kernels checked against independent numpy oracles and
property-based inputs (the variants agreeing with each other is not
enough — they must also be *right*)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernelc
from repro.apps import docrank, lud, mandelbrot, matmul, reduction


class TestMatmulOracle:
    @pytest.mark.parametrize("n", [1, 2, 8, 16])
    def test_against_numpy(self, n):
        outcome = matmul.run_python(n)
        a, b = matmul.generate(n)
        expected = (
            np.array(a).reshape(n, n) @ np.array(b).reshape(n, n)
        ).flatten()
        assert np.allclose(outcome.meta["c"], expected)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 10))
    def test_property_sizes(self, n):
        outcome = matmul.run_api(n, "GPU")
        a, b = matmul.generate(n)
        expected = (
            np.array(a).reshape(n, n) @ np.array(b).reshape(n, n)
        ).flatten()
        assert np.allclose(outcome.meta["c"], expected)


class TestMandelbrotOracle:
    def test_known_points(self):
        w = h = 33
        counts = mandelbrot.run_python(w, h, 64).meta["counts"]
        # centre of the viewport is (-0.5, 0): inside the set.
        cx, cy = w // 2, h // 2
        assert counts[cy * w + cx] == 64
        # top-left corner (-2, -1.5) escapes almost immediately.
        assert counts[0] <= 2

    def test_iteration_cap_respected(self):
        counts = mandelbrot.run_python(16, 16, 7).meta["counts"]
        assert max(counts) <= 7
        assert min(counts) >= 0


class TestLudOracle:
    @pytest.mark.parametrize("n", [2, 5, 12])
    def test_lu_reconstructs_input(self, n):
        a = np.array(lud.generate(n)).reshape(n, n)
        m = np.array(lud.run_python(n).meta["m"]).reshape(n, n)
        lower = np.tril(m, -1) + np.eye(n)
        upper = np.triu(m)
        assert np.allclose(lower @ upper, a, atol=1e-9)

    def test_matches_scipy_style_doolittle(self):
        n = 8
        a = np.array(lud.generate(n)).reshape(n, n)
        m = np.array(lud.run_python(n).meta["m"]).reshape(n, n)
        # Doolittle without pivoting reproduces numpy's solve behaviour.
        rhs = np.arange(n, dtype=float)
        y = np.linalg.solve(np.tril(m, -1) + np.eye(n), rhs)
        x = np.linalg.solve(np.triu(m), y)
        assert np.allclose(a @ x, rhs)


class TestReductionOracle:
    @settings(max_examples=20, deadline=None)
    @given(n=st.sampled_from([64, 128, 192, 256, 320]))
    def test_min_matches_python(self, n):
        v = reduction.generate(n)
        assert reduction.run_api(n, "GPU").result == min(v)

    def test_kernel_handles_duplicated_minimum(self):
        src = reduction.KERNEL_SOURCE
        compiled = kernelc.build(src)
        data = [5.0] * 128
        data[3] = data[90] = -1.0
        partial = [0.0] * 2
        compiled.kernel_runner("reduce_min").run_range(
            [data, partial, 128], [128], [64]
        )
        assert min(partial) == -1.0


class TestDocrankOracle:
    def test_scores_match_numpy(self):
        ndocs, v = 32, 16
        tf, w = docrank.generate(ndocs, v)
        scores = np.array(tf, dtype=float).reshape(ndocs, v) @ np.array(w)
        expected = (scores > 0.0).astype(int)
        wanted = docrank.run_python(ndocs, v, 1).meta["wanted"]
        assert wanted == expected.tolist()

    def test_repeats_are_idempotent(self):
        one = docrank.run_python(24, 12, 1).result
        many = docrank.run_python(24, 12, 7).result
        assert one == many

    def test_corpus_is_sparse_and_deterministic(self):
        tf1, w1 = docrank.generate(50, 20)
        tf2, w2 = docrank.generate(50, 20)
        assert tf1 == tf2 and w1 == w2
        density = sum(1 for x in tf1 if x) / len(tf1)
        assert 0.02 < density < 0.3
