"""Functional equivalence across every variant of every application.

The paper: "Unless stated otherwise, the same results were observed for
all applications and implementations — i.e. all implementations were
functionally equivalent."  Here that statement is a test, and because
every variant generates its inputs from the same closed forms and
executes the same floating-point operation order, equality is *exact*,
not approximate.
"""

import pytest

from repro.apps import docrank, lud, mandelbrot, matmul, reduction
from repro.errors import AccUnsupportedError


class TestMatmul:
    N = 16

    @pytest.fixture(scope="class")
    def reference(self):
        return matmul.run_python(self.N).result

    def test_single_c(self, reference):
        assert matmul.run_single_c(self.N).result == reference

    @pytest.mark.parametrize("device", ["GPU", "CPU"])
    def test_api(self, reference, device):
        assert matmul.run_api(self.N, device).result == reference

    @pytest.mark.parametrize("movable", [True, False])
    def test_actors(self, reference, movable):
        assert matmul.run_actors(self.N, "GPU", movable).result == reference

    @pytest.mark.parametrize("device", ["GPU", "CPU"])
    def test_ensemble(self, reference, device):
        assert matmul.run_ensemble(self.N, device).result == reference

    def test_ensemble_single(self, reference):
        assert matmul.run_ensemble_single(self.N).result == reference

    @pytest.mark.parametrize("device", ["GPU", "CPU"])
    def test_openacc(self, reference, device):
        assert matmul.run_openacc(self.N, device).result == reference


class TestMandelbrot:
    ARGS = (16, 12, 50)  # w, h, max_iter (non-square on purpose)

    @pytest.fixture(scope="class")
    def reference(self):
        return mandelbrot.run_python(*self.ARGS).result

    def test_single_c(self, reference):
        assert mandelbrot.run_single_c(*self.ARGS).result == reference

    @pytest.mark.parametrize("device", ["GPU", "CPU"])
    def test_api(self, reference, device):
        assert mandelbrot.run_api(*self.ARGS, device).result == reference

    def test_actors(self, reference):
        assert mandelbrot.run_actors(*self.ARGS).result == reference

    def test_ensemble(self, reference):
        assert mandelbrot.run_ensemble(*self.ARGS).result == reference

    def test_ensemble_single(self, reference):
        assert mandelbrot.run_ensemble_single(*self.ARGS).result == reference

    @pytest.mark.parametrize("device", ["GPU", "CPU"])
    def test_openacc(self, reference, device):
        assert mandelbrot.run_openacc(*self.ARGS, device).result == reference


class TestLud:
    N = 12

    @pytest.fixture(scope="class")
    def reference(self):
        return lud.run_python(self.N).result

    def test_single_c(self, reference):
        assert lud.run_single_c(self.N).result == reference

    def test_api(self, reference):
        assert lud.run_api(self.N, "GPU").result == reference

    @pytest.mark.parametrize("movable", [True, False])
    def test_actors(self, reference, movable):
        assert lud.run_actors(self.N, "GPU", movable).result == reference

    @pytest.mark.parametrize("movable", [True, False])
    def test_ensemble(self, reference, movable):
        assert lud.run_ensemble(self.N, "GPU", movable).result == reference

    def test_ensemble_single(self, reference):
        assert lud.run_ensemble_single(self.N).result == reference

    def test_openacc(self, reference):
        assert lud.run_openacc(self.N, "GPU").result == reference

    def test_factorisation_matches_numpy(self):
        import numpy as np

        n = self.N
        a = np.array(lud.generate(n)).reshape(n, n)
        m = np.array(lud.run_python(n).meta["m"]).reshape(n, n)
        lower = np.tril(m, -1) + np.eye(n)
        upper = np.triu(m)
        assert np.allclose(lower @ upper, a)


class TestReduction:
    N = 256

    @pytest.fixture(scope="class")
    def reference(self):
        return reduction.run_python(self.N).result

    def test_planted_minimum(self, reference):
        assert reference == 0.5

    def test_single_c(self, reference):
        assert reduction.run_single_c(self.N).result == reference

    @pytest.mark.parametrize("device", ["GPU", "CPU"])
    def test_api(self, reference, device):
        assert reduction.run_api(self.N, device).result == reference

    def test_actors(self, reference):
        assert reduction.run_actors(self.N).result == reference

    def test_ensemble(self, reference):
        assert reduction.run_ensemble(self.N).result == reference

    def test_ensemble_single(self, reference):
        assert reduction.run_ensemble_single(self.N).result == reference

    @pytest.mark.parametrize("device", ["GPU", "CPU"])
    def test_openacc(self, reference, device):
        assert reduction.run_openacc(self.N, device).result == reference


class TestDocrank:
    ARGS = (24, 12, 3)  # docs, terms, repeats

    @pytest.fixture(scope="class")
    def reference(self):
        return docrank.run_python(*self.ARGS).result

    def test_single_c(self, reference):
        assert docrank.run_single_c(*self.ARGS).result == reference

    def test_api(self, reference):
        assert docrank.run_api(*self.ARGS, "GPU").result == reference

    @pytest.mark.parametrize("movable", [True, False])
    def test_actors(self, reference, movable):
        assert (
            docrank.run_actors(*self.ARGS, "GPU", movable).result
            == reference
        )

    def test_ensemble(self, reference):
        assert docrank.run_ensemble(*self.ARGS).result == reference

    def test_ensemble_single(self, reference):
        assert docrank.run_ensemble_single(*self.ARGS).result == reference

    def test_openacc_gpu_refused(self):
        with pytest.raises(AccUnsupportedError):
            docrank.run_openacc(*self.ARGS, "GPU")

    def test_openmp_cpu(self, reference):
        assert docrank.run_openacc(*self.ARGS, "CPU").result == reference

    def test_classification_is_meaningful(self):
        outcome = docrank.run_python(64, 32, 1)
        wanted = outcome.meta["wanted"]
        assert 0 < sum(wanted) < len(wanted)  # both classes present
