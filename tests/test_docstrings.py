"""The docstring lint (tools/check_docstrings.py) as a tier-1 test."""

from __future__ import annotations

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "tools"))

import check_docstrings  # noqa: E402


def test_documented_core_has_no_missing_docstrings():
    offences = []
    for path in check_docstrings.target_files():
        offences.extend(check_docstrings.missing_docstrings(path))
    assert offences == []
