"""Trace/figure consistency: Figure 3 segments from raw spans.

For every app the four-segment breakdown the harness reports must equal
the sum of the tracer's raw cost spans — the tracer observes the same
charge sites the ledgers do, so any disagreement means a charge was
traced twice, or not at all.
"""

import json

import pytest

from repro.harness import build_figure_by_id, figure_spec, scaled_devices
from repro.trace import SEGMENT_OF, Tracer, tracing

pytestmark = pytest.mark.trace

FIGURES = ("3a", "3b", "3c", "3d", "3e")
SEGMENTS = tuple(SEGMENT_OF.values())


def run_traced(spec, runner, device_type="GPU"):
    tracer = Tracer()
    with scaled_devices(spec.compute_scale, spec.size_ratio,
                        spec.fixed_ratio):
        with tracing(tracer):
            outcome = runner(device_type=device_type, **spec.params)
    return outcome, tracer


@pytest.mark.parametrize("figure", FIGURES)
def test_ensemble_summary_matches_breakdown(figure):
    spec = figure_spec(figure)
    outcome, tracer = run_traced(spec, spec.ensemble)
    summary = tracer.summary()
    for segment in SEGMENTS:
        assert summary[segment] == pytest.approx(
            outcome.breakdown[segment], rel=1e-6, abs=1e-6
        ), f"{figure} ensemble segment {segment}"


@pytest.mark.parametrize("figure", ("3a", "3d"))
def test_c_opencl_summary_matches_breakdown(figure):
    spec = figure_spec(figure)
    outcome, tracer = run_traced(spec, spec.c_opencl)
    summary = tracer.summary()
    for segment in SEGMENTS:
        assert summary[segment] == pytest.approx(
            outcome.breakdown[segment], rel=1e-6, abs=1e-6
        ), f"{figure} c-opencl segment {segment}"


def test_cpu_variant_also_consistent():
    spec = figure_spec("3a")
    outcome, tracer = run_traced(spec, spec.ensemble, device_type="CPU")
    assert tracer.summary() == pytest.approx(outcome.breakdown, rel=1e-6)


def test_build_figure_cross_checks_and_writes_traces(tmp_path):
    """The harness runs its own cross-check per variant and, with a
    trace dir, writes one Perfetto-loadable JSON file per variant."""
    result = build_figure_by_id("3a", trace_dir=str(tmp_path))
    assert set(result.trace_summaries) == {
        "Ensemble GPU", "C-OpenCL GPU", "C-OpenACC GPU",
        "Ensemble CPU", "C-OpenCL CPU", "C-OpenACC CPU",
    }
    for label, summary in result.trace_summaries.items():
        bar = result.bar(label)
        assert sum(summary.values()) == pytest.approx(
            bar.raw_total_ns, rel=1e-6
        ), label
    assert set(result.trace_files) == set(result.trace_summaries)
    for label, path in result.trace_files.items():
        data = json.loads(open(path).read())
        events = data["traceEvents"]
        assert events, f"{label}: empty trace"
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event
        assert data["otherData"]["summary_ns"] == pytest.approx(
            result.trace_summaries[label]
        )
