"""Tracer unit behaviour: spans, counters, summary, installation."""

import threading

import pytest

from repro.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    thread_track,
    tracing,
)


class TestCostSpans:
    def test_summary_sums_cost_spans_by_category(self):
        tr = Tracer(clock_fn=lambda: 0.0)
        tr.cost_span("h2d", 10.0)
        tr.cost_span("h2d", 5.0)
        tr.cost_span("d2h", 3.0)
        tr.cost_span("kernel", 100.0)
        tr.cost_span("host", 7.0)
        assert tr.summary() == {
            "to_device": 15.0,
            "from_device": 3.0,
            "kernel": 100.0,
            "overhead": 7.0,
        }

    def test_structural_spans_do_not_contribute_to_summary(self):
        tr = Tracer(clock_fn=lambda: 0.0)
        with tr.span("behaviour", track="actor/a"):
            pass
        assert sum(tr.summary().values()) == 0.0
        assert len(tr.spans) == 1
        assert not tr.spans[0].cost

    def test_unknown_category_rejected(self):
        tr = Tracer(clock_fn=lambda: 0.0)
        with pytest.raises(ValueError):
            tr.cost_span("bogus", 1.0)

    def test_explicit_timestamp_and_args_recorded(self):
        tr = Tracer(clock_fn=lambda: 50.0)
        tr.cost_span("kernel", 10.0, name="k", track="device/d",
                     ts_ns=30.0, args={"launch": 1})
        span = tr.spans[0]
        assert span.ts_ns == 30.0
        assert span.end_ns == 40.0
        assert span.args == {"launch": 1}
        # Without an explicit ts the span ends at "now".
        tr.cost_span("kernel", 10.0)
        assert tr.spans[1].ts_ns == 40.0
        assert tr.spans[1].end_ns == 50.0


class TestStructuralSpans:
    def test_span_records_clock_interval(self):
        now = [100.0]
        tr = Tracer(clock_fn=lambda: now[0])
        with tr.span("work", track="t", category="x", detail=3):
            now[0] = 250.0
        span = tr.spans[0]
        assert (span.ts_ns, span.dur_ns) == (100.0, 150.0)
        assert span.category == "x"
        assert span.args == {"detail": 3}

    def test_span_recorded_even_when_body_raises(self):
        tr = Tracer(clock_fn=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with tr.span("work", track="t"):
                raise RuntimeError("boom")
        assert [s.name for s in tr.spans] == ["work"]


class TestCounters:
    def test_counters_accumulate_and_sample(self):
        now = [0.0]
        tr = Tracer(clock_fn=lambda: now[0])
        assert tr.count("hits") == 1.0
        now[0] = 5.0
        assert tr.count("hits", 2.0) == 3.0
        assert tr.counter("hits") == 3.0
        assert tr.counter("missing") == 0.0
        assert [s.value for s in tr.counter_samples] == [1.0, 3.0]
        assert [s.ts_ns for s in tr.counter_samples] == [0.0, 5.0]
        assert tr.counters() == {"hits": 3.0}


class TestTracks:
    def test_tracks_first_seen_order_and_spans_on(self):
        tr = Tracer(clock_fn=lambda: 0.0)
        tr.cost_span("h2d", 1.0, track="device/gpu")
        tr.cost_span("host", 1.0, track="host/api")
        tr.cost_span("d2h", 1.0, track="device/gpu")
        assert tr.tracks() == ["device/gpu", "host/api"]
        assert len(tr.spans_on("device/gpu")) == 2

    def test_thread_track_names_current_thread(self):
        out = {}

        def body():
            out["track"] = thread_track()

        t = threading.Thread(target=body, name="stage/actor-1")
        t.start()
        t.join()
        assert out["track"] == "thread/stage/actor-1"


class TestInstallation:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_tracing_installs_and_restores(self):
        before = current_tracer()
        with tracing() as tr:
            assert current_tracer() is tr
            assert tr.enabled
        assert current_tracer() is before

    def test_tracing_restores_on_error(self):
        before = current_tracer()
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert current_tracer() is before

    def test_set_tracer_returns_previous(self):
        tr = Tracer(clock_fn=lambda: 0.0)
        prev = set_tracer(tr)
        try:
            assert current_tracer() is tr
        finally:
            assert set_tracer(prev) is tr

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        null.cost_span("h2d", 1.0)
        with null.span("x", track="t"):
            pass
        assert null.count("c") == 0.0
        assert null.summary() == {
            "to_device": 0.0,
            "from_device": 0.0,
            "kernel": 0.0,
            "overhead": 0.0,
        }
        assert null.tracks() == []
        assert null.spans_on("t") == []


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        tr = Tracer(clock_fn=lambda: 0.0)

        def worker(i):
            for _ in range(200):
                tr.cost_span("host", 1.0, track=f"t/{i}")
                tr.count("n")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.spans) == 800
        assert tr.counter("n") == 800.0
        assert tr.summary()["overhead"] == pytest.approx(800.0)


class TestSpanDataclass:
    def test_end_ns(self):
        assert Span("a", "t", 10.0, 5.0).end_ns == 15.0
