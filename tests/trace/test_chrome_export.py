"""Chrome trace-event export: schema shape and file round-trip."""

import json

import pytest

from repro.trace import Tracer, chrome_trace, chrome_trace_events, tracing
from repro.trace.export import write_chrome_trace


def make_tracer():
    now = [0.0]
    tr = Tracer(clock_fn=lambda: now[0])
    tr.cost_span("h2d", 100.0, name="WRITE_BUFFER", track="device/gpu",
                 ts_ns=0.0, args={"nbytes": 64})
    tr.cost_span("kernel", 1000.0, name="NDRANGE_KERNEL",
                 track="device/gpu", ts_ns=100.0)
    now[0] = 1100.0
    with tr.span("behaviour:a-1", track="thread/home/a-1",
                 category="actor"):
        now[0] = 1150.0
    tr.count("residency.hit", track="counters")
    return tr


class TestEventSchema:
    def test_every_event_has_required_keys(self):
        events = chrome_trace_events(make_tracer())
        assert events
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event, f"{event} missing {key!r}"

    def test_span_events_are_complete_events_in_microseconds(self):
        events = chrome_trace_events(make_tracer())
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        kernel = next(e for e in xs if e["name"] == "NDRANGE_KERNEL")
        assert kernel["ts"] == pytest.approx(0.1)   # 100 ns -> 0.1 us
        assert kernel["dur"] == pytest.approx(1.0)  # 1000 ns -> 1 us
        assert kernel["cat"] == "kernel"
        assert kernel["args"]["cost"] is True

    def test_counter_events(self):
        events = chrome_trace_events(make_tracer())
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "residency.hit"
        assert counters[0]["args"]["value"] == 1.0

    def test_metadata_names_processes_and_threads(self):
        events = chrome_trace_events(make_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"device", "thread", "counters"} <= names
        assert "gpu" in names          # thread_name of device/gpu
        assert "home/a-1" in names     # thread_name of thread/home/a-1

    def test_tracks_sharing_a_group_share_a_pid(self):
        tr = Tracer(clock_fn=lambda: 0.0)
        tr.cost_span("h2d", 1.0, track="device/gpu")
        tr.cost_span("d2h", 1.0, track="device/cpu")
        tr.cost_span("host", 1.0, track="host/api")
        xs = [e for e in chrome_trace_events(tr) if e["ph"] == "X"]
        by_track = {e["name"]: e for e in xs}
        assert by_track["h2d"]["pid"] == by_track["d2h"]["pid"]
        assert by_track["h2d"]["tid"] != by_track["d2h"]["tid"]
        assert by_track["host"]["pid"] != by_track["h2d"]["pid"]


class TestFileRoundTrip:
    def test_write_and_reload(self, tmp_path):
        tr = make_tracer()
        path = tmp_path / "run.trace.json"
        write_chrome_trace(tr, path)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["otherData"]["summary_ns"] == tr.summary()
        assert data["otherData"]["counters"] == {"residency.hit": 1.0}
        for event in data["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event

    def test_full_object_form(self):
        doc = chrome_trace(make_tracer())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["generator"] == "repro.trace"


class TestLiveRunExport:
    def test_traced_kernel_run_exports_valid_json(self, tmp_path):
        """End to end: a real actor-API kernel run produces a loadable
        Chrome trace with device, vm/thread and counter rows."""
        from repro.apps import matmul

        with tracing() as tr:
            matmul.run_actors(n=8)
        path = tmp_path / "matmul.trace.json"
        write_chrome_trace(tr, path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "NDRANGE_KERNEL"
                   for e in events)
        assert any(e["ph"] == "C" for e in events)
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event
