"""Complexity metric analyzers across all three languages."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    Metrics,
    analyze_ensemble,
    analyze_kernelc,
    analyze_python,
    build_row,
    build_table1,
    text_loc,
)


class TestTextLoc:
    def test_blank_and_comment_lines_skipped(self):
        src = """
        // a comment
        int a;   // trailing comment counts the code

        /* block
           comment */
        int b;
        """
        assert text_loc(src) == 2

    def test_pragma_lines_count_as_code(self):
        src = "#pragma acc parallel loop\nfor (;;) {}\n"
        assert text_loc(src) == 2

    def test_inline_block_comment(self):
        assert text_loc("int /* hi */ a;") == 1

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["code;", "// c", "", "  "]), max_size=30))
    def test_property_loc_counts_code_lines(self, lines):
        src = "\n".join(lines)
        assert text_loc(src) == sum(1 for l in lines if l == "code;")


class TestPythonMetrics:
    def test_docstrings_excluded_from_loc(self):
        src = '''
def f():
    """A docstring
    spanning lines."""
    return 1
'''
        metrics = analyze_python(src)
        assert metrics.loc == 2  # def + return

    def test_cyclomatic_counts_decisions(self):
        src = """
def f(x):
    if x > 0 and x < 10:
        return 1
    for i in range(3):
        while i:
            i -= 1
    return 0
"""
        # 1 base + function + if + and + for + while = 6
        assert analyze_python(src).cyclomatic == 6

    def test_abc_components(self):
        src = """
x = 1
y = f(x)
if x > 0:
    x += 1
"""
        metrics = analyze_python(src)
        assert metrics.assignments == 3
        assert metrics.branches == 1
        assert metrics.conditions == 2  # compare + if

    def test_abc_magnitude(self):
        metrics = Metrics(0, 0, 3, 4, 0)
        assert metrics.abc == 5.0

    def test_metrics_add(self):
        a = Metrics(10, 2, 1, 2, 3)
        b = Metrics(5, 1, 4, 5, 6)
        total = a + b
        assert total.loc == 15
        assert total.cyclomatic == 3
        assert (total.assignments, total.branches, total.conditions) == (
            5, 7, 9,
        )

    def test_delta_percentages(self):
        base = Metrics(100, 10, 3, 4, 0)
        new = Metrics(150, 9, 6, 8, 0)
        delta = new.delta(base)
        assert delta.loc == 50 and delta.loc_pct == 50
        assert delta.cyclomatic == -1 and delta.cyclomatic_pct == -10


class TestKernelcMetrics:
    def test_counts(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0 && i > 0) { s += g(i); }
            }
            return s;
        }
        int g(int x) { return x > 0 ? x : -x; }
        """
        metrics = analyze_kernelc(src)
        # functions: f (1 + for + if + &&) + g (1 + ternary) = 6
        assert metrics.cyclomatic == 6
        assert metrics.branches == 1  # the call to g
        assert metrics.loc == text_loc(src)

    def test_kernel_and_host_measured_together(self):
        src = """
        __kernel void k(__global float *a) {
            a[get_global_id(0)] = 0.0;
        }
        """
        metrics = analyze_kernelc(src)
        assert metrics.cyclomatic == 1
        assert metrics.assignments == 1


class TestEnsembleMetrics:
    def test_counts(self):
        src = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour {
      x = 1;
      if x > 0 and x < 5 then { x := x + 1; }
      for i = 0 .. 3 do { x := x * 2; }
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        metrics = analyze_ensemble(src)
        # blocks: ctor(1) + behaviour(1 + if + and + for) + boot(1) = 6
        assert metrics.cyclomatic == 6
        assert metrics.assignments >= 3  # x bind + two :=
        assert metrics.branches >= 1  # new Main()


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return build_table1()

    def test_all_five_applications_present(self, table):
        names = [row.application for row in table]
        assert names == [
            "Matrix Multiplication",
            "Mandelbrot",
            "Reduction",
            "LUD",
            "Document Ranking",
        ]

    def test_api_boilerplate_dominates(self, table):
        for row in table:
            assert row.c_api.loc > 25
            assert row.c_api.abc > row.openacc.abc

    def test_pragmas_are_cheap(self, table):
        for row in table:
            assert 0 < row.openacc.loc <= 6
            assert abs(row.openacc.cyclomatic) <= 1

    def test_ensemble_kernel_replaces_outer_loops(self, table):
        by_name = {row.application: row for row in table}
        assert by_name["Matrix Multiplication"].ensemble.cyclomatic < 0
        assert by_name["Mandelbrot"].ensemble.cyclomatic < 0

    def test_reduction_needs_restructuring(self, table):
        by_name = {row.application: row for row in table}
        row = by_name["Reduction"]
        assert row.ensemble.loc > 15
        assert row.ensemble.cyclomatic > 0

    def test_single_row_matches_full_table(self, table):
        row = build_row("LUD")
        full = [r for r in table if r.application == "LUD"][0]
        assert row == full

    def test_render_contains_all_rows(self, table):
        from repro.metrics import render_table1

        text = render_table1(table)
        for row in table:
            assert row.application in text
