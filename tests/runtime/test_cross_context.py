"""Paper Section 6.2.3 edge cases: data flowing between OpenCL actors
on *different* contexts, and multiple kernel actors sharing one device.
"""

import pytest

from repro.actors import (
    Actor,
    InPort,
    KernelActor,
    KernelRequest,
    ManagedArray,
    OutPort,
    Stage,
    connect,
    mov,
)
from repro.opencl import reset_platforms
from repro.runtime import device_matrix, reset_device_matrix

ADD1 = """
__kernel void add1(__global float *x, int n) {
    int i = get_global_id(0);
    if (i < n) { x[i] = x[i] + 1.0; }
}
"""


@pytest.fixture(autouse=True)
def _fresh():
    reset_platforms()
    reset_device_matrix()
    yield
    reset_device_matrix()
    reset_platforms()


class _PipelineHost(Actor):
    req1 = OutPort()
    req2 = OutPort()
    din = InPort()

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n
        self.result: ManagedArray | None = None

    def behaviour(self) -> None:
        n = self.n
        r1 = KernelRequest([n])
        r2 = KernelRequest([n])
        dout = OutPort()
        connect(dout, r1.input)
        connect(r1.output, r2.input)
        connect(r2.output, self.din)
        self.req1.send(r1)
        self.req2.send(r2)
        dout.send(mov({"x": ManagedArray([0.0] * n, (n,)), "n": n}))
        self.result = self.din.receive().value["x"]
        self.stop()


def _run_pipeline(n: int, dev1: str, dev2: str):
    stage = Stage()
    k1 = stage.spawn(KernelActor(ADD1, "add1", dev1))
    k2 = stage.spawn(KernelActor(ADD1, "add1", dev2))
    host = stage.spawn(_PipelineHost(n))
    connect(host.req1, k1.requests)
    connect(host.req2, k2.requests)
    device_matrix().reset_ledgers()
    stage.run(60)
    return host.result


class TestCrossContext:
    def test_gpu_to_cpu_migration_is_automatic(self):
        n = 32
        result = _run_pipeline(n, "GPU", "CPU")
        ledger = device_matrix().combined_ledger()
        # The runtime read the data back from the GPU context and
        # re-uploaded it to the CPU context (OpenCL cannot move data
        # across contexts) — two uploads, at least one read-back.
        assert ledger.bytes_to_device == 2 * n * 4
        assert ledger.bytes_from_device >= n * 4
        assert result is not None
        assert result.host() == [2.0] * n

    def test_same_context_chain_moves_nothing_extra(self):
        n = 32
        result = _run_pipeline(n, "GPU", "GPU")
        ledger = device_matrix().combined_ledger()
        assert ledger.bytes_to_device == n * 4  # one upload only
        assert ledger.bytes_from_device == 0  # still resident
        assert result.host() == [2.0] * n  # read-back happens here


class TestSharedDevice:
    def test_two_kernel_actors_share_the_single_queue(self):
        stage = Stage()
        k1 = stage.spawn(KernelActor(ADD1, "add1", "GPU"))
        k2 = stage.spawn(KernelActor(ADD1, "add1", "GPU"))
        host = stage.spawn(_PipelineHost(8))
        connect(host.req1, k1.requests)
        connect(host.req2, k2.requests)
        stage.run(60)
        # Section 6.2.1: one command queue per device, shared by every
        # kernel actor bound to it.
        assert k1.env.queue is k2.env.queue
        assert k1.env.context is k2.env.context
        assert len(device_matrix().environments()) == 1

    def test_many_concurrent_dispatchers_one_device(self):
        # Several independent host/kernel pairs hammer the same device
        # concurrently; results must be correct and the device matrix
        # must still hold a single environment.
        n = 16
        stage = Stage()
        hosts = []
        for _ in range(4):
            kernel = stage.spawn(KernelActor(ADD1, "add1", "GPU"))
            host = stage.spawn(_SingleShot(n))
            connect(host.requests, kernel.requests)
            hosts.append(host)
        stage.run(60)
        for host in hosts:
            assert host.result.host() == [1.0] * n
        assert len(device_matrix().environments()) == 1


class _SingleShot(Actor):
    requests = OutPort()
    din = InPort()

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n
        self.result: ManagedArray | None = None

    def behaviour(self) -> None:
        request = KernelRequest([self.n])
        dout = OutPort()
        connect(dout, request.input)
        connect(request.output, self.din)
        self.requests.send(request)
        dout.send(mov({"x": ManagedArray([0.0] * self.n, (self.n,)),
                       "n": self.n}))
        self.result = self.din.receive().value["x"]
        self.stop()
