"""VM internals: value types, natives, bytecode-level behaviour."""

import pytest

from repro import ensemble
from repro.errors import RuntimeFault, VMError
from repro.runtime import ManagedArray
from repro.runtime.values import (
    ArrayView,
    StructValue,
    index_value,
    length_of,
    store_value,
)
from repro.runtime.vm import BYTECODE_NS, EnsembleVM, _binop


class TestArrayViews:
    def test_partial_index_yields_view(self):
        array = ManagedArray.zeros((3, 4))
        view = index_value(array, 1)
        assert isinstance(view, ArrayView)
        assert view.ndim == 1
        assert len(view) == 4

    def test_view_reads_and_writes_through(self):
        array = ManagedArray.zeros((2, 2))
        view = index_value(array, 1)
        view.set(0, 7.0)
        assert array[1, 0] == 7.0
        assert view.index(0) == 7.0

    def test_deep_view_chain(self):
        array = ManagedArray.zeros((2, 3, 4), "int")
        view = index_value(index_value(array, 1), 2)
        store_value(view, 3, 9)
        assert array[1, 2, 3] == 9

    def test_assign_into_partial_view_rejected(self):
        array = ManagedArray.zeros((2, 3, 4))
        view = index_value(array, 0)
        with pytest.raises(RuntimeFault):
            view.set(1, 2.0)  # still 2-D

    def test_length_of(self):
        array = ManagedArray.zeros((5, 2))
        assert length_of(array) == 5
        assert length_of(index_value(array, 0)) == 2
        with pytest.raises(RuntimeFault):
            length_of(42)

    def test_index_non_array_rejected(self):
        with pytest.raises(RuntimeFault):
            index_value(3, 0)


class TestStructValue:
    def test_get_set(self):
        struct = StructValue("p", {"x": 1.0, "y": 2.0})
        struct.set("x", 5.0)
        assert struct.get("x") == 5.0

    def test_unknown_field(self):
        struct = StructValue("p", {"x": 1.0})
        with pytest.raises(RuntimeFault):
            struct.get("z")
        with pytest.raises(RuntimeFault):
            struct.set("z", 0)

    def test_clone_deep_copies_data_fields(self):
        inner = ManagedArray([1.0], (1,))
        struct = StructValue("p", {"a": inner, "n": 3})
        clone = struct.clone()
        clone.get("a")[0] = 9.0
        assert inner[0] == 1.0
        assert clone.get("n") == 3


class TestVmBinops:
    @pytest.mark.parametrize(
        "op, l, r, expected",
        [
            ("+", 2, 3, 5),
            ("-", 2.5, 1.0, 1.5),
            ("*", 3, 4, 12),
            ("/", 7, 2, 3),
            ("/", -7, 2, -3),
            ("/", 7.0, 2, 3.5),
            ("%", 7, 3, 1),
            ("%", -7, 3, -1),
            ("==", 1, 1, True),
            ("!=", 1, 2, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 1, 2, False),
            ("and", True, False, False),
            ("or", False, True, True),
        ],
    )
    def test_semantics(self, op, l, r, expected):
        assert _binop(op, l, r) == expected

    def test_unknown_op(self):
        with pytest.raises(VMError):
            _binop("**", 2, 3)


class TestVmExecution:
    def _vm(self, source):
        return EnsembleVM(ensemble.compile_source(source))

    def test_instruction_cost_charged(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour {
      x = 0;
      for i = 1 .. 100 do { x := x + i; }
      printInt(x);
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        vm = self._vm(source)
        vm.run(30)
        assert vm.output == ["5050"]
        # every executed bytecode was priced
        assert vm.ledger.host_ns >= 100 * 3 * BYTECODE_NS

    def test_double_boot_rejected(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour { stop; }
  }
  boot { m = new Main(); }
}
"""
        vm = self._vm(source)
        vm.boot()
        with pytest.raises(VMError):
            vm.boot()

    def test_fill_natives_match_python_formula(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour {
      a = new real[3][4] of 0.0;
      fillPattern2D(a, 7, 3, 0, 11, -5, 1.0);
      printReal(a[2][3]);
      v = new real[8] of 0.0;
      fillPattern1D(v, 5, 1, 7, 0, 2.0);
      printReal(v[3]);
      t = new integer[2][3] of 0;
      fillPatternCond2D(t, 2, 1, 2, 1, 1, 5, 1);
      printInt(t[1][1]);
      printInt(t[1][2]);
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        vm = self._vm(source)
        vm.run(30)
        expected_a = float((2 * 7 + 3 * 3) % 11 - 5)
        expected_v = float((3 * 5 + 1) % 7) / 2.0
        t11 = (1 * 1 + 1 * 1) % 5 + 1 if (1 * 2 + 1) % 2 == 0 else 0
        t12 = (1 + 2) % 5 + 1 if (1 * 2 + 2) % 2 == 0 else 0
        assert vm.output == [
            repr(expected_a), repr(expected_v), str(t11), str(t12)
        ]

    def test_checksum_native_matches_manual_loop(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour {
      v = new real[5] of 0.0;
      for i = 0 .. 4 do { v[i] := intToReal(i + 1); }
      printReal(checksumWeighted(v));
      w = new integer[3] of 2;
      printInt(checksumWeighted(w));
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        vm = self._vm(source)
        vm.run(30)
        expected_real = sum((i % 97 + 1) * (i + 1) for i in range(5))
        expected_int = sum((i % 97 + 1) * 2 for i in range(3))
        assert vm.output == [repr(float(expected_real)), str(expected_int)]

    def test_min_element_native(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour {
      v = new real[4] of 9.0;
      v[2] := 1.5;
      printReal(minElement(v));
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        vm = self._vm(source)
        vm.run(30)
        assert vm.output == ["1.5"]

    def test_buffered_channel_declared_in_interface(self):
        compiled = ensemble.compile_source(
            """
type aI is interface(out integer tx)
type bI is interface(in integer rx[8])
stage home {
  actor A presents aI {
    constructor() {}
    behaviour { send 1 on tx; stop; }
  }
  actor B presents bI {
    constructor() {}
    behaviour { receive v from rx; printInt(v); stop; }
  }
  boot {
    a = new A();
    b = new B();
    connect a.tx to b.rx;
  }
}
"""
        )
        spec = dict(
            (name, buffer)
            for name, _d, _m, buffer in compiled.actors["B"].channel_specs
        )
        assert spec["rx"] == 8
        vm = EnsembleVM(compiled)
        vm.run(30)
        assert vm.output == ["1"]

    def test_clock_millis_native_reads_simulated_time(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour {
      t = clockMillis();
      printBool(t >= 0);
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        vm = self._vm(source)
        vm.run(30)
        assert vm.output == ["true"]

    def test_random_natives_are_deterministic_per_run(self):
        source = """
type mainI is interface(out integer unused)
stage home {
  actor Main presents mainI {
    constructor() {}
    behaviour {
      printInt(randomInt(1000));
      stop;
    }
  }
  boot { m = new Main(); }
}
"""
        vm1 = self._vm(source)
        vm1.run(30)
        vm2 = self._vm(source)
        vm2.run(30)
        assert vm1.output == vm2.output
