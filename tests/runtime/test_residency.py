"""ManagedArray residency protocol (paper Section 6.2.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RuntimeFault
from repro.opencl import Buffer, CommandQueue, Context, find_device
from repro.runtime import ManagedArray


@pytest.fixture()
def gpu_queue():
    device = find_device("GPU")
    ctx = Context([device])
    return CommandQueue(ctx, device)


@pytest.fixture()
def cpu_queue():
    device = find_device("CPU")
    ctx = Context([device])
    return CommandQueue(ctx, device)


class TestShapes:
    def test_flat_and_shape_consistency(self):
        with pytest.raises(RuntimeFault):
            ManagedArray([1.0, 2.0], (3,))

    def test_from_nested(self):
        array = ManagedArray.from_nested([[1.0, 2.0], [3.0, 4.0]])
        assert array.shape == (2, 2)
        assert array[1, 0] == 3.0

    def test_ragged_nested_rejected(self):
        with pytest.raises(RuntimeFault):
            ManagedArray.from_nested([[1.0], [2.0, 3.0]])

    def test_tolist_round_trip(self):
        nested = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
        assert ManagedArray.from_nested(nested).tolist() == nested

    def test_multi_dim_indexing(self):
        array = ManagedArray.zeros((2, 3, 4), "int")
        array[1, 2, 3] = 7
        assert array[1, 2, 3] == 7
        assert array.host()[1 * 12 + 2 * 4 + 3] == 7

    def test_out_of_bounds_rejected(self):
        array = ManagedArray.zeros((2, 2))
        with pytest.raises(RuntimeFault):
            _ = array[2, 0]

    def test_rank_mismatch_rejected(self):
        array = ManagedArray.zeros((2, 2))
        with pytest.raises(RuntimeFault):
            _ = array[1]

    def test_iteration_only_for_1d(self):
        assert list(ManagedArray([1.0, 2.0], (2,))) == [1.0, 2.0]
        with pytest.raises(RuntimeFault):
            list(ManagedArray.zeros((2, 2)))


class TestResidency:
    def test_to_device_uploads_once(self, gpu_queue):
        array = ManagedArray([1.0, 2.0, 3.0, 4.0], (4,))
        buf1 = array.to_device(gpu_queue)
        buf2 = array.to_device(gpu_queue)
        assert buf1 is buf2
        assert gpu_queue.context.ledger.bytes_to_device == 16

    def test_device_written_makes_device_authoritative(self, gpu_queue):
        array = ManagedArray([0.0] * 4, (4,))
        buf = array.to_device(gpu_queue)
        buf.data[0] = 42.0  # simulate a kernel write
        array.mark_device_written()
        assert not array.host_valid
        assert array[0] == 42.0  # host access triggers read-back
        assert gpu_queue.context.ledger.bytes_from_device == 16

    def test_host_access_returns_device_memory(self, gpu_queue):
        array = ManagedArray([0.0] * 4, (4,))
        buf = array.to_device(gpu_queue)
        array.mark_device_written()
        array.sync_host()
        assert buf.released
        assert not array.on_device

    def test_no_copy_upload_for_write_only_buffers(self, gpu_queue):
        array = ManagedArray([0.0] * 1024, (1024,))
        array.to_device(gpu_queue, copy=False)
        assert gpu_queue.context.ledger.bytes_to_device == 0
        assert array.on_device

    def test_cross_context_migration(self, gpu_queue, cpu_queue):
        array = ManagedArray([1.0, 2.0], (2,))
        gpu_buf = array.to_device(gpu_queue)
        gpu_buf.data[0] = 9.0
        array.mark_device_written()
        # Arriving at a different context forces read-back + re-upload.
        cpu_buf = array.to_device(cpu_queue)
        assert gpu_buf.released
        assert cpu_buf.context is cpu_queue.context
        assert cpu_buf.data[0] == 9.0
        assert gpu_queue.context.ledger.bytes_from_device == 8
        assert cpu_queue.context.ledger.bytes_to_device == 8

    def test_mark_written_requires_device_copy(self):
        array = ManagedArray([1.0], (1,))
        with pytest.raises(RuntimeFault):
            array.mark_device_written()

    def test_clone_preserves_values_without_stealing_residency(
        self, gpu_queue
    ):
        array = ManagedArray([1.0, 2.0], (2,))
        buf = array.to_device(gpu_queue)
        buf.data[1] = 5.0
        array.mark_device_written()
        clone = array.clone()
        assert clone.host() == [1.0, 5.0]
        assert not clone.on_device
        assert array.on_device  # original keeps its buffer

    def test_writes_invalidate_nothing_on_pure_host_array(self):
        array = ManagedArray([1.0], (1,))
        array[0] = 3.0
        assert array.host() == [3.0]


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=32,
    )
)
def test_property_device_round_trip_is_identity(values):
    device = find_device("GPU")
    ctx = Context([device])
    queue = CommandQueue(ctx, device)
    array = ManagedArray(list(values), (len(values),))
    array.to_device(queue)
    array.mark_device_written()
    assert array.host() == list(values)
