"""The runtime device matrix: one command queue per device (S 6.2.1)."""

import pytest

from repro.errors import CLInvalidDevice, RuntimeFault
from repro.opencl import find_device, reset_platforms
from repro.runtime.oclenv import (
    device_matrix,
    get_environment,
    reset_device_matrix,
)


@pytest.fixture(autouse=True)
def _fresh_matrix():
    reset_platforms()
    reset_device_matrix()
    yield
    reset_device_matrix()
    reset_platforms()


class TestEnvironments:
    def test_environment_lazily_created(self):
        assert device_matrix().environments() == []
        env = get_environment("GPU")
        assert env.device.device_type == "GPU"
        assert len(device_matrix().environments()) == 1

    def test_single_queue_per_device(self):
        env1 = get_environment("GPU")
        env2 = get_environment("GPU")
        assert env1.queue is env2.queue
        assert env1.context is env2.context

    def test_distinct_devices_get_distinct_contexts(self):
        gpu = get_environment("GPU")
        cpu = get_environment("CPU")
        assert gpu.context is not cpu.context
        assert gpu.queue is not cpu.queue

    def test_bad_indices_rejected(self):
        with pytest.raises(CLInvalidDevice):
            get_environment("GPU", device_index=7)
        with pytest.raises(CLInvalidDevice):
            get_environment("GPU", platform_index=3)

    def test_acquire_queue_finds_existing(self):
        env = get_environment("CPU")
        assert device_matrix().acquire_queue(env.device) is env.queue

    def test_acquire_queue_unknown_device(self):
        device = find_device("GPU")
        with pytest.raises(RuntimeFault):
            device_matrix().acquire_queue(device)

    def test_fallback_when_type_missing(self):
        # Requesting an absent type falls back to any device, as real
        # OpenCL runtimes commonly do.
        env = get_environment("ACCELERATOR")
        assert env.device is not None


class TestLedgers:
    def test_combined_ledger_sums_devices(self):
        gpu = get_environment("GPU")
        cpu = get_environment("CPU")
        gpu.context.charge("kernel", 10.0)
        cpu.context.charge("kernel", 5.0)
        assert device_matrix().combined_ledger().kernel_ns == 15.0

    def test_reset_ledgers(self):
        env = get_environment("GPU")
        env.context.charge("host", 10.0)
        device_matrix().reset_ledgers()
        assert device_matrix().combined_ledger().total_ns == 0.0

    def test_reset_matrix_drops_environments(self):
        get_environment("GPU")
        reset_device_matrix()
        assert device_matrix().environments() == []
