"""Chaos coverage of the VM/Ensemble fault sites.

The tentpole's new injection sites driven end to end through the
Figure-4 Ensemble pipeline: ``invokenative`` host calls (``native``),
VM-driven kernel-actor dispatch (``vm``), and stage hand-offs
(``handoff``).  Each site is held to the chaos invariants — transient
recovery is invisible in the data and priced exactly (the Fraction
delta equals the summed ``fault.*`` charges), permanent faults surface
the injected error, device loss fails the VM actor over to a surviving
device, and every faulted run replays bit-for-bit under the same plan.
"""

import re

import pytest

from repro import opencl as cl
from repro.apps.lud import runners as lud
from repro.errors import ActorError, CLOutOfHostMemory, CLOutOfResources
from repro.harness.chaos import priced_totals
from repro.opencl import dispatch, faults
from repro.opencl.context import current_clock
from repro.opencl.faults import (
    DEVICE_LOST,
    PERMANENT,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from repro.runtime import reset_device_matrix
from repro.trace import Tracer, tracing

pytestmark = pytest.mark.chaos

N = 8


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    cl.reset_platforms()
    reset_device_matrix()
    yield
    dispatch.configure(fusion=False, faults=None)
    faults.clear()
    cl.reset_platforms()
    reset_device_matrix()


def run_ensemble_traced(plan=None):
    """One fresh-platform Ensemble LUD run under an optional plan.

    Returns ``(outcome, priced, fault_part, tracer)`` with the priced
    totals as exact Fractions over the tracer's cost spans.
    """
    cl.reset_platforms()
    reset_device_matrix()
    if plan is not None:
        plan.reset()
    dispatch.configure(faults=plan)
    try:
        tracer = Tracer()
        current_clock().timeline.reset()
        with tracing(tracer):
            outcome = lud.run_ensemble(N, "GPU", movable=True)
    finally:
        dispatch.configure(faults=None)
    priced, fault_part = priced_totals((tracer,))
    return outcome, priced, fault_part, tracer


def capture(plan):
    """Run under *plan* and fingerprint the outcome, crash included.

    Actor names embed a global spawn counter that is not stable across
    runs, so crash messages are normalised before comparison.
    """
    try:
        outcome, priced, fault_part, _ = run_ensemble_traced(plan)
        return ("ok", outcome.result, priced, fault_part, plan.injected)
    except Exception as exc:  # noqa: BLE001 - fingerprinting the crash
        message = re.sub(r"(\w)-\d+", r"\1-N", str(exc))
        return ("raise", type(exc).__name__, message, plan.injected)


class TestNativeSite:
    def test_transient_recovers_and_prices_exactly(self):
        _, clean_priced, clean_fault, _ = run_ensemble_traced()
        assert clean_fault == 0
        clean, clean_priced, _, _ = run_ensemble_traced()
        plan = FaultPlan([FaultSpec("native", kind=TRANSIENT)])
        faulted, priced, fault_part, tracer = run_ensemble_traced(plan)
        assert plan.injected >= 1
        assert faulted.result == clean.result
        assert priced - clean_priced == fault_part
        names = {s.name for s in tracer.spans}
        assert "fault.vm.native" in names
        assert "fault.backoff" in names
        counters = tracer.counters()
        assert counters["fault.injected"] == plan.injected
        assert counters["fault.retry"] == plan.injected

    def test_permanent_aborts_with_injected_error(self):
        plan = FaultPlan([FaultSpec("native", kind=PERMANENT)])
        with pytest.raises(
            (ActorError, CLOutOfHostMemory),
            match="injected permanent fault on native",
        ):
            run_ensemble_traced(plan)
        assert plan.injected >= 1


class TestVmDispatchSite:
    def test_transient_recovers_and_prices_exactly(self):
        clean, clean_priced, _, _ = run_ensemble_traced()
        plan = FaultPlan([FaultSpec("vm", kind=TRANSIENT)])
        faulted, priced, fault_part, tracer = run_ensemble_traced(plan)
        # One injection per kernel stream (pivot/scale/update) at
        # occurrence 0.
        assert plan.injected == 3
        assert faulted.result == clean.result
        assert priced - clean_priced == fault_part
        assert fault_part > 0
        assert any(s.name == "fault.vm.dispatch" for s in tracer.spans)

    def test_permanent_aborts_with_injected_error(self):
        plan = FaultPlan(
            [FaultSpec("vm", kind=PERMANENT, key="scale_kernel")]
        )
        with pytest.raises(
            (ActorError, CLOutOfResources),
            match="injected permanent fault on vm",
        ):
            run_ensemble_traced(plan)
        assert plan.injected >= 1

    def test_device_lost_fails_over_with_identical_result(self):
        clean, _, _, _ = run_ensemble_traced()
        plan = FaultPlan(
            [FaultSpec("vm", kind=DEVICE_LOST, key="scale_kernel")]
        )
        faulted, priced, fault_part, tracer = run_ensemble_traced(plan)
        assert plan.injected == 1
        # (a) recovery is invisible in the data, even across devices.
        assert faulted.result == clean.result
        counters = tracer.counters()
        assert counters["fault.failover"] >= 1
        assert counters["actor.failover"] >= 1
        # (c) the failover run replays bit-for-bit under the same plan.
        again, again_priced, again_fault, _ = run_ensemble_traced(plan)
        assert again.result == faulted.result
        assert again_priced == priced
        assert again_fault == fault_part
        assert plan.injected == 1


class TestHandoffSite:
    def test_transient_recovers_and_prices_exactly(self):
        clean, clean_priced, _, _ = run_ensemble_traced()
        plan = FaultPlan([FaultSpec("handoff", kind=TRANSIENT)])
        faulted, priced, fault_part, tracer = run_ensemble_traced(plan)
        assert plan.injected >= 1
        assert faulted.result == clean.result
        assert priced - clean_priced == fault_part
        assert any(
            s.name == "fault.ensemble.handoff" for s in tracer.spans
        )

    def test_permanent_kills_the_pipeline(self):
        plan = FaultPlan([FaultSpec("handoff", kind=PERMANENT)])
        with pytest.raises(
            (ActorError, CLOutOfHostMemory),
            match="injected permanent fault on handoff",
        ):
            run_ensemble_traced(plan)
        assert plan.injected >= 1

    def test_handoff_keys_are_run_stable(self):
        """The same explicit key hits the same send in every run."""
        plan = FaultPlan(
            [FaultSpec("handoff", kind=TRANSIENT, key="Control.*")]
        )
        first = capture(plan)
        second = capture(plan)
        assert first == second
        assert first[0] == "ok" and plan.injected >= 1


class TestDeterminism:
    def test_empty_plan_is_identity(self):
        clean, clean_priced, _, _ = run_ensemble_traced()
        plan = FaultPlan()
        faulted, priced, fault_part, _ = run_ensemble_traced(plan)
        assert plan.injected == 0
        assert fault_part == 0
        assert faulted.result == clean.result
        assert priced == clean_priced

    def test_seeded_vm_plan_replays_bit_for_bit(self):
        plan = FaultPlan(
            seed=7,
            rate=0.05,
            kinds=(TRANSIENT,),
            ops=("native", "vm", "handoff"),
        )
        first = capture(plan)
        second = capture(plan)
        assert first == second
        assert first[0] == "ok"
        assert plan.injected >= 1
