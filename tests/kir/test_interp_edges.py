"""Interpreter and codegen edge cases not covered elsewhere."""

import pytest

from repro import kernelc, kir
from repro.errors import KirRuntimeError


class TestInterpreterEdges:
    def test_zero_step_for_loop_rejected(self):
        fn = kir.Function(
            "f",
            [],
            kir.INT_T,
            [
                kir.For("i", kir.Const(0), kir.Const(3), kir.Const(0), []),
                kir.Return(kir.Const(0)),
            ],
        )
        module = kir.Module()
        module.add(fn)
        with pytest.raises(KirRuntimeError, match="zero step"):
            kir.Interpreter(module).call("f", [])

    def test_negative_step_counts_down(self):
        fn = kir.Function(
            "f",
            [],
            kir.INT_T,
            [
                kir.Decl("s", kir.INT_T, init=kir.Const(0)),
                kir.For(
                    "i",
                    kir.Const(5),
                    kir.Const(0),
                    kir.Const(-1),
                    [
                        kir.Assign(
                            "s", kir.BinOp("+", kir.Var("s"), kir.Var("i"))
                        )
                    ],
                ),
                kir.Return(kir.Var("s")),
            ],
        )
        module = kir.Module()
        module.add(fn)
        assert kir.Interpreter(module).call("f", []) == 5 + 4 + 3 + 2 + 1

    def test_wrong_arg_count_rejected(self):
        fn = kir.Function(
            "f", [kir.Param("x", kir.INT_T)], kir.INT_T,
            [kir.Return(kir.Var("x"))],
        )
        module = kir.Module()
        module.add(fn)
        with pytest.raises(KirRuntimeError, match="expected 1"):
            kir.Interpreter(module).call("f", [])

    def test_calling_kernel_as_host_rejected(self):
        fn = kir.Function("k", [], kir.VOID, [], is_kernel=True)
        module = kir.Module()
        module.add(fn)
        with pytest.raises(KirRuntimeError, match="kernel"):
            kir.Interpreter(module).call("k", [])

    def test_math_domain_error_reported(self):
        src = "float f(float x) { return sqrt(x); }"
        compiled = kernelc.build(src)
        interp = kir.Interpreter(compiled.module)
        with pytest.raises(KirRuntimeError, match="sqrt"):
            interp.call("f", [-1.0])


class TestCodegenEdges:
    def test_early_return_in_kernel(self):
        src = """
        __kernel void k(__global int *out, int n) {
            int i = get_global_id(0);
            if (i >= n) { return; }
            out[i] = 1;
        }
        """
        compiled = kernelc.build(src)
        out = [0] * 8
        compiled.kernel_runner("k").run_range([out, 5], [8], [4])
        assert out == [1, 1, 1, 1, 1, 0, 0, 0]

    def test_kernel_with_no_parameters(self):
        src = "__kernel void noop() { int x = get_global_id(0); }"
        compiled = kernelc.build(src)
        ops = compiled.kernel_runner("k" if False else "noop").run_range(
            [], [4], [2]
        )
        assert len(ops) == 4

    def test_helper_calls_inside_loops(self):
        src = """
        int triple(int x) { return x * 3; }
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                s += triple(i) + triple(i + 1);
            }
            return s;
        }
        """
        value, _ = kernelc.run_host(src, "f", [5])
        assert value == sum(3 * i + 3 * (i + 1) for i in range(5))

    def test_deeply_nested_control_flow(self):
        src = """
        int f(int n) {
            int count = 0;
            for (int a = 0; a < n; a++) {
                for (int b = 0; b < n; b++) {
                    if (a < b) {
                        while (count % 7 != 3) { count++; }
                    } else {
                        if (a == b) { count += 2; }
                        else { count += 1; }
                    }
                }
            }
            return count;
        }
        """
        def oracle(n):
            count = 0
            for a in range(n):
                for b in range(n):
                    if a < b:
                        while count % 7 != 3:
                            count += 1
                    elif a == b:
                        count += 2
                    else:
                        count += 1
            return count

        for n in (0, 1, 3, 5):
            value, _ = kernelc.run_host(src, "f", [n])
            assert value == oracle(n)

    def test_op_counts_scale_with_work(self):
        src = """
        void f(__global float *a, int n) {
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
        }
        """
        compiled = kernelc.build(src)
        _, ops_small = compiled.call("f", [[1.0] * 10, 10])
        _, ops_big = compiled.call("f", [[1.0] * 100, 100])
        assert 8 <= ops_big / ops_small <= 12  # linear in n

    def test_generated_source_is_inspectable(self):
        compiled = kernelc.build("int f() { return 42; }")
        assert "def f_f(" in compiled.source
