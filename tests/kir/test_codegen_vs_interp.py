"""Cross-check the Python code generator against the reference interpreter.

Programs are written in kernel-C (exercising the whole front end) and
executed through both engines; results must match exactly and dynamic
op counts must agree within a factor of two.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernelc, kir


def run_both(source: str, fname: str, arg_maker):
    compiled = kernelc.build(source)
    args_a = arg_maker()
    ret_a, ops_a = compiled.call(fname, args_a)
    interp = kir.Interpreter(compiled.module)
    args_b = arg_maker()
    ret_b = interp.call(fname, args_b)
    return (ret_a, args_a, ops_a), (ret_b, args_b, interp.ops)


CASES = {
    "arith": (
        """
        float f(int a, int b) {
            int q = a / b;
            int r = a % b;
            float x = (float)a / (float)b;
            return x + (float)q + (float)r;
        }
        """,
        "f",
        lambda: [-17, 5],
    ),
    "loops": (
        """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) { continue; }
                if (i > 20) { break; }
                s += i;
            }
            int j = 0;
            while (j < n) { s += 2; j += 5; }
            return s;
        }
        """,
        "f",
        lambda: [30],
    ),
    "arrays": (
        """
        void f(__global float *a, int n) {
            float acc = 0.0;
            for (int i = 0; i < n; i++) {
                acc = acc + a[i];
                a[i] = acc;
            }
        }
        """,
        "f",
        lambda: [[1.0, 2.0, 3.0, 4.0], 4],
    ),
    "ternary_and_logic": (
        """
        int f(int x) {
            int a = x > 2 && x < 10 ? 1 : 0;
            int b = x == 5 || x == 7 ? 10 : 20;
            bool c = !(x > 100);
            if (c) { return a + b; }
            return 0;
        }
        """,
        "f",
        lambda: [5],
    ),
    "math": (
        """
        float f(float x) {
            return sqrt(x) + pow(x, 2.0) + fmin(x, 3.0) + fabs(0.0 - x)
                + floor(x) + ceil(x) + exp(0.0) + log(1.0) + clamp(x, 0.0, 2.0);
        }
        """,
        "f",
        lambda: [1.7],
    ),
    "helpers": (
        """
        int helper(int x, int y) { return x * y + 1; }
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += helper(i, i + 1); }
            return s;
        }
        """,
        "f",
        lambda: [6],
    ),
    "noncanonical_for": (
        """
        int f(int n) {
            int s = 0;
            for (int i = n; i > 0; i = i / 2) { s += i; }
            return s;
        }
        """,
        "f",
        lambda: [40],
    ),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_engines_agree(case):
    source, fname, arg_maker = CASES[case]
    (ret_a, args_a, ops_a), (ret_b, args_b, ops_b) = run_both(
        source, fname, arg_maker
    )
    assert ret_a == pytest.approx(ret_b)
    assert args_a == args_b  # in-place array effects identical
    assert ops_a > 0 and ops_b > 0
    assert ops_a <= 2 * ops_b and ops_b <= 2 * ops_a


KERNEL = """
__kernel void saxpy(__global float *x, __global float *y, float a, int n) {
    int i = get_global_id(0);
    if (i < n) { y[i] = a * x[i] + y[i]; }
}
"""


def test_kernel_range_matches_interp_per_item():
    compiled = kernelc.build(KERNEL)
    fn = compiled.module.kernel("saxpy")
    n = 16
    x = [float(i) for i in range(n)]
    y1 = [1.0] * n
    compiled.kernel_runner("saxpy").run_range([x, y1, 2.0, n], [n], [4])

    interp = kir.Interpreter(compiled.module)
    y2 = [1.0] * n
    for i in range(n):
        wi = kir.WorkItem((i,), (i % 4,), (i // 4,), (n,), (4,))
        for _ in interp.run_workitem(fn, [x, y2, 2.0, n], wi):
            pass
    assert y1 == y2
    assert y1[3] == 2.0 * 3 + 1


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-100, max_value=100), min_size=1, max_size=24
    )
)
def test_property_prefix_sum_engines_agree(values):
    source = """
    void scan(__global int *a, int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) {
            acc = acc + a[i];
            a[i] = acc;
        }
    }
    """
    compiled = kernelc.build(source)
    a1 = list(values)
    compiled.call("scan", [a1, len(values)])
    interp = kir.Interpreter(compiled.module)
    a2 = list(values)
    interp.call("scan", [a2, len(values)])
    expected = []
    total = 0
    for v in values:
        total += v
        expected.append(total)
    assert a1 == a2 == expected


@settings(max_examples=25, deadline=None)
@given(a=st.integers(-50, 50), b=st.integers(-50, 50).filter(lambda x: x != 0))
def test_property_c_division(a, b):
    source = "int f(int a, int b) { return a / b * b + a % b; }"
    compiled = kernelc.build(source)
    ret, _ = compiled.call("f", [a, b])
    assert ret == a  # the C division identity
