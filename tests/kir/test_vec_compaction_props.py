"""Property suite for active-lane compaction (hypothesis).

Random divergent-loop kernels are generated from a small grammar —
per-lane trip counts, optional ``continue``/``break`` arms, nested
inner loops, and deliberately repeated subexpressions (CSE bait) — and
executed with compaction forced on (density 1.0, checked every round)
and forced off (density 0.0).  Outputs, per-group warp maxima and
priced ledger totals must be bit-identical: compaction and CSE are
wall-clock optimisations only, invisible to everything the simulation
reports.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernelc
from repro.kir import npcodegen
from repro.opencl import Buffer, CommandQueue, Context, Program, find_device
from repro.opencl import dispatch

pytestmark = pytest.mark.skipif(
    not npcodegen.AVAILABLE, reason="numpy not installed"
)

N = 256  # >= dispatch.VEC_MIN_ITEMS so the full path takes the vec tier
LSZ = 8
SIMD = 8


@st.composite
def divergent_kernels(draw):
    """A kernel whose masked loop drains lanes at per-lane rates."""
    trip_mod = draw(st.integers(min_value=2, max_value=9))
    trip_base = draw(st.integers(min_value=1, max_value=12))
    step = draw(st.integers(min_value=1, max_value=3))
    arm = draw(st.sampled_from(["none", "continue", "break", "both"]))
    arm_mod = draw(st.integers(min_value=2, max_value=5))
    body = draw(st.sampled_from([
        "s += i + j;",
        "s += (i + j) * (i + j);",   # repeated subtree: CSE bait
        "s += i % 5 + j;",
        "s = s + j * 2 + 1;",
    ]))
    nested = draw(st.booleans())
    lines = [
        "__kernel void k(__global int *out, int n) {",
        "    int i = get_global_id(0);",
        "    int s = 0;",
        "    int j = 0;",
        f"    while (j < i % {trip_mod} + {trip_base}) {{",
    ]
    if arm in ("continue", "both"):
        lines.append(
            f"        if ((i + j) % {arm_mod} == 0) {{ j += {step}; "
            "continue; }"
        )
    if arm in ("break", "both"):
        lines.append(f"        if (s > 50 + i % 17) {{ break; }}")
    lines.append(f"        {body}")
    if nested:
        lines.append("        for (int t = 0; t < j % 3 + 1; t++) "
                     "{ s += t; }")
    lines.append(f"        j += {step};")
    lines.append("    }")
    lines.append("    out[i] = s;")
    lines.append("}")
    return "\n".join(lines)


def _full_dispatch(source):
    """Run *source* through Context/Queue and return (contents, ns)."""
    device = find_device("GPU")
    ctx = Context([device])
    queue = CommandQueue(ctx, device)
    program = Program(ctx, source).build()
    kernel = program.create_kernel("k")
    buf = Buffer(ctx, N, "int")
    queue.enqueue_write_buffer(buf, [0] * N)
    kernel.set_arg(0, buf)
    kernel.set_arg(1, N)
    queue.enqueue_nd_range_kernel(kernel, [N], [LSZ])
    queue.finish()
    return list(buf.data), ctx.ledger.kernel_ns


def _at_density(source, density, every=1):
    saved = dispatch.configure()
    dispatch.configure(compact_density=density, compact_check_every=every)
    try:
        import numpy as np

        compiled = kernelc.build(source)
        runner = compiled.kernel_runner("k")
        assert runner.vec is not None, runner.vec_reason
        args = [np.zeros(N, np.int64), N]
        warps = runner.vec.run_group_warps(args, [N], [LSZ], SIMD)
        contents, ns = _full_dispatch(source)
        return args[0].tolist(), warps, contents, ns
    finally:
        dispatch.configure(**saved)


class TestCompactionProperties:
    @settings(deadline=None, max_examples=30)
    @given(divergent_kernels())
    def test_on_off_identical(self, source):
        on = _at_density(source, 1.0, every=1)
        off = _at_density(source, 0.0)
        out_on, warps_on, contents_on, ns_on = on
        out_off, warps_off, contents_off, ns_off = off
        assert out_on == out_off
        assert warps_on == warps_off
        assert contents_on == contents_off
        assert ns_on == ns_off

    @settings(deadline=None, max_examples=15)
    @given(divergent_kernels(),
           st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=1, max_value=6))
    def test_intermediate_densities_match_reference(self, source, density,
                                                    every):
        got = _at_density(source, density, every=every)
        ref = _at_density(source, 0.0)
        assert got == ref

    @settings(deadline=None, max_examples=10)
    @given(divergent_kernels())
    def test_scalar_reference_agreement(self, source):
        """The compacted vec tier agrees with the per-item interpreter
        path, not just with its own uncompacted self."""
        compiled = kernelc.build(source)
        runner = compiled.kernel_runner("k")
        ref_args = [[0] * N, N]
        runner.run_range(ref_args, [N], [LSZ])
        on_out = _at_density(source, 1.0, every=1)[0]
        assert on_out == ref_args[0]
