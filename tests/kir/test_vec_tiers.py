"""Tier-agreement suite for the extended vectorised execution tiers.

PR 4 lifted three restrictions from :mod:`repro.kir.npcodegen`:
divergent loops (``while`` / ``break`` / ``continue`` / early
``return``) run under iterative masked evaluation, pure user-function
calls are inlined at codegen time, and barrier kernels run as
cooperative whole-group phases with local memory as numpy buffers.

Every test here asserts the contract those tiers must keep: numpy tier
== scalar warp-fold == interpreter on buffer contents, per-group warp
maxima, and priced ledger totals — so the simulated figures never
depend on which tier executed a dispatch.
"""

from __future__ import annotations

import pytest

from repro import kernelc, kir
from repro.apps.reduction import sources as reduction_sources
from repro.kir import npcodegen
from repro.opencl import Buffer, CommandQueue, Context, Program, find_device
from repro.opencl import dispatch
from repro.opencl.costmodel import _group_warp_costs
from repro.trace import tracing

pytestmark = pytest.mark.skipif(
    not npcodegen.AVAILABLE, reason="numpy not installed"
)

SIMD = 8


def _np():
    import numpy as np

    return np


def _np_dtype(kind):
    np = _np()
    return {"int": np.int64, "float": np.float64, "bool": np.bool_}[kind]


def run_tiers(source, kernel, scalars, arrays, gsz, lsz, simd=SIMD,
              expect_vec=True):
    """Run *kernel* through every tier and assert exact agreement.

    Reference is the per-item engine (``run_range`` — the generator
    interpreter for group-mode kernels, generated per-item code
    otherwise).  Returns the reference warp maxima.
    """
    np = _np()
    compiled = kernelc.build(source)
    runner = compiled.kernel_runner(kernel)
    fn = compiled.module.kernel(kernel)

    def make_args(as_numpy):
        out, arrays_iter, scalars_iter = [], iter(arrays), iter(scalars)
        for p in fn.params:
            if p.type.is_array:
                data = next(arrays_iter)
                if as_numpy:
                    out.append(
                        np.array(data, dtype=_np_dtype(p.type.element.kind))
                    )
                else:
                    out.append(list(data))
            else:
                out.append(next(scalars_iter))
        return out

    ref_args = make_args(False)
    item_ops = runner.run_range(ref_args, gsz, lsz)
    ref_warps = _group_warp_costs(item_ops, gsz, lsz, simd)

    if not runner.group_mode:
        fold_args = make_args(False)
        fold_warps = runner.run_group_warps(fold_args, gsz, lsz, simd)
        assert fold_warps == ref_warps
        assert fold_args == ref_args

    if expect_vec:
        assert runner.vec is not None, runner.vec_reason
        vec_args = make_args(True)
        vec_warps = runner.vec.run_group_warps(vec_args, gsz, lsz, simd)
        assert vec_warps == ref_warps
        for got, want in zip(vec_args, ref_args):
            if isinstance(want, list):
                assert got.tolist() == want
    else:
        assert runner.vec is None
    return ref_warps


def interp_buffers(source, kernel, scalars, arrays, gsz, lsz):
    """Reference buffer contents from :class:`repro.kir.Interpreter`."""
    compiled = kernelc.build(source)
    fn = compiled.module.kernel(kernel)
    interp = kir.Interpreter(compiled.module)
    out, arrays_iter, scalars_iter = [], iter(arrays), iter(scalars)
    for p in fn.params:
        if p.type.is_array:
            out.append(list(next(arrays_iter)))
        else:
            out.append(next(scalars_iter))
    gsz = list(gsz) + [1] * (3 - len(gsz))
    lsz = list(lsz) + [1] * (3 - len(lsz))
    nit = gsz[0] * gsz[1] * gsz[2]
    for linear in range(nit):
        gid = (linear % gsz[0],
               (linear // gsz[0]) % gsz[1],
               linear // (gsz[0] * gsz[1]))
        lid = tuple(g % l for g, l in zip(gid, lsz))
        grp = tuple(g // l for g, l in zip(gid, lsz))
        wi = kir.WorkItem(gid, lid, grp, tuple(gsz), tuple(lsz))
        for _ in interp.run_workitem(fn, out, wi):
            pass
    return [a for a in out if isinstance(a, list)]


ESCAPE_LOOP = """
__kernel void escape(__global int *out, int cap) {
    int i = get_global_id(0);
    float x = 0.0;
    float c = (float)(i % 13) / 6.0 - 1.0;
    int n = 0;
    while (x * x <= 4.0 && n < cap) {
        x = x * x + c;
        n = n + 1;
    }
    out[i] = n;
}
"""

BREAK_CONTINUE = """
__kernel void bc(__global int *out, int n) {
    int i = get_global_id(0);
    int s = 0;
    for (int j = 0; j < n; j++) {
        if ((i + j) % 3 == 0) { continue; }
        if (j > i % 7 + 4) { break; }
        s += i + j;
    }
    out[i] = s;
}
"""

NESTED_MASKS = """
__kernel void nested(__global int *out, int n) {
    int i = get_global_id(0);
    int acc = 0;
    for (int a = 0; a < i % 5 + 1; a++) {
        int b = 0;
        while (b < n) {
            if ((a + b + i) % 4 == 0) {
                b = b + 2;
                continue;
            }
            acc += a * b + 1;
            if (acc > 100 + i) { break; }
            b = b + 1;
        }
    }
    out[i] = acc;
}
"""

EARLY_RETURN = """
__kernel void early(__global int *out, int n) {
    int i = get_global_id(0);
    out[i] = -1;
    if (i % 4 == 0) { return; }
    int s = 0;
    for (int j = 0; j < n; j++) {
        s += j;
        if (s > i * 3) { out[i] = s; return; }
    }
    out[i] = s;
}
"""

INLINED_HELPERS = """
int weight(int term, int count) {
    if (count == 0) { return 0; }
    return term * count + 1;
}
int fold(int a, int b) { return a + weight(b, a % 3); }
__kernel void rank(__global int *tf, __global int *out, int vocab) {
    int d = get_global_id(0);
    int score = 0;
    for (int t = 0; t < vocab; t++) {
        score = fold(score, tf[d * vocab + t]);
    }
    out[d] = score;
}
"""

HELPER_IN_LOOP_COND = """
int step_of(int x) { return x % 3 + 1; }
__kernel void strider(__global int *out, int n) {
    int i = get_global_id(0);
    int j = 0;
    int s = 0;
    while (j < n) {
        s += j;
        j += step_of(i + j);
    }
    out[i] = s;
}
"""


class TestDivergentLoops:
    """Masked iterative evaluation agrees with the scalar tiers."""

    @pytest.mark.parametrize("n,lsz", [(64, [8]), (96, [4])])
    def test_escape_loop(self, n, lsz):
        out = [0] * n
        run_tiers(ESCAPE_LOOP, "escape", [60], [out], [n], lsz)

    def test_escape_loop_matches_interpreter(self):
        np = _np()
        n = 48
        compiled = kernelc.build(ESCAPE_LOOP)
        runner = compiled.kernel_runner("escape")
        vec_out = np.zeros(n, np.int64)
        runner.vec.run_group_warps([vec_out, 60], [n], [8], SIMD)
        (want,) = interp_buffers(ESCAPE_LOOP, "escape", [60],
                                 [[0] * n], [n], [8])
        assert vec_out.tolist() == want

    def test_break_and_continue(self):
        n = 64
        run_tiers(BREAK_CONTINUE, "bc", [24], [[0] * n], [n], [8])

    def test_nested_loops_nested_masks(self):
        n = 64
        run_tiers(NESTED_MASKS, "nested", [9], [[0] * n], [n], [8])

    def test_early_return(self):
        n = 64
        run_tiers(EARLY_RETURN, "early", [20], [[0] * n], [n], [8])

    def test_early_return_matches_interpreter(self):
        np = _np()
        n = 32
        compiled = kernelc.build(EARLY_RETURN)
        runner = compiled.kernel_runner("early")
        vec_out = np.zeros(n, np.int64)
        runner.vec.run_group_warps([vec_out, 20], [n], [4], SIMD)
        (want,) = interp_buffers(EARLY_RETURN, "early", [20],
                                 [[0] * n], [n], [4])
        assert vec_out.tolist() == want


class TestInlining:
    """Pure user-function calls inline instead of demoting the kernel."""

    def test_helper_chain_vectorised(self):
        docs, vocab = 48, 7
        tf = [(d * 31 + t * 7) % 5 for d in range(docs) for t in range(vocab)]
        run_tiers(INLINED_HELPERS, "rank", [vocab],
                  [tf, [0] * docs], [docs], [8])

    def test_helper_in_loop_condition(self):
        n = 64
        run_tiers(HELPER_IN_LOOP_COND, "strider", [30], [[0] * n], [n], [8])

    def test_impure_helper_demotes_with_reason(self):
        source = """
        int bump(__global int *a, int i) { a[i] = a[i] + 1; return a[i]; }
        __kernel void k(__global int *a) {
            int i = get_global_id(0);
            bump(a, i);
        }
        """
        runner = kernelc.build(source).kernel_runner("k")
        assert runner.vec is None
        assert runner.vec_reason == "user-call"


BARRIER_SCAN = """
__kernel void scan(__global int *data, __global int *sums) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local int tile[16];
    tile[lid] = data[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    int acc = 0;
    for (int j = 0; j <= lid; j++) { acc += tile[j]; }
    barrier(CLK_LOCAL_MEM_FENCE);
    data[gid] = acc;
    if (lid == 0) { sums[get_group_id(0)] = acc; }
}
"""


class TestBarrierPhases:
    """Cooperative whole-group execution of barrier kernels."""

    def test_reduction_app_kernel(self):
        np = _np()
        n, group = 256, 64
        values = [(i * 37) % 91 + 1 for i in range(n)]
        partial = [0] * (n // group)
        run_tiers(
            reduction_sources.KERNEL_SOURCE, "reduce_min",
            [n], [values, partial], [n], [group],
        )

    def test_local_scan_kernel(self):
        n, group = 128, 16
        data = [(i * 17) % 23 for i in range(n)]
        sums = [0] * (n // group)
        run_tiers(BARRIER_SCAN, "scan", [], [data, sums], [n], [group])

    def test_divergent_barrier_still_raises_on_scalar_engine(self):
        source = """
        __kernel void bad(__global int *out) {
            int i = get_global_id(0);
            if (i < 2) { barrier(CLK_LOCAL_MEM_FENCE); }
            out[i] = i;
        }
        """
        runner = kernelc.build(source).kernel_runner("bad")
        assert runner.vec is None  # never reaches the vec tier
        assert runner.vec_reason == "barrier"
        with pytest.raises(Exception, match="[Bb]arrier"):
            runner.run_range([[0] * 8], [8], [4])


class TestLedgerTotals:
    """Priced totals are independent of the executing tier."""

    SOURCES = [
        (ESCAPE_LOOP, "escape", [60], 1, "int"),
        (BREAK_CONTINUE, "bc", [24], 1, "int"),
        (INLINED_HELPERS, "rank", [7], 2, "int"),
    ]

    @pytest.mark.parametrize("case", range(len(SOURCES)))
    def test_legacy_and_vec_price_identically(self, case):
        source, name, scalars, nbuf, dtype = self.SOURCES[case]
        totals, contents = [], []
        for legacy in (True, False):
            dispatch.set_legacy_execution(legacy)
            try:
                device = find_device("GPU")
                ctx = Context([device])
                queue = CommandQueue(ctx, device)
                program = Program(ctx, source).build()
                kernel = program.create_kernel(name)
                n = 512
                if name == "rank":
                    docs, vocab = 64, scalars[0]
                    shapes = [docs * vocab, docs]
                    n = docs
                else:
                    shapes = [n]
                bufs = []
                for size in shapes[:nbuf]:
                    buf = Buffer(ctx, size, dtype)
                    queue.enqueue_write_buffer(
                        buf, [(i * 13) % 7 for i in range(size)]
                    )
                    bufs.append(buf)
                idx = 0
                for buf in bufs:
                    kernel.set_arg(idx, buf)
                    idx += 1
                for s in scalars:
                    kernel.set_arg(idx, s)
                    idx += 1
                queue.enqueue_nd_range_kernel(kernel, [n], [8])
                queue.finish()
                totals.append(ctx.ledger.kernel_ns)
                contents.append([list(b.data) for b in bufs])
            finally:
                dispatch.set_legacy_execution(False)
        assert totals[0] == totals[1]
        assert contents[0] == contents[1]


# -- PR 7: active-lane compaction and loop-body CSE -------------------------

import contextlib

from repro.apps.mandelbrot import sources as mandelbrot_sources
from repro.errors import CLInvalidValue


@contextlib.contextmanager
def compaction(density, every=1):
    """Force the compaction policy for one test, restoring defaults."""
    saved = dispatch.configure()
    dispatch.configure(compact_density=density, compact_check_every=every)
    try:
        yield
    finally:
        dispatch.configure(**saved)


DIVERGENT_CASES = [
    (ESCAPE_LOOP, "escape", [60], [[0] * 64], [64], [8]),
    (BREAK_CONTINUE, "bc", [24], [[0] * 64], [64], [8]),
    (NESTED_MASKS, "nested", [9], [[0] * 64], [64], [8]),
    (EARLY_RETURN, "early", [20], [[0] * 64], [64], [8]),
    (HELPER_IN_LOOP_COND, "strider", [21], [[0] * 64], [64], [8]),
]


class TestCompaction:
    """Lane compaction changes wall-clock only: outputs, warp maxima and
    priced totals are bit-identical at every density setting."""

    @pytest.mark.parametrize("case", range(len(DIVERGENT_CASES)))
    @pytest.mark.parametrize("density,every", [(1.0, 1), (1.0, 3), (0.0, 1)])
    def test_divergent_kernels_agree_at_any_density(self, case, density,
                                                    every):
        source, name, scalars, arrays, gsz, lsz = DIVERGENT_CASES[case]
        with compaction(density, every):
            run_tiers(source, name, scalars,
                      [list(a) for a in arrays], gsz, lsz)

    def test_compaction_counters_on_mandelbrot(self):
        """A deep escape loop compacts mid-flight and the dispatch layer
        reports it (`dispatch.compact` / `dispatch.compact.rounds`)."""
        with compaction(0.5, 8), tracing() as tr:
            out = _run_mandelbrot_dispatch(w=64, h=8, max_iter=400)
        counters = tr.counters()
        assert counters.get("dispatch.compact", 0) >= 1
        assert counters.get("dispatch.compact.rounds", 0) >= 1
        with compaction(0.0), tracing() as tr:
            out_off = _run_mandelbrot_dispatch(w=64, h=8, max_iter=400)
        assert "dispatch.compact" not in tr.counters()
        assert out == out_off

    def test_configure_validates(self):
        with pytest.raises(CLInvalidValue):
            dispatch.configure(compact_density=1.5)
        with pytest.raises(CLInvalidValue):
            dispatch.configure(compact_density=-0.1)
        with pytest.raises(CLInvalidValue):
            dispatch.configure(compact_check_every=0)

    def test_configure_applies_to_compiled_kernels(self):
        """The kcache may hand back an already-compiled kernel; the
        policy is read at run time so configure() still bites."""
        compiled = kernelc.build(ESCAPE_LOOP)
        runner = compiled.kernel_runner("escape")
        np = _np()
        with compaction(1.0, 1):
            before = npcodegen.thread_compact_stats()
            runner.vec.run_group_warps(
                [np.zeros(64, np.int64), 60], [64], [8], SIMD
            )
            events_on = npcodegen.thread_compact_stats()[0] - before[0]
        with compaction(0.0):
            before = npcodegen.thread_compact_stats()
            runner.vec.run_group_warps(
                [np.zeros(64, np.int64), 60], [64], [8], SIMD
            )
            events_off = npcodegen.thread_compact_stats()[0] - before[0]
        assert events_on >= 1
        assert events_off == 0


def _run_mandelbrot_dispatch(w, h, max_iter):
    """Run the real mandelbrot kernel through the full dispatch path
    (Context/Queue/Program) and return the iteration counts."""
    device = find_device("GPU")
    ctx = Context([device])
    queue = CommandQueue(ctx, device)
    program = Program(ctx, mandelbrot_sources.KERNEL_SOURCE).build()
    kernel = program.create_kernel("mandelbrot")
    buf = Buffer(ctx, w * h, "int")
    kernel.set_arg(0, buf)
    kernel.set_arg(1, w)
    kernel.set_arg(2, h)
    kernel.set_arg(3, max_iter)
    queue.enqueue_nd_range_kernel(kernel, [w, h], [8, 1])
    queue.finish()
    return list(buf.data)


class TestLoopBodyCSE:
    """A loop condition's subexpressions are reused inside its body."""

    def test_escape_cond_reused_in_body(self):
        """`x * x` appears in the ESCAPE_LOOP condition and body; the
        codegen computes it once per round."""
        compiled = kernelc.build(ESCAPE_LOOP)
        runner = compiled.kernel_runner("escape")
        assert runner.vec is not None
        assert runner.vec.cse_hits >= 1

    def test_mandelbrot_escape_test_hits_cache(self):
        """The paper's mandelbrot kernel computes `x*x` and `y*y` in the
        escape test and again in the body — both must hit the cache, and
        the dispatch layer must report it."""
        compiled = kernelc.build(mandelbrot_sources.KERNEL_SOURCE)
        runner = compiled.kernel_runner("mandelbrot")
        assert runner.vec is not None
        assert runner.vec.cse_hits >= 2
        with tracing() as tr:
            vec_out = _run_mandelbrot_dispatch(w=64, h=8, max_iter=60)
        assert tr.counters().get("dispatch.cse.hits", 0) > 0
        dispatch.set_legacy_execution(True)
        try:
            legacy_out = _run_mandelbrot_dispatch(w=64, h=8, max_iter=60)
        finally:
            dispatch.set_legacy_execution(False)
        assert vec_out == legacy_out
