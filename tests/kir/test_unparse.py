"""kir -> kernel-C unparser: round trips through the kernelc parser."""

import pytest

from repro import kernelc, kir


ROUND_TRIP_SOURCES = {
    "host_function": """
        float f(float x, int n) {
            float acc = 0.0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) {
                    acc += x;
                } else {
                    acc -= x / 2.0;
                }
            }
            return acc;
        }
    """,
    "kernel_with_guards": """
        __kernel void k(__global float *a, __global float *out, int n) {
            int i = get_global_id(0);
            if (i < n && a[i] > 0.0) {
                out[i] = sqrt(a[i]);
            }
        }
    """,
    "barrier_kernel": """
        __kernel void k(__global float *a, __global float *out) {
            __local float tile[8];
            int lid = get_local_id(0);
            tile[lid] = a[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            while (lid > 0) {
                lid = lid - 1;
            }
            out[get_global_id(0)] = tile[0];
        }
    """,
    "ternary_and_cast": """
        int f(int a, float b) {
            int r = a > 0 ? (int)b : -a;
            return r;
        }
    """,
}


@pytest.mark.parametrize("name", sorted(ROUND_TRIP_SOURCES))
def test_round_trip_is_stable(name):
    """unparse(parse(src)) reparses to an identical second unparse."""
    source = ROUND_TRIP_SOURCES[name]
    module1 = kernelc.compile_source(source)
    text1 = kir.unparse_module(module1)
    module2 = kernelc.compile_source(text1)
    text2 = kir.unparse_module(module2)
    assert text1 == text2


def test_round_trip_preserves_host_semantics():
    source = ROUND_TRIP_SOURCES["host_function"]
    compiled1 = kernelc.build(source)
    compiled2 = kernelc.build(kir.unparse_module(compiled1.module))
    for x, n in [(1.5, 7), (-2.0, 3), (0.25, 0)]:
        r1, _ = compiled1.call("f", [x, n])
        r2, _ = compiled2.call("f", [x, n])
        assert r1 == r2


def test_round_trip_preserves_kernel_semantics():
    source = ROUND_TRIP_SOURCES["kernel_with_guards"]
    compiled1 = kernelc.build(source)
    compiled2 = kernelc.build(kir.unparse_module(compiled1.module))
    a = [4.0, -1.0, 9.0, 16.0]
    out1 = [0.0] * 4
    out2 = [0.0] * 4
    compiled1.kernel_runner("k").run_range([a, out1, 4], [4], [2])
    compiled2.kernel_runner("k").run_range([a, out2, 4], [4], [2])
    assert out1 == out2 == [2.0, 0.0, 3.0, 4.0]


def test_unparse_emits_address_spaces():
    source = ROUND_TRIP_SOURCES["barrier_kernel"]
    text = kir.unparse_module(kernelc.compile_source(source))
    assert "__local float tile[8];" in text
    assert "__global float *a" in text
    assert "barrier(CLK_LOCAL_MEM_FENCE);" in text


def test_unparse_bool_literals():
    module = kernelc.compile_source(
        "bool f() { bool t = true; return !t; }"
    )
    text = kir.unparse_module(module)
    assert "true" in text
    assert "(!t)" in text


def test_unparse_rejects_nonconst_for_step():
    fn = kir.Function(
        "f",
        [kir.Param("n", kir.INT_T)],
        kir.VOID,
        [
            kir.For(
                "i", kir.Const(0), kir.Var("n"), kir.Var("n"), []
            )
        ],
    )
    from repro.errors import KirError

    with pytest.raises(KirError, match="constant"):
        kir.unparse_function(fn)
