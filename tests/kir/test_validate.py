"""Static validation: every class of malformed IR is rejected."""

import pytest

from repro import kir
from repro.errors import KirValidationError


def module_with(fn):
    m = kir.Module()
    m.add(fn)
    return m


def kernel(body, params=(), name="k"):
    return kir.Function(name, list(params), kir.VOID, body, is_kernel=True)


def func(body, params=(), ret=kir.INT_T, name="f"):
    return kir.Function(name, list(params), ret, body)


class TestScoping:
    def test_unknown_variable_rejected(self):
        fn = func([kir.Return(kir.Var("ghost"))])
        with pytest.raises(KirValidationError, match="undeclared"):
            kir.validate(module_with(fn))

    def test_redeclaration_rejected(self):
        fn = func(
            [
                kir.Decl("x", kir.INT_T, init=kir.Const(1)),
                kir.Decl("x", kir.INT_T, init=kir.Const(2)),
                kir.Return(kir.Var("x")),
            ]
        )
        with pytest.raises(KirValidationError, match="redeclaration"):
            kir.validate(module_with(fn))

    def test_block_scoping_allows_shadow_free_reuse(self):
        # Two sibling if-branches may declare the same name.
        fn = func(
            [
                kir.If(
                    kir.Const(True),
                    [kir.Decl("t", kir.INT_T, init=kir.Const(1))],
                    [kir.Decl("t", kir.INT_T, init=kir.Const(2))],
                ),
                kir.Return(kir.Const(0)),
            ]
        )
        kir.validate(module_with(fn))

    def test_loop_var_scoped_to_loop(self):
        fn = func(
            [
                kir.For("i", kir.Const(0), kir.Const(3), kir.Const(1), []),
                kir.Return(kir.Var("i")),
            ]
        )
        with pytest.raises(KirValidationError):
            kir.validate(module_with(fn))


class TestStructure:
    def test_barrier_outside_kernel_rejected(self):
        fn = func([kir.Barrier(), kir.Return(kir.Const(0))])
        with pytest.raises(KirValidationError, match="barrier"):
            kir.validate(module_with(fn))

    def test_break_outside_loop_rejected(self):
        fn = func([kir.Break(), kir.Return(kir.Const(0))])
        with pytest.raises(KirValidationError, match="break"):
            kir.validate(module_with(fn))

    def test_continue_outside_loop_rejected(self):
        fn = func([kir.Continue(), kir.Return(kir.Const(0))])
        with pytest.raises(KirValidationError, match="continue"):
            kir.validate(module_with(fn))

    def test_kernel_returning_value_rejected(self):
        fn = kir.Function(
            "k", [], kir.INT_T, [kir.Return(kir.Const(1))], is_kernel=True
        )
        with pytest.raises(KirValidationError, match="void"):
            kir.validate(module_with(fn))

    def test_local_array_outside_kernel_rejected(self):
        fn = func(
            [
                kir.Decl(
                    "t",
                    kir.ArrayType(kir.FLOAT_T, kir.LOCAL),
                    size=kir.Const(4),
                ),
                kir.Return(kir.Const(0)),
            ]
        )
        with pytest.raises(KirValidationError, match="local"):
            kir.validate(module_with(fn))

    def test_array_decl_without_size_rejected(self):
        fn = func(
            [
                kir.Decl("t", kir.ArrayType(kir.FLOAT_T, kir.PRIVATE)),
                kir.Return(kir.Const(0)),
            ]
        )
        with pytest.raises(KirValidationError, match="size"):
            kir.validate(module_with(fn))


class TestCallRules:
    def test_unknown_call_rejected(self):
        fn = func([kir.Return(kir.Call("nothing", []))])
        with pytest.raises(KirValidationError, match="unknown function"):
            kir.validate(module_with(fn))

    def test_arity_mismatch_rejected(self):
        m = kir.Module()
        m.add(func([kir.Return(kir.Const(1))], name="g"))
        m.add(func([kir.Return(kir.Call("g", [kir.Const(1)]))], name="f"))
        with pytest.raises(KirValidationError, match="expects 0"):
            kir.validate(m)

    def test_calling_kernel_rejected(self):
        m = kir.Module()
        m.add(kernel([], name="k"))
        m.add(func([kir.Return(kir.Call("k", []))], name="f"))
        with pytest.raises(KirValidationError, match="kernel"):
            kir.validate(m)

    def test_workitem_builtin_outside_kernel_rejected(self):
        fn = func([kir.Return(kir.Call("get_global_id", [kir.Const(0)]))])
        with pytest.raises(KirValidationError):
            kir.validate(module_with(fn))

    def test_helper_with_barrier_uncallable(self):
        # Barrier in a helper is rejected at the helper, so the module
        # is invalid regardless of the call.
        m = kir.Module()
        m.add(func([kir.Barrier(), kir.Return(kir.Const(0))], name="h"))
        m.add(kernel([kir.ExprStmt(kir.Call("h", []))], name="k"))
        with pytest.raises(KirValidationError):
            kir.validate(m)


class TestStores:
    def test_store_into_scalar_rejected(self):
        fn = func(
            [
                kir.Decl("x", kir.INT_T, init=kir.Const(0)),
                kir.Store(kir.Var("x"), kir.Const(0), kir.Const(1)),
                kir.Return(kir.Const(0)),
            ]
        )
        with pytest.raises(KirValidationError, match="non-array"):
            kir.validate(module_with(fn))

    def test_store_into_constant_memory_rejected(self):
        p = kir.Param("c", kir.ArrayType(kir.FLOAT_T, kir.CONSTANT))
        fn = kernel(
            [kir.Store(kir.Var("c"), kir.Const(0), kir.Const(1.0))],
            params=[p],
        )
        with pytest.raises(KirValidationError, match="constant"):
            kir.validate(module_with(fn))

    def test_whole_array_assignment_rejected(self):
        p = kir.Param("a", kir.ArrayType(kir.FLOAT_T))
        fn = func(
            [kir.Assign("a", kir.Const(1.0)), kir.Return(kir.Const(0))],
            params=[p],
        )
        with pytest.raises(KirValidationError, match="whole array"):
            kir.validate(module_with(fn))


class TestAnalysisHelpers:
    def test_written_and_read_arrays(self):
        a = kir.Param("a", kir.ArrayType(kir.FLOAT_T))
        b = kir.Param("b", kir.ArrayType(kir.FLOAT_T))
        base_a = kir.Var("a")
        base_b = kir.Var("b")
        fn = kernel(
            [
                kir.Store(
                    base_a,
                    kir.Const(0),
                    kir.Index(base_b, kir.Const(0)),
                )
            ],
            params=[a, b],
        )
        assert kir.written_arrays(fn) == {"a"}
        assert kir.read_arrays(fn) == {"b"}

    def test_has_barrier(self):
        assert kir.has_barrier(kernel([kir.Barrier()]))
        assert not kir.has_barrier(kernel([]))
        nested = kernel(
            [kir.If(kir.Const(True), [kir.Barrier()])],
        )
        assert kir.has_barrier(nested)
