"""Equivalence tests for the execution tiers of range-mode kernels.

Every kernel can be priced three ways:

* **interpreter reduction** (reference): ``run_range`` yields per-item
  op counts which ``_group_warp_costs`` folds into per-group warp
  maxima;
* **scalar warp-fold**: the generated ``__warps_`` runner folds on the
  fly;
* **vectorised batch** (:mod:`repro.kir.npcodegen`): numpy evaluates
  whole NDRanges at once, when the kernel is eligible.

The cost model consumes only the per-group warp maxima, so the tiers
must agree on those *exactly* — and on every buffer mutation — for the
paper figures to be independent of which tier ran.
"""

from __future__ import annotations

import random

import pytest

from repro import kernelc
from repro.apps.docrank import sources as docrank_sources
from repro.apps.lud import sources as lud_sources
from repro.apps.mandelbrot import sources as mandelbrot_sources
from repro.apps.matmul import sources as matmul_sources
from repro.errors import KirRuntimeError
from repro.kir import npcodegen
from repro.opencl.costmodel import _group_warp_costs

pytestmark = pytest.mark.skipif(
    not npcodegen.AVAILABLE, reason="numpy not installed"
)

SIMD = 8


def _np():
    import numpy as np

    return np


def run_all_tiers(source, kernel, scalars, arrays, gsz, lsz, simd=SIMD):
    """Run one kernel through all tiers; assert identical warp maxima
    and identical buffer contents; returns the reference warp maxima."""
    np = _np()
    compiled = kernelc.build(source)
    runner = compiled.kernel_runner(kernel)
    fn = compiled.module.kernel(kernel)

    def make_args(as_numpy):
        out = []
        arrays_iter = iter(arrays)
        scalars_iter = iter(scalars)
        for p in fn.params:
            if p.type.is_array:
                data = next(arrays_iter)
                if as_numpy:
                    dtype = {"int": np.int64, "float": np.float64,
                             "bool": np.bool_}[p.type.element.kind]
                    out.append(np.array(data, dtype=dtype))
                else:
                    out.append(list(data))
            else:
                out.append(next(scalars_iter))
        return out

    ref_args = make_args(False)
    item_ops = runner.run_range(ref_args, gsz, lsz)
    ref_warps = _group_warp_costs(item_ops, gsz, lsz, simd)

    fold_args = make_args(False)
    fold_warps = runner.run_group_warps(fold_args, gsz, lsz, simd)
    assert fold_warps == ref_warps
    assert fold_args == ref_args

    if runner.vec is not None:
        vec_args = make_args(True)
        vec_warps = runner.vec.run_group_warps(vec_args, gsz, lsz, simd)
        assert vec_warps == ref_warps
        for got, want in zip(vec_args, ref_args):
            if isinstance(want, list):
                assert got.tolist() == want
    return ref_warps


def _rand_floats(rng, n, lo=-4.0, hi=4.0):
    return [round(rng.uniform(lo, hi), 3) for _ in range(n)]


class TestAppKernels:
    """All five paper applications' kernels agree across tiers."""

    @pytest.mark.parametrize("n,lsz", [(8, [4, 4]), (16, [8, 4])])
    def test_matmul(self, n, lsz):
        rng = random.Random(7)
        a = _rand_floats(rng, n * n)
        b = _rand_floats(rng, n * n)
        c = [0.0] * (n * n)
        run_all_tiers(
            matmul_sources.KERNEL_SOURCE, "matmul",
            [n], [a, b, c], [n, n], lsz,
        )

    def test_matmul_is_vectorised(self):
        runner = kernelc.build(matmul_sources.KERNEL_SOURCE).kernel_runner(
            "matmul"
        )
        assert runner.vec is not None

    @pytest.mark.parametrize("docs,vocab", [(16, 8), (32, 5)])
    def test_docrank(self, docs, vocab):
        rng = random.Random(11)
        tf = [rng.randrange(0, 6) for _ in range(docs * vocab)]
        w = _rand_floats(rng, vocab)
        wanted = [0] * docs
        run_all_tiers(
            docrank_sources.KERNEL_SOURCE, "rank",
            [vocab, 0.5], [tf, w, wanted], [docs], [4],
        )

    @pytest.mark.parametrize("kernel,k", [
        ("lud_pivot", 0), ("lud_scale", 2), ("lud_update", 1),
    ])
    def test_lud(self, kernel, k):
        rng = random.Random(13)
        n = 16
        m = _rand_floats(rng, n * n, 1.0, 5.0)
        piv = [m[k * n + k]]
        if kernel == "lud_update":
            scalars, arrays = [k, n], [m]
            gsz, lsz = [n, n], [4, 4]
        elif kernel == "lud_pivot":
            scalars, arrays = [k, n], [m, piv]
            gsz, lsz = [1], [1]
        else:
            scalars, arrays = [k, n], [m, piv]
            gsz, lsz = [n], [4]
        run_all_tiers(lud_sources.KERNEL_SOURCE, kernel, scalars, arrays,
                      gsz, lsz)

    def test_mandelbrot_vectorised(self):
        """The escape-time ``while`` now runs under iterative masked
        evaluation, so the vec tier exists and matches the reference."""
        w = h = 12
        out = [0] * (w * h)
        runner = kernelc.build(
            mandelbrot_sources.KERNEL_SOURCE
        ).kernel_runner("mandelbrot")
        assert runner.vec is not None
        assert runner.vec.has_masked_loops
        run_all_tiers(
            mandelbrot_sources.KERNEL_SOURCE, "mandelbrot",
            [w, h, 32], [out], [w, h], [4, 4],
        )


DIV_GUARDED = """
__kernel void div_guarded(__global int *out, __global int *d, int n) {
    int i = get_global_id(0);
    if (d[i] != 0) {
        out[i] = 100 / d[i];
    } else {
        out[i] = -1;
    }
}
"""

DIV_UNGUARDED = """
__kernel void div_unguarded(__global int *out, __global int *d) {
    int i = get_global_id(0);
    out[i] = 100 / d[i];
}
"""


class TestMaskedDivision:
    def test_inactive_lane_division_by_zero_is_safe(self):
        """Lanes masked off by the guard must not fault even though the
        vector engine evaluates the division speculatively."""
        n = 16
        d = [(i % 4) - 1 for i in range(n)]  # zeros on every 4th lane
        out = [0] * n
        run_all_tiers(DIV_GUARDED, "div_guarded", [n], [out, d], [n], [4])

    def test_active_lane_division_by_zero_raises_in_both_tiers(self):
        np = _np()
        n = 8
        compiled = kernelc.build(DIV_UNGUARDED)
        runner = compiled.kernel_runner("div_unguarded")
        assert runner.vec is not None
        d = [1, 2, 0, 4, 5, 6, 7, 8]
        with pytest.raises(KirRuntimeError):
            runner.run_range([[0] * n, list(d)], [n], [4])
        with pytest.raises(KirRuntimeError):
            runner.vec.run_group_warps(
                [np.zeros(n, np.int64), np.array(d, np.int64)],
                [n], [4], SIMD,
            )


TWO_D_LOCAL = """
__kernel void weight(__global int *out, int w) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int acc = 0;
    for (int k = 0; k < x + y; k++) {
        acc += k;
    }
    out[y * w + x] = acc;
}
"""


class TestWarpFolding:
    @pytest.mark.parametrize("gsz,lsz", [
        ([16, 8], [4, 4]),
        ([8, 8], [8, 2]),
        ([12, 6, 2], [2, 3, 1]),
    ])
    def test_fold_matches_reference_partition(self, gsz, lsz):
        """fold_group_warps must reproduce _group_warp_costs' grouping
        for multi-dimensional local sizes, where linear item order is
        *not* group-major."""
        np = _np()
        rng = random.Random(17)
        nitems = 1
        for g in gsz:
            nitems *= g
        ops = np.array([rng.randrange(1, 100) for _ in range(nitems)],
                       dtype=np.int64)
        got = npcodegen.fold_group_warps(ops, gsz, lsz, SIMD)
        want = _group_warp_costs(ops.tolist(), gsz, lsz, SIMD)
        assert got == want

    def test_two_dimensional_kernel_end_to_end(self):
        w, h = 16, 8
        out = [0] * (w * h)
        run_all_tiers(TWO_D_LOCAL, "weight", [w], [out], [w, h], [4, 4])


class TestEligibility:
    def test_barrier_kernel_group_mode_and_vectorised(self):
        source = """
        __kernel void b(__global int *out) {
            int i = get_global_id(0);
            barrier(CLK_GLOBAL_MEM_FENCE);
            out[i] = i;
        }
        """
        runner = kernelc.build(source).kernel_runner("b")
        assert runner.group_mode
        assert runner.vec is not None
        assert runner.vec_reason is None

    def test_while_loop_vectorised(self):
        runner = kernelc.build(
            mandelbrot_sources.KERNEL_SOURCE
        ).kernel_runner("mandelbrot")
        assert runner.vec is not None
        assert runner.vec_reason is None

    def test_divergent_barrier_rejected_with_reason(self):
        source = """
        __kernel void b(__global int *out) {
            int i = get_global_id(0);
            if (i > 2) {
                barrier(CLK_GLOBAL_MEM_FENCE);
            }
            out[i] = i;
        }
        """
        runner = kernelc.build(source).kernel_runner("b")
        assert runner.vec is None
        assert runner.vec_reason == "barrier"

    def test_private_array_kernel_vectorised(self):
        runner = kernelc.build(docrank_sources.KERNEL_SOURCE).kernel_runner(
            "rank"
        )
        assert runner.vec is not None
