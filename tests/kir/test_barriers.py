"""Group-mode kernel execution: barriers, local memory, divergence."""

import pytest

from repro import kernelc
from repro.errors import KirRuntimeError


def run(source, name, args, gsz, lsz):
    return kernelc.build(source).kernel_runner(name).run_range(args, gsz, lsz)


class TestLockstep:
    def test_barrier_orders_cross_item_reads(self):
        # Every item reads its *neighbour's* value written before the
        # barrier: without lock-step scheduling this is garbage.
        src = """
        __kernel void rotate(__global int *data, __global int *out) {
            __local int tile[4];
            int lid = get_local_id(0);
            tile[lid] = data[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tile[(lid + 1) % 4];
        }
        """
        data = [10, 20, 30, 40, 50, 60, 70, 80]
        out = [0] * 8
        run(src, "rotate", [data, out], [8], [4])
        assert out == [20, 30, 40, 10, 60, 70, 80, 50]

    def test_multiple_barriers(self):
        src = """
        __kernel void pingpong(__global int *out) {
            __local int a[2];
            __local int b[2];
            int lid = get_local_id(0);
            a[lid] = lid + 1;
            barrier(CLK_LOCAL_MEM_FENCE);
            b[lid] = a[1 - lid] * 10;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = b[1 - lid];
        }
        """
        out = [0, 0]
        run(src, "pingpong", [out], [2], [2])
        assert out == [10, 20]

    def test_groups_do_not_share_local_memory(self):
        src = """
        __kernel void stamp(__global int *out) {
            __local int tile[2];
            int lid = get_local_id(0);
            if (lid == 0) { tile[0] = get_group_id(0) + 1; }
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tile[0];
        }
        """
        out = [0] * 6
        run(src, "stamp", [out], [6], [2])
        assert out == [1, 1, 2, 2, 3, 3]

    def test_barrier_in_uniform_loop(self):
        src = """
        __kernel void waves(__global int *out) {
            __local int acc[4];
            int lid = get_local_id(0);
            acc[lid] = 1;
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int round = 0; round < 3; round++) {
                int left = acc[(lid + 3) % 4];
                barrier(CLK_LOCAL_MEM_FENCE);
                acc[lid] = acc[lid] + left;
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            out[get_global_id(0)] = acc[lid];
        }
        """
        out = [0] * 4
        run(src, "waves", [out], [4], [4])
        assert out == [8, 8, 8, 8]

    def test_divergent_barrier_detected(self):
        # Half the group skips the barrier: undefined behaviour in
        # OpenCL; the engine reports it loudly.
        src = """
        __kernel void bad(__global int *out) {
            __local int tile[4];
            int lid = get_local_id(0);
            if (lid < 2) {
                tile[lid] = 1;
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            out[get_global_id(0)] = lid;
        }
        """
        with pytest.raises(KirRuntimeError, match="divergence"):
            run(src, "bad", [[0] * 4], [4], [4])

    def test_local_size_from_builtin(self):
        src = """
        __kernel void widths(__global int *out) {
            __local int tile[8];
            int lid = get_local_id(0);
            tile[lid] = get_local_size(0);
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tile[(lid + 1) % get_local_size(0)];
        }
        """
        out = [0] * 8
        run(src, "widths", [out], [8], [8])
        assert out == [8] * 8

    def test_local_array_without_barrier_still_group_mode(self):
        # Local memory alone (no barrier) forces group scheduling.
        src = """
        __kernel void k(__global int *out) {
            __local int tile[2];
            int lid = get_local_id(0);
            tile[lid] = lid;
            out[get_global_id(0)] = tile[lid];
        }
        """
        compiled = kernelc.build(src)
        runner = compiled.kernel_runner("k")
        assert runner.group_mode
        out = [0] * 4
        runner.run_range([out], [4], [2])
        assert out == [0, 1, 0, 1]

    def test_item_ops_returned_per_item(self):
        src = """
        __kernel void k(__global int *out) {
            __local int tile[2];
            int lid = get_local_id(0);
            tile[lid] = lid;
            barrier(CLK_LOCAL_MEM_FENCE);
            int extra = 0;
            for (int i = 0; i < lid * 4; i++) { extra += i; }
            out[get_global_id(0)] = extra;
        }
        """
        ops = run(src, "k", [[0] * 4], [4], [2])
        assert len(ops) == 4
        # odd lids do extra loop work
        assert ops[1] > ops[0]
        assert ops[3] > ops[2]
