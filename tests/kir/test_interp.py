"""Interpreter semantics: C-style arithmetic, control flow, errors."""

import pytest

from repro import kir
from repro.errors import KirRuntimeError
from repro.kir.interp import c_idiv, c_imod


class TestCArithmetic:
    @pytest.mark.parametrize(
        "a, b, q",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (0, 5, 0)],
    )
    def test_idiv_truncates_toward_zero(self, a, b, q):
        assert c_idiv(a, b) == q

    @pytest.mark.parametrize(
        "a, b, r",
        [(7, 2, 1), (-7, 2, -1), (7, -2, 1), (-7, -2, -1)],
    )
    def test_imod_sign_follows_dividend(self, a, b, r):
        assert c_imod(a, b) == r

    def test_idiv_by_zero_raises(self):
        with pytest.raises(KirRuntimeError):
            c_idiv(1, 0)


def _fn(name, params, ret, body, is_kernel=False):
    return kir.Function(name, params, ret, body, is_kernel=is_kernel)


def _module(*fns):
    m = kir.Module()
    for f in fns:
        m.add(f)
    return m


class TestHostCalls:
    def test_simple_return(self):
        fn = _fn(
            "f",
            [kir.Param("x", kir.INT_T)],
            kir.INT_T,
            [kir.Return(kir.BinOp("+", kir.Var("x"), kir.Const(1)))],
        )
        interp = kir.Interpreter(_module(fn))
        assert interp.call("f", [41]) == 42

    def test_void_function_returns_none(self):
        fn = _fn("f", [], kir.VOID, [])
        assert kir.Interpreter(_module(fn)).call("f", []) is None

    def test_array_mutation_is_visible(self):
        fn = _fn(
            "fill",
            [kir.Param("a", kir.ArrayType(kir.INT_T)), kir.Param("n", kir.INT_T)],
            kir.VOID,
            [
                kir.For(
                    "i",
                    kir.Const(0),
                    kir.Var("n"),
                    kir.Const(1),
                    [kir.Store(kir.Var("a"), kir.Var("i"), kir.Var("i"))],
                )
            ],
        )
        interp = kir.Interpreter(_module(fn))
        arr = [0] * 4
        interp.call("fill", [arr, 4])
        assert arr == [0, 1, 2, 3]

    def test_nested_call(self):
        inner = _fn(
            "sq",
            [kir.Param("x", kir.INT_T)],
            kir.INT_T,
            [kir.Return(kir.BinOp("*", kir.Var("x"), kir.Var("x")))],
        )
        outer = _fn(
            "f",
            [kir.Param("x", kir.INT_T)],
            kir.INT_T,
            [kir.Return(kir.Call("sq", [kir.Call("sq", [kir.Var("x")])]))],
        )
        assert kir.Interpreter(_module(inner, outer)).call("f", [2]) == 16

    def test_while_break_continue(self):
        # sum of odd numbers below 10, stopping at 7
        body = [
            kir.Assign("i", kir.BinOp("+", kir.Var("i"), kir.Const(1))),
            kir.If(
                kir.BinOp("==", kir.Var("i"), kir.Const(7)),
                [kir.Break()],
            ),
            kir.If(
                kir.BinOp(
                    "==",
                    kir.BinOp("%", kir.Var("i"), kir.Const(2)),
                    kir.Const(0),
                ),
                [kir.Continue()],
            ),
            kir.Assign("s", kir.BinOp("+", kir.Var("s"), kir.Var("i"))),
        ]
        fn = _fn(
            "f",
            [],
            kir.INT_T,
            [
                kir.Decl("i", kir.INT_T, init=kir.Const(0)),
                kir.Decl("s", kir.INT_T, init=kir.Const(0)),
                kir.While(kir.Const(True), body),
                kir.Return(kir.Var("s")),
            ],
        )
        assert kir.Interpreter(_module(fn)).call("f", []) == 1 + 3 + 5

    def test_out_of_bounds_load_raises(self):
        fn = _fn(
            "f",
            [kir.Param("a", kir.ArrayType(kir.INT_T))],
            kir.INT_T,
            [kir.Return(kir.Index(kir.Var("a"), kir.Const(10)))],
        )
        with pytest.raises(KirRuntimeError, match="out of range"):
            kir.Interpreter(_module(fn)).call("f", [[1, 2]])

    def test_negative_index_raises(self):
        fn = _fn(
            "f",
            [kir.Param("a", kir.ArrayType(kir.INT_T))],
            kir.INT_T,
            [kir.Return(kir.Index(kir.Var("a"), kir.Const(-1)))],
        )
        with pytest.raises(KirRuntimeError):
            kir.Interpreter(_module(fn)).call("f", [[1, 2]])

    def test_ops_are_counted(self):
        fn = _fn(
            "f",
            [],
            kir.INT_T,
            [kir.Return(kir.BinOp("+", kir.Const(1), kir.Const(2)))],
        )
        interp = kir.Interpreter(_module(fn))
        interp.call("f", [])
        assert interp.ops > 0


class TestWorkItems:
    def test_global_id_drives_output(self):
        fn = _fn(
            "k",
            [kir.Param("out", kir.ArrayType(kir.INT_T))],
            kir.VOID,
            [
                kir.Store(
                    kir.Var("out"),
                    kir.Call("get_global_id", [kir.Const(0)]),
                    kir.Call("get_global_id", [kir.Const(0)]),
                )
            ],
            is_kernel=True,
        )
        interp = kir.Interpreter(_module(fn))
        out = [0] * 4
        for i in range(4):
            wi = kir.WorkItem((i,), (i % 2,), (i // 2,), (4,), (2,))
            for _ in interp.run_workitem(fn, [out], wi):
                pass
        assert out == [0, 1, 2, 3]

    def test_workitem_builtin_outside_kernel_raises(self):
        fn = _fn(
            "f",
            [],
            kir.INT_T,
            [kir.Return(kir.Call("get_global_id", [kir.Const(0)]))],
        )
        module = kir.Module()
        module.add(fn)
        with pytest.raises(KirRuntimeError):
            kir.Interpreter(module).call("f", [])
