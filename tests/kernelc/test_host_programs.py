"""Whole-program behavioural tests for the kernel-C substrate: classic
algorithms executed through the host path and checked against Python."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernelc


def run(source, fn, args):
    value, ops = kernelc.run_host(source, fn, list(args))
    assert ops >= 0
    return value


SORT = """
void insertion_sort(__global int *a, int n) {
    for (int i = 1; i < n; i++) {
        int key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = key;
    }
}
"""

GCD = """
int gcd(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}
"""

BSEARCH = """
int bsearch(__global int *a, int n, int key) {
    int lo = 0;
    int hi = n - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (a[mid] == key) { return mid; }
        if (a[mid] < key) { lo = mid + 1; }
        else { hi = mid - 1; }
    }
    return -1;
}
"""

SIEVE = """
int count_primes(int n) {
    bool composite[n + 1];
    int count = 0;
    for (int i = 2; i <= n; i++) {
        if (!composite[i]) {
            count++;
            for (int j = i + i; j <= n; j += i) {
                composite[j] = true;
            }
        }
    }
    return count;
}
"""

TRANSPOSE = """
void transpose(__global float *src, __global float *dst, int rows, int cols) {
    for (int r = 0; r < rows; r++) {
        for (int c = 0; c < cols; c++) {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}
"""

HORNER = """
float horner(__global float *coeffs, int n, float x) {
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        acc = acc * x + coeffs[i];
    }
    return acc;
}
"""


class TestClassicAlgorithms:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=25))
    def test_insertion_sort(self, values):
        a = list(values)
        run(SORT, "insertion_sort", [a, len(a)])
        assert a == sorted(values)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 10_000), st.integers(1, 10_000))
    def test_gcd(self, a, b):
        import math

        assert run(GCD, "gcd", [a, b]) == math.gcd(a, b)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=20),
        st.integers(0, 50),
    )
    def test_binary_search(self, values, key):
        a = sorted(set(values))
        index = run(BSEARCH, "bsearch", [a, len(a), key])
        if key in a:
            assert a[index] == key
        else:
            assert index == -1

    @pytest.mark.parametrize(
        "n, expected", [(1, 0), (2, 1), (10, 4), (30, 10), (100, 25)]
    )
    def test_sieve(self, n, expected):
        assert run(SIEVE, "count_primes", [n]) == expected

    def test_transpose(self):
        rows, cols = 3, 4
        src = [float(i) for i in range(rows * cols)]
        dst = [0.0] * (rows * cols)
        run(TRANSPOSE, "transpose", [src, dst, rows, cols])
        for r in range(rows):
            for c in range(cols):
                assert dst[c * rows + r] == src[r * cols + c]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-10, max_value=10, allow_nan=False, width=32
            ),
            min_size=1,
            max_size=6,
        ),
        st.floats(min_value=-3, max_value=3, allow_nan=False, width=32),
    )
    def test_horner(self, coeffs, x):
        expected = 0.0
        for c in coeffs:
            expected = expected * x + c
        assert run(HORNER, "horner", [coeffs, len(coeffs), x]) == pytest.approx(
            expected, nan_ok=False
        )


class TestRecursion:
    def test_recursive_functions(self):
        src = """
        int ack(int m, int n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        """
        assert run(src, "ack", [2, 3]) == 9

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        """
        # forward declarations are not supported; use a single function
        src = """
        int parity(int n) {
            if (n == 0) { return 0; }
            return 1 - parity(n - 1);
        }
        """
        assert run(src, "parity", [7]) == 1
        assert run(src, "parity", [10]) == 0
