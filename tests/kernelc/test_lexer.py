"""Kernel-C tokeniser behaviour."""

import pytest

from repro.errors import LexError
from repro.kernelc.lexer import Lexer, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = kinds("int foo; float bar2; __kernel __global")
        assert ("kw", "int") in toks
        assert ("id", "foo") in toks
        assert ("id", "bar2") in toks
        assert ("kw", "__kernel") in toks
        assert ("kw", "__global") in toks

    def test_numbers(self):
        toks = kinds("1 42 3.5 2.0e3 1e-2 7f 0.5f")
        assert ("int", "1") in toks
        assert ("int", "42") in toks
        assert ("float", "3.5") in toks
        assert ("float", "2.0e3") in toks
        assert ("float", "1e-2") in toks
        assert ("float", "7") in toks  # 7f: float with suffix stripped
        assert ("float", "0.5") in toks

    def test_greedy_operators(self):
        toks = [t for k, t in kinds("a<<=b >= == != && || ++ --")]
        assert "<<=" in toks
        assert ">=" in toks
        assert "==" in toks
        assert "&&" in toks
        assert "++" in toks

    def test_line_and_column_positions(self):
        toks = tokenize("int a;\n  float b;")
        b_tok = [t for t in toks if t.text == "b"][0]
        assert b_tok.line == 2
        assert b_tok.column == 9

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("int a = `1`;")


class TestComments:
    def test_line_comments_skipped(self):
        assert kinds("int a; // trailing\n// whole line\nint b;") == [
            ("kw", "int"), ("id", "a"), ("op", ";"),
            ("kw", "int"), ("id", "b"), ("op", ";"),
        ]

    def test_block_comments_skipped(self):
        toks = kinds("int /* inline */ a; /* multi\nline */ int b;")
        assert ("id", "a") in toks
        assert ("id", "b") in toks

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("int a; /* oops")

    def test_line_numbers_after_block_comment(self):
        toks = tokenize("/* one\ntwo\nthree */ int a;")
        assert toks[0].line == 3


class TestDirectives:
    def test_pragmas_collected_not_tokenised(self):
        lexer = Lexer(
            "#pragma acc parallel loop\nfor_marker here;\n#pragma acc data"
        )
        assert len(lexer.directives) == 2
        assert lexer.directives[0].text == "#pragma acc parallel loop"
        assert lexer.directives[0].line == 1
        assert lexer.directives[1].line == 3
        texts = [t.text for t in lexer.tokens]
        assert "#pragma" not in " ".join(texts)

    def test_pragma_between_statements(self):
        lexer = Lexer("int a;\n#pragma omp parallel for\nint b;")
        assert lexer.directives[0].line == 2
        assert [t.text for t in lexer.tokens[:3]] == ["int", "a", ";"]
