"""Kernel-C parsing and type checking."""

import pytest

from repro import kernelc, kir
from repro.errors import ParseError, TypeCheckError


def run(source, fn, args):
    value, _ = kernelc.run_host(source, fn, list(args))
    return value


class TestParsing:
    def test_compound_assignment_forms(self):
        src = """
        int f(int x) {
            x += 2; x -= 1; x *= 3; x /= 2; x %= 10;
            x++; x--;
            return x;
        }
        """
        x = 5
        x += 2; x -= 1; x *= 3; x //= 2; x %= 10; x += 1; x -= 1
        assert run(src, "f", [5]) == x

    def test_array_compound_assignment(self):
        src = """
        void f(__global int *a) { a[0] += 5; a[1] *= 2; a[2]++; }
        """
        a = [1, 2, 3]
        kernelc.run_host(src, "f", [a])
        assert a == [6, 4, 4]

    def test_dangling_else_binds_to_nearest_if(self):
        src = """
        int f(int x) {
            if (x > 0)
                if (x > 10) return 2;
                else return 1;
            return 0;
        }
        """
        assert run(src, "f", [20]) == 2
        assert run(src, "f", [5]) == 1
        assert run(src, "f", [-1]) == 0

    def test_noncanonical_for_lowered_to_while(self):
        src = """
        int f(int n) {
            int count = 0;
            for (int i = n; i > 1; i = i / 2) { count++; }
            return count;
        }
        """
        assert run(src, "f", [16]) == 4

    def test_for_le_condition_inclusive(self):
        src = "int f(int n) { int s = 0; for (int i = 0; i <= n; i++) { s += i; } return s; }"
        assert run(src, "f", [4]) == 10

    def test_empty_for_clauses(self):
        src = """
        int f(int n) {
            int i = 0;
            int s = 0;
            for (; i < n;) { s += i; i++; }
            return s;
        }
        """
        assert run(src, "f", [4]) == 6

    def test_operator_precedence(self):
        src = "int f() { return 2 + 3 * 4 - 10 / 5; }"
        assert run(src, "f", []) == 12

    def test_bitwise_and_shift(self):
        src = "int f(int x) { return (x << 2 | 1) & 255 ^ 3; }"
        assert run(src, "f", [7]) == ((7 << 2 | 1) & 255) ^ 3

    def test_unary_operators(self):
        src = "int f(int x) { return -x + ~x; }"
        assert run(src, "f", [5]) == -5 + ~5

    def test_parse_error_has_position(self):
        with pytest.raises(ParseError) as info:
            kernelc.compile_source("int f( { }")
        assert "2:" in str(info.value) or "1:" in str(info.value)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            kernelc.compile_source("int f() { int a = 1 return a; }")


class TestTypeChecking:
    def test_int_widens_to_float(self):
        src = "float f(int x) { float y = x; return y / 2; }"
        assert run(src, "f", [5]) == 2.5

    def test_int_division_stays_integral(self):
        src = "int f() { return 7 / 2; }"
        assert run(src, "f", []) == 3

    def test_mixed_division_is_float(self):
        src = "float f() { return 7 / 2.0; }"
        assert run(src, "f", []) == 3.5

    def test_explicit_cast_truncates(self):
        src = "int f(float x) { return (int)x; }"
        assert run(src, "f", [3.9]) == 3
        assert run(src, "f", [-3.9]) == -3

    def test_bool_arithmetic_rejected(self):
        with pytest.raises(TypeCheckError):
            kernelc.compile_source("int f(bool b) { return b + 1; }")

    def test_assigning_scalar_to_bool_rejected(self):
        with pytest.raises(TypeCheckError, match="bool"):
            kernelc.compile_source("void f() { bool b = true; b = 1; }")

    def test_mod_on_floats_allowed_as_fmod(self):
        src = "float f(float x) { return x % 2.0; }"
        assert run(src, "f", [5.5]) == 1.5

    def test_unknown_function_rejected(self):
        with pytest.raises(TypeCheckError, match="unknown function"):
            kernelc.compile_source("int f() { return g(); }")

    def test_argument_count_checked(self):
        with pytest.raises(TypeCheckError, match="expects"):
            kernelc.compile_source(
                "int g(int a) { return a; } int f() { return g(); }"
            )

    def test_array_argument_element_type_checked(self):
        with pytest.raises(TypeCheckError):
            kernelc.compile_source(
                "int g(__global float *a) { return 0; }"
                "int f(__global int *b) { return g(b); }"
            )

    def test_return_type_coerced(self):
        src = "float f() { return 3; }"
        value = run(src, "f", [])
        assert value == 3.0 and isinstance(value, float)

    def test_void_function_returning_value_rejected(self):
        with pytest.raises(TypeCheckError, match="void"):
            kernelc.compile_source("void f() { return 1; }")

    def test_ternary_branch_types_unified(self):
        src = "float f(int x) { return x > 0 ? 1 : 0.5; }"
        assert run(src, "f", [1]) == 1.0
        assert run(src, "f", [-1]) == 0.5

    def test_math_builtin_signature_checked(self):
        with pytest.raises(TypeCheckError, match="sqrt"):
            kernelc.compile_source("float f() { return sqrt(1.0, 2.0); }")


class TestKernels:
    def test_kernel_must_return_void(self):
        with pytest.raises(ParseError, match="void"):
            kernelc.compile_source("__kernel int k() { return 1; }")

    def test_workitem_builtin_in_host_rejected(self):
        with pytest.raises(TypeCheckError):
            kernelc.compile_source("int f() { return get_global_id(0); }")

    def test_2d_kernel_identity(self):
        src = """
        __kernel void k(__global int *out, int w) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            out[y * w + x] = y * w + x;
        }
        """
        compiled = kernelc.build(src)
        out = [0] * 12
        compiled.kernel_runner("k").run_range([out, 4], [4, 3], [2, 1])
        assert out == list(range(12))

    def test_group_builtins(self):
        src = """
        __kernel void k(__global int *groups, __global int *locals) {
            int g = get_global_id(0);
            groups[g] = get_group_id(0) * 100 + get_num_groups(0);
            locals[g] = get_local_id(0) * 100 + get_local_size(0);
        }
        """
        compiled = kernelc.build(src)
        groups = [0] * 6
        locals_ = [0] * 6
        compiled.kernel_runner("k").run_range([groups, locals_], [6], [3])
        assert groups == [2, 2, 2, 102, 102, 102]
        assert locals_ == [3, 103, 203, 3, 103, 203]

    def test_private_array_is_per_item(self):
        src = """
        __kernel void k(__global int *out, int n) {
            int scratch[4];
            int g = get_global_id(0);
            for (int i = 0; i < 4; i++) { scratch[i] = g; }
            out[g] = scratch[3];
        }
        """
        compiled = kernelc.build(src)
        out = [0] * 8
        compiled.kernel_runner("k").run_range([out, 8], [8], [4])
        assert out == list(range(8))
