"""Unit tests for the content-addressed kernel compilation cache."""

from __future__ import annotations

import pytest

from repro import kcache, kernelc
from repro.opencl.costmodel import cpu_spec, gpu_spec
from repro.opencl.platform import Device
from repro.trace import tracing

SRC_ADD = """
__kernel void add(__global float *a, __global float *b, __global float *c) {
    int i = get_global_id(0);
    c[i] = a[i] + b[i];
}
"""

SRC_SCALE = """
__kernel void scale(__global float *a, float f) {
    int i = get_global_id(0);
    a[i] = a[i] * f;
}
"""

SRC_NEG = """
__kernel void neg(__global int *a) {
    int i = get_global_id(0);
    a[i] = -a[i];
}
"""


@pytest.fixture(autouse=True)
def clean_kcache():
    kcache.clear()
    kcache.reset_stats()
    kcache.configure(max_entries=256, disk_dir="", disk_max_bytes=0)
    yield
    kcache.clear()
    kcache.reset_stats()
    kcache.configure(max_entries=256, disk_dir="", disk_max_bytes=0)


class TestKeying:
    def test_same_source_same_module_object(self):
        spec = gpu_spec()
        first = kcache.get_or_build(SRC_ADD, spec)
        second = kcache.get_or_build(SRC_ADD, spec)
        assert first is second
        stats = kcache.stats()
        assert stats.misses == 1
        assert stats.hits == 1

    def test_device_name_excluded_from_key(self):
        assert kcache.fingerprint(
            SRC_ADD, gpu_spec(name="alpha")
        ) == kcache.fingerprint(SRC_ADD, gpu_spec(name="beta"))

    def test_spec_parameters_partition_the_cache(self):
        assert kcache.fingerprint(SRC_ADD, gpu_spec()) != kcache.fingerprint(
            SRC_ADD, cpu_spec()
        )
        assert kcache.get_or_build(SRC_ADD, gpu_spec()) is not (
            kcache.get_or_build(SRC_ADD, cpu_spec())
        )

    def test_build_options_partition_the_cache(self):
        a = kcache.get_or_build(SRC_ADD, None, options="")
        b = kcache.get_or_build(SRC_ADD, None, options="host")
        assert a is not b

    def test_identically_parameterised_devices_share(self):
        d1 = Device(gpu_spec(name="bench run 1"))
        d2 = Device(gpu_spec(name="bench run 2"))
        assert d1.compile_source(SRC_ADD) is d2.compile_source(SRC_ADD)

    def test_failed_build_propagates_and_is_not_cached(self):
        with pytest.raises(Exception):
            kcache.get_or_build("__kernel void broken(", None)
        assert kcache.stats().misses == 0
        with pytest.raises(Exception):
            kcache.get_or_build("__kernel void broken(", None)


class TestLRU:
    def test_eviction_over_limit(self):
        kcache.configure(max_entries=2)
        spec = gpu_spec()
        first = kcache.get_or_build(SRC_ADD, spec)
        kcache.get_or_build(SRC_SCALE, spec)
        kcache.get_or_build(SRC_NEG, spec)  # evicts SRC_ADD
        assert kcache.stats().evictions == 1
        rebuilt = kcache.get_or_build(SRC_ADD, spec)
        assert rebuilt is not first
        assert kcache.stats().misses == 4

    def test_recent_use_protects_an_entry(self):
        kcache.configure(max_entries=2)
        spec = gpu_spec()
        first = kcache.get_or_build(SRC_ADD, spec)
        kcache.get_or_build(SRC_SCALE, spec)
        kcache.get_or_build(SRC_ADD, spec)  # touch: SRC_SCALE is now LRU
        kcache.get_or_build(SRC_NEG, spec)  # evicts SRC_SCALE
        assert kcache.get_or_build(SRC_ADD, spec) is first


class TestDiskTier:
    def test_round_trip(self, tmp_path):
        kcache.configure(disk_dir=str(tmp_path))
        spec = gpu_spec()
        kcache.get_or_build(SRC_ADD, spec)
        assert kcache.stats().disk_stores == 1
        assert list(tmp_path.glob("*.kbin"))
        kcache.clear()  # drop the in-memory tier only
        reloaded = kcache.get_or_build(SRC_ADD, spec)
        assert kcache.stats().disk_hits == 1
        runner = reloaded.kernel_runner("add")
        a, b, c = [1.0, 2.0], [10.0, 20.0], [0.0, 0.0]
        runner.run_range([a, b, c], [2], [1])
        assert c == [11.0, 22.0]

    def test_corrupt_entry_falls_back_to_fresh_build(self, tmp_path):
        kcache.configure(disk_dir=str(tmp_path))
        spec = gpu_spec()
        kcache.get_or_build(SRC_ADD, spec)
        (path,) = tmp_path.glob("*.kbin")
        path.write_bytes(b"not a pickle")
        kcache.clear()
        compiled = kcache.get_or_build(SRC_ADD, spec)
        assert compiled.kernel_runner("add") is not None
        assert kcache.stats().disk_hits == 0

    def test_disabled_by_default(self, tmp_path):
        kcache.get_or_build(SRC_ADD, gpu_spec())
        assert kcache.stats().disk_stores == 0


class TestDiskEviction:
    def _entry_size(self, tmp_path):
        kcache.configure(disk_dir=str(tmp_path))
        kcache.get_or_build(SRC_ADD, gpu_spec())
        (path,) = tmp_path.glob("*.kbin")
        return path.stat().st_size

    def test_oldest_entries_evicted_over_cap(self, tmp_path):
        size = self._entry_size(tmp_path)
        # Room for roughly two entries: storing a third evicts the oldest.
        kcache.configure(disk_max_bytes=int(size * 2.5))
        paths = {p.name for p in tmp_path.glob("*.kbin")}
        import os
        import time

        spec = gpu_spec()
        kcache.get_or_build(SRC_SCALE, spec)
        # Make mtime ordering unambiguous on coarse filesystems.
        for i, p in enumerate(sorted(tmp_path.glob("*.kbin"),
                                     key=lambda p: p.name not in paths)):
            os.utime(p, (time.time() - 100 + i, time.time() - 100 + i))
        kcache.get_or_build(SRC_NEG, spec)
        remaining = {p.name for p in tmp_path.glob("*.kbin")}
        assert len(remaining) == 2
        assert kcache.stats().disk_evictions == 1
        # The oldest-mtime file (the SRC_ADD store) is the one gone.
        assert paths - remaining == paths

    def test_uncapped_tier_never_evicts(self, tmp_path):
        kcache.configure(disk_dir=str(tmp_path))
        spec = gpu_spec()
        for src in (SRC_ADD, SRC_SCALE, SRC_NEG):
            kcache.get_or_build(src, spec)
        assert len(list(tmp_path.glob("*.kbin"))) == 3
        assert kcache.stats().disk_evictions == 0

    def test_evicted_entry_rebuilds_transparently(self, tmp_path):
        size = self._entry_size(tmp_path)
        kcache.configure(disk_max_bytes=size)  # cap: one entry at most
        spec = gpu_spec()
        kcache.get_or_build(SRC_SCALE, spec)  # evicts the SRC_ADD file
        assert kcache.stats().disk_evictions >= 1
        kcache.clear()
        compiled = kcache.get_or_build(SRC_ADD, spec)
        assert compiled.kernel_runner("add") is not None

    def test_trace_counter(self, tmp_path):
        size = self._entry_size(tmp_path)
        with tracing() as tr:
            kcache.configure(disk_max_bytes=size)
            kcache.get_or_build(SRC_SCALE, gpu_spec())
        assert tr.counter("kcache.disk_evict") >= 1


class TestEquivalence:
    @pytest.mark.parametrize("source", [SRC_ADD, SRC_SCALE, SRC_NEG])
    def test_cached_compile_equals_fresh_compile(self, source):
        """Property: a cache hit yields a module whose execution is
        indistinguishable from a freshly-built one."""
        fresh = kernelc.build(source)
        cached = kcache.get_or_build(source, gpu_spec())
        (kname,) = [f.name for f in fresh.module.kernels()]
        n = 32
        args_fresh, args_cached = [], []
        for p in fresh.module.kernel(kname).params:
            if p.type.is_array:
                data = [float(i % 7 + 1) if p.type.element.kind == "float"
                        else i % 7 + 1 for i in range(n)]
                args_fresh.append(list(data))
                args_cached.append(list(data))
            else:
                args_fresh.append(2.0)
                args_cached.append(2.0)
        ops_fresh = fresh.kernel_runner(kname).run_range(
            args_fresh, [n], [4]
        )
        ops_cached = cached.kernel_runner(kname).run_range(
            args_cached, [n], [4]
        )
        assert ops_fresh == ops_cached
        assert args_fresh == args_cached


class TestCounters:
    def test_trace_counters_and_summary(self):
        with tracing() as tr:
            kcache.get_or_build(SRC_ADD, gpu_spec())
            kcache.get_or_build(SRC_ADD, gpu_spec())
        assert tr.counter("kcache.miss") == 1
        assert tr.counter("kcache.hit") == 1
        summary = tr.summary(with_counters=True)
        assert summary["counters"] == {"kcache.miss": 1.0, "kcache.hit": 1.0}
        # The default shape stays exactly the four figure segments.
        assert set(tr.summary()) == {
            "to_device", "from_device", "kernel", "overhead",
        }
