"""Every example script runs to completion as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable: at least three


def test_regenerate_module_importable():
    from repro.harness import regenerate

    assert callable(regenerate.regenerate_all)
