"""Larger actor topologies: rings, trees, and mixed-device fan-out."""

import pytest

from repro.actors import Actor, InPort, OutPort, Stage, connect


class Relay(Actor):
    """Receives a value, increments it, forwards it."""

    rx = InPort(int)
    tx = OutPort(int)

    def behaviour(self) -> None:
        self.tx.send(self.rx.receive() + 1)


class TestRing:
    @pytest.mark.parametrize("size", [2, 5, 16])
    def test_token_ring_single_lap(self, size):
        stage = Stage()

        class Starter(Actor):
            rx = InPort(int)
            tx = OutPort(int)

            def __init__(self) -> None:
                super().__init__()
                self.final = None

            def behaviour(self) -> None:
                self.tx.send(0)
                self.final = self.rx.receive()
                self.stop()

        starter = stage.spawn(Starter())
        relays = [stage.spawn(Relay()) for _ in range(size - 1)]
        chain = [starter] + relays
        for a, b in zip(chain, chain[1:]):
            connect(a.tx, b.rx)
        connect(chain[-1].tx, starter.rx)
        stage.run(30)
        assert starter.final == size - 1  # each relay added one


class TestTree:
    def test_binary_reduction_tree(self):
        """Leaves send values; inner nodes sum pairs; the root collects."""

        class Leaf(Actor):
            tx = OutPort(int)

            def __init__(self, value: int) -> None:
                super().__init__()
                self.value = value

            def behaviour(self) -> None:
                self.tx.send(self.value)
                self.stop()

        class Sum2(Actor):
            rx = InPort(int)
            tx = OutPort(int)

            def behaviour(self) -> None:
                total = self.rx.receive() + self.rx.receive()
                self.tx.send(total)
                self.stop()

        class Root(Actor):
            rx = InPort(int)

            def __init__(self) -> None:
                super().__init__()
                self.total = None

            def behaviour(self) -> None:
                self.total = self.rx.receive()
                self.stop()

        stage = Stage()
        values = [3, 5, 7, 11]
        leaves = [stage.spawn(Leaf(v)) for v in values]
        inner = [stage.spawn(Sum2()) for _ in range(2)]
        top = stage.spawn(Sum2())
        root = stage.spawn(Root())
        connect(leaves[0].tx, inner[0].rx)
        connect(leaves[1].tx, inner[0].rx)
        connect(leaves[2].tx, inner[1].rx)
        connect(leaves[3].tx, inner[1].rx)
        connect(inner[0].tx, top.rx)
        connect(inner[1].tx, top.rx)
        connect(top.tx, root.rx)
        stage.run(30)
        assert root.total == sum(values)


class TestThroughput:
    def test_buffered_pipeline_moves_many_messages(self):
        class Source(Actor):
            tx = OutPort(int)

            def __init__(self, count: int) -> None:
                super().__init__()
                self.remaining = count

            def behaviour(self) -> None:
                if self.remaining == 0:
                    self.stop()
                self.tx.send(self.remaining)
                self.remaining -= 1

        class Sink(Actor):
            rx = InPort(int, buffer=32)

            def __init__(self) -> None:
                super().__init__()
                self.count = 0
                self.total = 0

            def behaviour(self) -> None:
                value = self.rx.receive()
                self.count += 1
                self.total += value

        stage = Stage()
        n = 500
        source = stage.spawn(Source(n))
        sink = stage.spawn(Sink())
        connect(source.tx, sink.rx)
        stage.run(60)
        assert sink.count == n
        assert sink.total == n * (n + 1) // 2

    def test_many_parallel_pairs(self):
        class Echo(Actor):
            rx = InPort()
            tx = OutPort()

            def behaviour(self) -> None:
                self.tx.send(self.rx.receive() * 2)

        class Caller(Actor):
            tx = OutPort()
            rx = InPort()

            def __init__(self, seed: int) -> None:
                super().__init__()
                self.seed = seed
                self.reply = None

            def behaviour(self) -> None:
                self.tx.send(self.seed)
                self.reply = self.rx.receive()
                self.stop()

        stage = Stage()
        callers = []
        for i in range(12):
            echo = stage.spawn(Echo())
            caller = stage.spawn(Caller(i))
            connect(caller.tx, echo.rx)
            connect(echo.tx, caller.rx)
            callers.append(caller)
        stage.run(60)
        assert [c.reply for c in callers] == [2 * i for i in range(12)]
