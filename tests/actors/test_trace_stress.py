"""Tracing under load: nesting, timeline sanity, zero perturbation.

Runs busy actor topologies and full kernel benchmarks with a live
tracer and checks the recorded timeline is structurally sound — and
that the default no-op tracer changes nothing about the results.
"""

import pytest

from repro.actors import Actor, InPort, OutPort, Stage, connect
from repro.apps import matmul
from repro.trace import Tracer, tracing


def assert_well_nested(spans):
    """Every pair of spans on one track is disjoint or nested."""
    for i, a in enumerate(spans):
        for b in spans[i + 1:]:
            overlap = max(a.ts_ns, b.ts_ns) < min(a.end_ns, b.end_ns)
            if not overlap:
                continue
            nested = (
                (a.ts_ns <= b.ts_ns and b.end_ns <= a.end_ns)
                or (b.ts_ns <= a.ts_ns and a.end_ns <= b.end_ns)
            )
            assert nested, f"overlapping, non-nested spans: {a} / {b}"


class Relay(Actor):
    rx = InPort(int, buffer=8)
    tx = OutPort(int)

    def behaviour(self) -> None:
        self.tx.send(self.rx.receive() + 1)


class Source(Actor):
    tx = OutPort(int)

    def __init__(self, count: int) -> None:
        super().__init__()
        self.remaining = count

    def behaviour(self) -> None:
        if self.remaining == 0:
            self.stop()
        self.tx.send(self.remaining)
        self.remaining -= 1


class Sink(Actor):
    rx = InPort(int, buffer=8)

    def __init__(self) -> None:
        super().__init__()
        self.received = []

    def behaviour(self) -> None:
        self.received.append(self.rx.receive())


def run_traced_pipeline(n=100, relays=4):
    stage = Stage()
    source = stage.spawn(Source(n))
    chain = [stage.spawn(Relay()) for _ in range(relays)]
    sink = stage.spawn(Sink())
    for a, b in zip([source] + chain, chain + [sink]):
        connect(a.tx, b.rx)
    tracer = Tracer()
    with tracing(tracer):
        stage.run(60)
    assert len(sink.received) == n
    assert sorted(sink.received) == sorted(
        v + relays for v in range(1, n + 1)
    )
    return tracer


class TestPipelineStress:
    def test_spans_well_nested_per_track(self):
        tracer = run_traced_pipeline()
        thread_tracks = [
            t for t in tracer.tracks() if t.startswith("thread/")
        ]
        assert thread_tracks
        for track in thread_tracks:
            assert_well_nested(tracer.spans_on(track))

    def test_behaviour_and_channel_spans_recorded(self):
        tracer = run_traced_pipeline(n=20, relays=2)
        names = {s.name for s in tracer.spans}
        assert any(n.startswith("behaviour:Relay") for n in names)
        assert any(n.startswith("send:") and n.endswith(".tx")
                   for n in names)
        assert any(n.startswith("receive:") and n.endswith(".rx")
                   for n in names)

    def test_mailbox_counters_never_negative(self):
        tracer = run_traced_pipeline()
        mailbox = [
            s for s in tracer.counter_samples
            if s.name.startswith("mailbox.")
        ]
        assert mailbox, "no mailbox depth samples recorded"
        for sample in mailbox:
            assert sample.value >= 0.0, sample
        # and they drain: every mailbox ends empty
        finals = {}
        for sample in mailbox:
            finals[sample.name] = sample.value
        assert all(v == 0.0 for v in finals.values())

    def test_all_durations_non_negative(self):
        tracer = run_traced_pipeline()
        for span in tracer.spans:
            assert span.dur_ns >= 0.0, span


class TestKernelRunTimeline:
    def test_device_tracks_are_serial_and_monotonic(self):
        tracer = Tracer()
        with tracing(tracer):
            matmul.run_actors(n=16)
        device_tracks = [
            t for t in tracer.tracks() if t.startswith("device/")
        ]
        assert device_tracks
        for track in device_tracks:
            spans = sorted(tracer.spans_on(track), key=lambda s: s.ts_ns)
            assert spans
            for prev, cur in zip(spans, spans[1:]):
                assert cur.ts_ns >= prev.end_ns - 1e-9, (
                    f"{track}: {cur} begins before {prev} ends"
                )

    def test_cost_spans_only_on_cost_categories(self):
        tracer = Tracer()
        with tracing(tracer):
            matmul.run_actors(n=16)
        for span in tracer.spans:
            if span.cost:
                assert span.category in {"h2d", "d2h", "kernel", "host"}
            assert span.dur_ns >= 0.0


class TestNoOpTracerIsFree:
    def test_untraced_run_identical_to_traced_run(self):
        """Tracing must observe, never perturb: the result and the
        priced breakdown are identical with and without a tracer."""
        untraced = matmul.run_ensemble(n=16)
        with tracing():
            traced = matmul.run_ensemble(n=16)
        assert untraced.result == traced.result
        assert untraced.breakdown == traced.breakdown

    def test_actor_run_identical_with_and_without_tracer(self):
        untraced = matmul.run_actors(n=16)
        with tracing():
            traced = matmul.run_actors(n=16)
        assert untraced.result == traced.result
        assert untraced.breakdown == traced.breakdown
