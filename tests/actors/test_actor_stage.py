"""Actor lifecycle, stages and behaviour-loop semantics."""

import pytest

from repro.actors import Actor, InPort, OutPort, Stage, connect
from repro.errors import ActorError, RuntimeFault


class Producer(Actor):
    output = OutPort(int)

    def __init__(self, count: int) -> None:
        super().__init__()
        self.count = count
        self.sent = 0

    def behaviour(self) -> None:
        if self.sent >= self.count:
            self.stop()
        self.output.send(self.sent)
        self.sent += 1


class Collector(Actor):
    input = InPort(int)

    def __init__(self) -> None:
        super().__init__()
        self.seen: list[int] = []

    def behaviour(self) -> None:
        self.seen.append(self.input.receive())


class TestBehaviourLoop:
    def test_behaviour_repeats_until_stop(self):
        stage = Stage()
        producer = stage.spawn(Producer(5))
        collector = stage.spawn(Collector())
        connect(producer.output, collector.input)
        stage.run(10)
        assert collector.seen == [0, 1, 2, 3, 4]

    def test_channel_close_cascades_shutdown(self):
        # Collector stops via ChannelClosed when the producer finishes.
        stage = Stage()
        producer = stage.spawn(Producer(1))
        collector = stage.spawn(Collector())
        connect(producer.output, collector.input)
        stage.run(10)
        assert collector.stopped and producer.stopped

    def test_actor_error_propagates_to_join(self):
        class Exploder(Actor):
            def behaviour(self) -> None:
                raise ValueError("boom")

        stage = Stage()
        stage.spawn(Exploder())
        with pytest.raises(ActorError, match="boom"):
            stage.run(10)

    def test_behaviour_must_be_overridden(self):
        stage = Stage()
        stage.spawn(Actor())
        with pytest.raises(ActorError, match="behaviour"):
            stage.run(10)


class TestPortTemplates:
    def test_instances_get_fresh_ports(self):
        a = Producer(1)
        b = Producer(1)
        assert a.output is not b.output
        assert a.output is not Producer.output

    def test_port_names_identify_owner(self):
        actor = Producer(1)
        assert "Producer.output" in actor.output.name

    def test_ports_listing(self):
        actor = Collector()
        assert set(actor.ports()) == {"input"}


class TestStageLifecycle:
    def test_spawn_after_start_rejected(self):
        stage = Stage()
        stage.spawn(Producer(0))
        stage.start()
        with pytest.raises(RuntimeFault):
            stage.spawn(Producer(0))
        stage.join(10)

    def test_double_spawn_rejected(self):
        stage_a = Stage()
        stage_b = Stage()
        actor = Producer(0)
        stage_a.spawn(actor)
        with pytest.raises(RuntimeFault):
            stage_b.spawn(actor)

    def test_double_start_rejected(self):
        stage = Stage()
        stage.start()
        with pytest.raises(RuntimeFault):
            stage.start()

    def test_join_times_out_on_deadlock(self):
        class Forever(Actor):
            input = InPort()

            def behaviour(self) -> None:
                self.input.receive()  # never connected; blocks

        stage = Stage()
        stage.spawn(Forever())
        stage.start()
        with pytest.raises(ActorError, match="did not stop"):
            stage.join(0.2)
        stage.stop_all()

    def test_context_manager_runs_stage(self):
        with Stage() as stage:
            producer = stage.spawn(Producer(2))
            collector = stage.spawn(Collector())
            connect(producer.output, collector.input)
        assert collector.seen == [0, 1]


class TestPipelines:
    def test_three_stage_pipeline(self):
        class Doubler(Actor):
            input = InPort(int)
            output = OutPort(int)

            def behaviour(self) -> None:
                self.output.send(self.input.receive() * 2)

        stage = Stage()
        producer = stage.spawn(Producer(4))
        doubler = stage.spawn(Doubler())
        collector = stage.spawn(Collector())
        connect(producer.output, doubler.input)
        connect(doubler.output, collector.input)
        stage.run(10)
        assert collector.seen == [0, 2, 4, 6]

    def test_fan_in_pipeline(self):
        stage = Stage()
        producers = [stage.spawn(Producer(3)) for _ in range(2)]
        collector = stage.spawn(Collector())
        for producer in producers:
            connect(producer.output, collector.input)
        stage.run(10)
        assert sorted(collector.seen) == [0, 0, 1, 1, 2, 2]
