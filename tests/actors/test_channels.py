"""Channel semantics: rendezvous, buffering, topologies, typing,
shared-nothing copying and movability."""

import threading
import time

import pytest

from repro.actors import InPort, OutPort, channel, connect, mov
from repro.errors import ChannelClosed, ChannelError, MovedValueError
from repro.runtime import ManagedArray
from repro.runtime.mov import Movable


class TestWiring:
    def test_channel_pair(self):
        out_port, in_port = channel(buffer=1)
        out_port.send(42)
        assert in_port.receive() == 42

    def test_send_unconnected_rejected(self):
        with pytest.raises(ChannelError, match="unconnected"):
            OutPort().send(1)

    def test_connect_type_mismatch_rejected(self):
        out_port = OutPort(int)
        in_port = InPort(float)
        with pytest.raises(ChannelError, match="type"):
            connect(out_port, in_port)

    def test_connect_wrong_kinds_rejected(self):
        with pytest.raises(ChannelError):
            connect(InPort(), InPort())  # type: ignore[arg-type]

    def test_typed_send_checked(self):
        out_port, in_port = channel(typ=int, buffer=1)
        out_port.send(5)
        with pytest.raises(ChannelError, match="type"):
            out_port.send("nope")

    def test_negative_buffer_rejected(self):
        with pytest.raises(ChannelError):
            InPort(buffer=-1)


class TestBlockingSemantics:
    def test_rendezvous_blocks_until_receive(self):
        out_port, in_port = channel()
        state = []

        def sender():
            out_port.send("payload")
            state.append(time.monotonic())

        thread = threading.Thread(target=sender, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not state  # sender still blocked in rendezvous
        assert in_port.receive() == "payload"
        thread.join(2)
        assert state

    def test_rendezvous_fast_path_with_parked_receiver(self):
        """A receiver already blocked without a timeout is committed to
        consuming the message, so the sender may return immediately —
        no Event round trip."""
        out_port, in_port = channel()
        got = []
        ready = threading.Event()

        def receiver():
            ready.set()
            got.append(in_port.receive())

        thread = threading.Thread(target=receiver, daemon=True)
        thread.start()
        ready.wait(2)
        # Let the receiver actually park in the condition wait.
        deadline = time.monotonic() + 2
        while not in_port._recv_waiting and time.monotonic() < deadline:
            time.sleep(0.001)
        assert in_port._recv_waiting == 1
        start = time.monotonic()
        out_port.send("payload")
        elapsed = time.monotonic() - start
        thread.join(2)
        assert got == ["payload"]
        assert elapsed < 0.5  # returned without a rendezvous sleep
        assert in_port._recv_waiting == 0

    def test_timeout_receiver_does_not_arm_fast_path(self):
        """Receivers waiting *with* a timeout may give up, so senders
        must still rendezvous through the Event."""
        out_port, in_port = channel()
        with pytest.raises(ChannelError, match="timed out"):
            in_port.receive(timeout=0.01)
        assert in_port._recv_waiting == 0
        state = []

        def sender():
            out_port.send("late")
            state.append("sent")

        thread = threading.Thread(target=sender, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not state  # no parked receiver -> classic blocking send
        assert in_port.receive() == "late"
        thread.join(2)
        assert state == ["sent"]

    def test_buffered_send_does_not_block(self):
        out_port, in_port = channel(buffer=2)
        out_port.send(1)
        out_port.send(2)  # fits in the buffer; no receiver yet
        assert in_port.receive() == 1
        assert in_port.receive() == 2

    def test_full_buffer_reverts_to_blocking(self):
        out_port, in_port = channel(buffer=1)
        out_port.send(1)
        with pytest.raises(ChannelError, match="timed out"):
            out_port.send(2, timeout=0.05)

    def test_receive_timeout(self):
        out_port, in_port = channel(buffer=1)
        with pytest.raises(ChannelError, match="timed out"):
            in_port.receive(timeout=0.05)

    def test_receive_on_never_connected_port_blocks(self):
        port = InPort()
        with pytest.raises(ChannelError, match="timed out"):
            port.receive(timeout=0.05)

    def test_receive_after_all_senders_closed(self):
        out_port, in_port = channel(buffer=2)
        out_port.send(1)
        out_port.close()
        assert in_port.receive() == 1  # drain the buffer first
        with pytest.raises(ChannelClosed):
            in_port.receive()

    def test_messages_preserve_fifo_order(self):
        out_port, in_port = channel(buffer=16)
        for i in range(10):
            out_port.send(i)
        assert [in_port.receive() for _ in range(10)] == list(range(10))


class TestTopologies:
    def test_one_to_n_broadcast_copies(self):
        out_port = OutPort()
        sinks = [InPort(buffer=1), InPort(buffer=1)]
        for sink in sinks:
            connect(out_port, sink)
        payload = [1, 2, 3]
        out_port.send(payload)
        got = [sink.receive() for sink in sinks]
        assert got == [payload, payload]
        assert got[0] is not payload and got[0] is not got[1]

    def test_n_to_one_merge(self):
        target = InPort(buffer=4)
        senders = [OutPort(), OutPort()]
        for sender in senders:
            connect(sender, target)
        senders[0].send("a")
        senders[1].send("b")
        assert {target.receive(), target.receive()} == {"a", "b"}

    def test_movable_broadcast_rejected(self):
        out_port = OutPort()
        connect(out_port, InPort(buffer=1))
        connect(out_port, InPort(buffer=1))
        with pytest.raises(ChannelError, match="broadcast"):
            out_port.send(mov([1, 2]))


class TestSharedNothing:
    def test_lists_are_deep_copied(self):
        out_port, in_port = channel(buffer=1)
        payload = {"data": [1, 2, 3]}
        out_port.send(payload)
        received = in_port.receive()
        received["data"][0] = 99
        assert payload["data"][0] == 1

    def test_managed_arrays_are_cloned(self):
        out_port, in_port = channel(buffer=1)
        array = ManagedArray([1.0, 2.0], (2,))
        out_port.send({"a": array})
        received = in_port.receive()["a"]
        received[0] = 9.0
        assert array[0] == 1.0

    def test_ports_travel_by_reference(self):
        out_port, in_port = channel(buffer=1)
        inner = InPort(buffer=1)
        out_port.send({"reply_to": inner})
        received = in_port.receive()
        assert received["reply_to"] is inner


class TestMovability:
    def test_move_transfers_ownership(self):
        out_port, in_port = channel(buffer=1)
        box = mov([1.0, 2.0])
        out_port.send(box)
        with pytest.raises(MovedValueError):
            _ = box.value
        received = in_port.receive()
        assert isinstance(received, Movable)
        assert received.value == [1.0, 2.0]

    def test_double_send_rejected(self):
        out_port, _ = channel(buffer=2)
        box = mov([1])
        out_port.send(box)
        with pytest.raises(MovedValueError):
            out_port.send(box)

    def test_reassignment_revives_the_box(self):
        box = mov([1])
        box.surrender()
        box.reassign([2])
        assert box.value == [2]

    def test_mov_is_idempotent(self):
        box = mov([1])
        assert mov(box) is box

    def test_moved_payload_is_not_copied(self):
        out_port, in_port = channel(buffer=1)
        payload = [1.0] * 1000
        out_port.send(mov(payload))
        received = in_port.receive()
        assert received.value is payload
