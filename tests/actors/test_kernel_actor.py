"""KernelActor behaviour: dispatch automation, residency, errors."""

import pytest

from repro.actors import (
    Actor,
    InPort,
    KernelActor,
    KernelRequest,
    ManagedArray,
    OutPort,
    Stage,
    connect,
    mov,
    run_kernel,
)
from repro.errors import ActorError
from repro.opencl import reset_platforms
from repro.runtime import device_matrix, reset_device_matrix

SQUARE = """
__kernel void square(__global float *a, __global float *out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = a[i] * a[i]; }
}
"""


@pytest.fixture(autouse=True)
def _fresh():
    reset_platforms()
    reset_device_matrix()
    yield
    reset_device_matrix()
    reset_platforms()


class TestRunKernel:
    def test_basic_dispatch(self):
        n = 32
        result = run_kernel(
            SQUARE,
            "square",
            {"a": [float(i) for i in range(n)], "out": [0.0] * n, "n": n},
            worksize=[n],
        )
        out = result["out"]
        out = out.host() if isinstance(out, ManagedArray) else out
        assert out == [float(i * i) for i in range(n)]

    def test_explicit_groupsize(self):
        n = 16
        result = run_kernel(
            SQUARE,
            "square",
            {"a": [1.0] * n, "out": [0.0] * n, "n": n},
            worksize=[n],
            groupsize=[4],
        )
        assert result["out"].host() == [1.0] * n

    def test_zero_groupsize_means_device_default(self):
        # The paper's Listing 3 passes groupsize arrays of 0.
        request = KernelRequest([16], [0])
        assert request.effective_groupsize() is None
        request = KernelRequest([16], [4])
        assert request.effective_groupsize() == (4,)

    def test_missing_parameter_is_an_actor_error(self):
        with pytest.raises(ActorError, match="missing"):
            run_kernel(SQUARE, "square", {"a": [1.0]}, worksize=[1])

    def test_wrong_kernel_name(self):
        with pytest.raises(ActorError):
            run_kernel(SQUARE, "nope", {"a": [1.0]}, worksize=[1])

    def test_cpu_device(self):
        result = run_kernel(
            SQUARE,
            "square",
            {"a": [3.0], "out": [0.0], "n": 1},
            worksize=[1],
            device_type="CPU",
        )
        assert result["out"].host() == [9.0]
        env = device_matrix().environments()[0]
        assert env.device.device_type == "CPU"


class TestResidency:
    def test_movable_data_stays_on_device(self):
        n = 16
        stage = Stage()
        kernel = stage.spawn(KernelActor(SQUARE, "square", "GPU"))

        class Host(Actor):
            requests = OutPort()
            din = InPort()

            def behaviour(self) -> None:
                request = KernelRequest([n])
                dout = OutPort()
                connect(dout, request.input)
                connect(request.output, self.din)
                self.requests.send(request)
                data = {
                    "a": ManagedArray([2.0] * n, (n,)),
                    "out": ManagedArray.zeros(n),
                    "n": n,
                }
                dout.send(mov(data))
                self.received = self.din.receive().value
                self.stop()

        host = stage.spawn(Host())
        connect(host.requests, kernel.requests)
        device_matrix().reset_ledgers()
        stage.run(30)
        out = host.received["out"]
        assert out.on_device and not out.host_valid
        ledger = device_matrix().combined_ledger()
        assert ledger.bytes_from_device == 0
        assert out[0] == 4.0  # read-back happens here
        assert device_matrix().combined_ledger().bytes_from_device > 0

    def test_copy_semantics_sync_before_send(self):
        n = 8
        result = run_kernel(
            SQUARE,
            "square",
            {"a": [2.0] * n, "out": [0.0] * n, "n": n},
            worksize=[n],
            movable=False,
        )
        out = result["out"]
        # non-movable: host copy is already synchronised
        assert not out.on_device
        assert out.host() == [4.0] * n

    def test_write_only_output_not_uploaded(self):
        n = 64
        device_matrix().reset_ledgers()
        run_kernel(
            SQUARE,
            "square",
            {"a": [1.0] * n, "out": [0.0] * n, "n": n},
            worksize=[n],
        )
        ledger = device_matrix().combined_ledger()
        # only 'a' (n floats) crossed; 'out' was allocated without copy.
        assert ledger.bytes_to_device == n * 4

    def test_repeated_dispatch_through_same_actor(self):
        n = 4
        stage = Stage()
        kernel = stage.spawn(KernelActor(SQUARE, "square", "GPU"))

        class Host(Actor):
            requests = OutPort()
            din = InPort()

            def __init__(self) -> None:
                super().__init__()
                self.rounds = 0
                self.outs = []

            def behaviour(self) -> None:
                if self.rounds == 3:
                    self.stop()
                request = KernelRequest([n])
                dout = OutPort()
                connect(dout, request.input)
                connect(request.output, self.din)
                self.requests.send(request)
                value = float(self.rounds + 1)
                dout.send({"a": [value] * n, "out": [0.0] * n, "n": n})
                received = self.din.receive()
                self.outs.append(received["out"].host()[0])
                self.rounds += 1

        host = stage.spawn(Host())
        connect(host.requests, kernel.requests)
        stage.run(30)
        assert host.outs == [1.0, 4.0, 9.0]


class TestBarrierKernelsThroughActors:
    SOURCE = """
    __kernel void group_sum(__global float *data, __global float *sums) {
        __local float tile[8];
        int lid = get_local_id(0);
        tile[lid] = data[get_global_id(0)];
        barrier(CLK_LOCAL_MEM_FENCE);
        if (lid == 0) {
            float total = 0.0;
            for (int i = 0; i < 8; i++) { total += tile[i]; }
            sums[get_group_id(0)] = total;
        }
    }
    """

    def test_local_memory_kernel(self):
        data = [float(i) for i in range(16)]
        result = run_kernel(
            self.SOURCE,
            "group_sum",
            {"data": data, "sums": [0.0, 0.0]},
            worksize=[16],
            groupsize=[8],
        )
        assert result["sums"].host() == [sum(range(8)), sum(range(8, 16))]
