"""Chaos x supervision: a stage hand-off killed twice in a row.

A chaos plan that fires the ``handoff`` site twice against one
supervised kernel actor walks the whole restart-budget exhaustion path:
first crash -> non-fatal notice -> in-place restart; second crash ->
budget exhausted -> fatal notice, finalized ports, dead-lettered
requests, and closed reply channels downstream.  The tests pin the
notice ordering, the dead-letter capture, and the counter vocabulary.
"""

import pytest

from repro import opencl as cl
from repro.actors import (
    DeadLetter,
    InPort,
    KernelActor,
    KernelRequest,
    OutPort,
    RestartPolicy,
    Stage,
    connect,
)
from repro.errors import ChannelClosed, ChannelError, CLOutOfHostMemory
from repro.opencl import dispatch, faults
from repro.opencl.faults import PERMANENT, FaultPlan, FaultSpec
from repro.runtime import reset_device_matrix
from repro.trace import tracing

pytestmark = pytest.mark.chaos

SQUARE = """
__kernel void square(__global int *a, __global int *out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = a[i] * a[i]; }
}
"""

N = 4


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    cl.reset_platforms()
    reset_device_matrix()
    yield
    dispatch.configure(fusion=False, faults=None)
    faults.clear()
    cl.reset_platforms()
    reset_device_matrix()


def make_request():
    """A KernelRequest plus the host-side ends of its data channels."""
    request = KernelRequest([N])
    dout = OutPort(name="host.dout")
    din = InPort(buffer=2, name="host.din")
    connect(dout, request.input)
    connect(request.output, din)
    return request, dout, din


def payload():
    return {"a": list(range(N)), "out": [0] * N, "n": N}


def test_double_handoff_kill_exhausts_the_restart_budget():
    # Fire the hand-off gate on the actor's first two result forwards.
    dispatch.configure(
        faults=FaultPlan(
            [FaultSpec("handoff", PERMANENT, key="square.output", times=2)]
        )
    )
    notices = []
    stage = Stage("chaos", supervisor=notices.append)
    worker = stage.spawn(
        KernelActor(SQUARE, "square"),
        policy=RestartPolicy(max_restarts=1, backoff_s=0.0),
    )
    reqs = OutPort(name="host.reqs")
    connect(reqs, worker.requests)

    with tracing() as tracer:
        stage.start()
        # First kill: the dispatch succeeds, the hand-off crashes the
        # actor, supervision restarts it in place.
        req1, dout1, din1 = make_request()
        reqs.send(req1, timeout=5.0)
        dout1.send(payload(), timeout=5.0)
        with pytest.raises(ChannelClosed):
            din1.receive(timeout=5.0)
        # Second kill: the restarted actor crashes again and the
        # restart budget (1) is exhausted -> fatal, ports finalized.
        req2, dout2, din2 = make_request()
        reqs.send(req2, timeout=5.0)
        dout2.send(payload(), timeout=5.0)
        with pytest.raises(ChannelClosed):
            din2.receive(timeout=5.0)
        stage.join(10.0)  # fatal notice delivered: join stays clean

        # Supervisor-notice ordering: one non-fatal restart notice,
        # then the fatal budget-exhaustion notice, both carrying the
        # injected error.
        kinds = [(n.fatal, n.restarts) for n in notices]
        assert kinds == [(False, 1), (True, 1)]
        assert kinds == [
            (f.fatal, f.restarts) for f in stage.supervised_failures
        ]
        for notice in notices:
            assert notice.actor_name == worker.name
            assert isinstance(notice.error, CLOutOfHostMemory)
            assert notice.error.fault is not None

        # A third request hits the finalized actor's closed port: the
        # send fails loudly and the message is dead-lettered.
        req3, _, _ = make_request()
        with pytest.raises(ChannelError, match="closed"):
            reqs.send(req3, timeout=1.0)

    assert len(stage.dead_letters) == 1
    letter = stage.dead_letters[0]
    assert isinstance(letter, DeadLetter)
    assert letter.item is req3
    assert letter.reason == "closed"

    counters = tracer.counters()
    assert counters["fault.injected"] == 2
    assert counters["actor.failure"] == 2
    assert counters["actor.restart"] == 1
    assert counters["actor.dead_letter"] == 1
    assert "fault.failover" not in counters  # crashes, not device loss


def test_budget_of_two_survives_a_double_kill():
    """With one more restart in the budget the same double-kill plan is
    absorbed: the third attempt succeeds and delivers the result."""
    dispatch.configure(
        faults=FaultPlan(
            [FaultSpec("handoff", PERMANENT, key="square.output", times=2)]
        )
    )
    notices = []
    stage = Stage("chaos", supervisor=notices.append)
    stage.spawn(
        KernelActor(SQUARE, "square"),
        policy=RestartPolicy(max_restarts=2, backoff_s=0.0),
    )
    worker = stage.actors[0]
    reqs = OutPort(name="host.reqs")
    connect(reqs, worker.requests)

    with tracing() as tracer:
        stage.start()
        result = None
        for _ in range(3):
            req, dout, din = make_request()
            reqs.send(req, timeout=5.0)
            dout.send(payload(), timeout=5.0)
            try:
                result = din.receive(timeout=5.0)
            except ChannelClosed:
                continue
        assert result is not None
        # The payload's arrays were promoted to managed arrays by the
        # actor; compare the host copies.
        assert list(result["out"].host()) == [i * i for i in range(N)]
        stage.stop_all()
        stage.join(10.0)

    assert [(n.fatal, n.restarts) for n in notices] == [
        (False, 1),
        (False, 2),
    ]
    counters = tracer.counters()
    assert counters["fault.injected"] == 2
    assert counters["actor.restart"] == 2
    assert stage.dead_letters == []
