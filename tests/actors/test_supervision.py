"""Actor supervision: restarts, dead letters, failover, pipeline survival.

The actor-runtime half of the reliability tentpole: restart-with-backoff
policies, crash notices to a supervisor instead of silent thread death,
dead-letter capture on undeliverable messages, kernel-actor device
failover, and the acceptance scenario — the Figure-4 LUD pipeline
surviving a mid-pipeline kernel-actor device loss with correct output.
"""

import pytest

from repro import opencl as cl
from repro.actors import (
    Actor,
    ActorFailure,
    DeadLetter,
    InPort,
    OutPort,
    RestartPolicy,
    Stage,
    connect,
    run_kernel,
)
from repro.apps.lud import runners as lud
from repro.errors import ActorError, ChannelError
from repro.opencl import dispatch, faults
from repro.opencl.faults import DEVICE_LOST, FaultPlan, FaultSpec
from repro.runtime import reset_device_matrix
from repro.trace import tracing

pytestmark = pytest.mark.faults

SQUARE = """
__kernel void square(__global int *a, __global int *out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = a[i] * a[i]; }
}
"""


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    cl.reset_platforms()
    reset_device_matrix()
    yield
    faults.clear()
    cl.reset_platforms()
    reset_device_matrix()


class Flaky(Actor):
    """Crashes on chosen iterations; sends its counter otherwise."""

    output = OutPort(int)

    def __init__(self, crash_on=(2,), stop_after=4):
        super().__init__()
        self.n = 0
        self.crash_on = set(crash_on)
        self.stop_after = stop_after

    def behaviour(self):
        self.n += 1
        if self.n in self.crash_on:
            raise ValueError(f"iteration {self.n} crashed")
        if self.n > self.stop_after:
            self.stop()
        self.output.send(self.n)


class Sink(Actor):
    input = InPort(int, buffer=64)

    def __init__(self):
        super().__init__()
        self.got = []

    def behaviour(self):
        self.got.append(self.input.receive())


class TestRestart:
    def test_restart_absorbs_crash_and_keeps_channels_wired(self):
        stage = Stage("t")
        flaky = stage.spawn(Flaky(), policy=RestartPolicy(max_restarts=2))
        sink = stage.spawn(Sink())
        connect(flaky.output, sink.input)
        with tracing() as tracer:
            stage.run(20)
        assert sink.got == [1, 3, 4]  # iteration 2 crashed, rest flowed
        counters = tracer.counters()
        assert counters["actor.failure"] == 1
        assert counters["actor.restart"] == 1

    def test_restart_budget_exhaustion_is_fatal(self):
        stage = Stage("t")
        stage.spawn(
            Flaky(crash_on=(1, 2, 3, 4, 5)),
            policy=RestartPolicy(max_restarts=2),
        )
        with pytest.raises(ActorError, match="iteration 3 crashed"):
            stage.run(20)
        kinds = [(f.fatal, f.restarts) for f in stage.supervised_failures]
        assert kinds == [(False, 1), (False, 2), (True, 2)]

    def test_unsupervised_crash_still_raises_from_join(self):
        stage = Stage("t")
        stage.spawn(Flaky(crash_on=(1,)))
        with pytest.raises(ActorError, match="iteration 1 crashed"):
            stage.run(20)

    def test_policy_validation(self):
        from repro.errors import CLInvalidValue

        with pytest.raises(CLInvalidValue):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(CLInvalidValue):
            RestartPolicy(backoff_s=-0.5)


class TestSupervisor:
    def test_callable_supervisor_handles_fatal_crash(self):
        notices = []
        stage = Stage("t", supervisor=notices.append)
        stage.spawn(Flaky(crash_on=(1,)))
        stage.run(20)  # supervised: join() does not raise
        assert len(notices) == 1
        notice = notices[0]
        assert isinstance(notice, ActorFailure)
        assert notice.fatal and notice.restarts == 0
        assert isinstance(notice.error, ValueError)

    def test_inport_supervisor_receives_failures_as_messages(self):
        class Supervisor(Actor):
            failures = InPort(buffer=8)

            def __init__(self):
                super().__init__()
                self.seen = []

            def behaviour(self):
                # One crash is expected in this scenario; stop after it
                # so the stage can join (nothing closes this port).
                self.seen.append(self.failures.receive())
                self.stop()

        supervisor = Supervisor()
        stage = Stage("t")
        stage.spawn(supervisor)
        stage.supervisor = supervisor.failures
        stage.spawn(Flaky(crash_on=(2,)),
                    policy=RestartPolicy(max_restarts=1))
        sink = stage.spawn(Sink())
        flaky = stage.actors[1]
        connect(flaky.output, sink.input)
        stage.run(20)
        assert sink.got == [1, 3, 4]
        assert [n.fatal for n in supervisor.seen] == [False]
        assert supervisor.seen[0].actor_name == flaky.name

    def test_raising_supervisor_falls_back_to_join_propagation(self):
        def broken(_notice):
            raise RuntimeError("supervisor is broken too")

        stage = Stage("t", supervisor=broken)
        stage.spawn(Flaky(crash_on=(1,)))
        with pytest.raises(ActorError, match="iteration 1 crashed"):
            stage.run(20)


class TestDeadLetters:
    def test_send_to_closed_port_is_captured(self):
        class Quitter(Actor):
            input = InPort(int)

            def behaviour(self):
                self.stop()

        stage = Stage("t")
        quitter = stage.spawn(Quitter())
        out = OutPort(int)
        connect(out, quitter.input)
        stage.run(20)
        with pytest.raises(ChannelError, match="owner=Quitter"):
            out.send(42, timeout=1.0)
        assert len(stage.dead_letters) == 1
        letter = stage.dead_letters[0]
        assert isinstance(letter, DeadLetter)
        assert letter.item == 42 and letter.reason == "closed"

    def test_rendezvous_timeout_withdraws_the_message(self):
        class Owner:
            name = "lonely-owner"
            stage = None

        port = InPort(int, name="lonely")
        port.owner = Owner()
        out = OutPort(int)
        connect(out, port)
        with pytest.raises(ChannelError) as info:
            out.send(7, timeout=0.05)
        message = str(info.value)
        assert "owner=lonely-owner" in message
        assert "queued=" in message and "capacity=rendezvous" in message
        # The withdrawn message must not be deliverable afterwards.
        assert not port.poll()

    def test_buffer_full_timeout_reports_depth_and_owner(self):
        class Owner:
            name = "busy-owner"
            stage = None

        port = InPort(int, buffer=2, name="busy")
        port.owner = Owner()
        out = OutPort(int)
        connect(out, port)
        out.send(1)
        out.send(2)
        with pytest.raises(
            ChannelError,
            match=r"owner=busy-owner, queued=2, capacity=2",
        ):
            out.send(3, timeout=0.05)


class TestKernelActorFailover:
    def test_device_loss_fails_over_with_identical_output(self):
        n = 64
        data = {"a": list(range(n)), "out": [0] * n, "n": n}
        clean = run_kernel(SQUARE, "square", dict(data), worksize=[n])
        clean_out = clean["out"].tolist()

        reset_device_matrix()
        cl.reset_platforms()
        dispatch.configure(faults=FaultPlan([
            FaultSpec("kernel", kind=DEVICE_LOST, key="square@*R9*")
        ]))
        with tracing() as tracer:
            got = run_kernel(SQUARE, "square", dict(data), worksize=[n])
        assert got["out"].tolist() == clean_out
        counters = tracer.counters()
        assert counters["fault.failover"] == 1
        assert counters["actor.failover"] == 1
        assert counters["fault.injected.device-lost"] == 1


class TestFigure4PipelineSurvival:
    def test_lud_pipeline_survives_mid_pipeline_device_loss(self):
        n = 16
        clean = lud.run_actors(n)

        faults.clear()
        cl.reset_platforms()
        reset_device_matrix()
        # Kill the GPU on the 6th dispatch of the *middle* kernel actor
        # (lud_scale) — pivot and update lose their device too and all
        # three fail over; the factorisation must still be correct.
        dispatch.configure(faults=FaultPlan([
            FaultSpec("kernel", kind=DEVICE_LOST,
                      key="lud_scale@*R9*", index=5)
        ]))
        with tracing() as tracer:
            faulted = lud.run_actors(n)
        assert faulted.result == pytest.approx(clean.result)
        assert faulted.meta["m"] == pytest.approx(clean.meta["m"])
        counters = tracer.counters()
        assert counters["fault.injected.device-lost"] == 1
        assert counters["actor.failover"] >= 3  # all three actors moved

    def test_lud_pipeline_recovers_transient_kernel_faults_in_place(self):
        n = 16
        clean = lud.run_actors(n)

        faults.clear()
        cl.reset_platforms()
        reset_device_matrix()
        dispatch.configure(faults=FaultPlan([
            FaultSpec("kernel", kind="transient", key="lud_update@*",
                      index=3, times=2)
        ]))
        with tracing() as tracer:
            faulted = lud.run_actors(n)
        assert faulted.result == pytest.approx(clean.result)
        counters = tracer.counters()
        assert counters["fault.retry"] == 2
        assert "fault.failover" not in counters  # recovered in place
