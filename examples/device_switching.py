#!/usr/bin/env python3
"""Device switching (paper Section 6.1.1).

"Should the user wish to change the device upon which the OpenCL actor
should run, the language only requires that the device type be modified
in the actor definition.  No other change is required."

The same Mandelbrot kernel executes on the simulated GPU and CPU; only
the ``device_type`` argument changes, and the breakdowns reflect each
device's cost structure.  The second half demonstrates the paper's
*runtime* variant of the same idea: "should the developer wish to use a
different device at runtime, all that is required is to reconnect the
configuration channel to an appropriate kernel actor's configuration
channel."
"""

from repro.actors import (
    Actor,
    InPort,
    KernelActor,
    KernelRequest,
    ManagedArray,
    OutPort,
    Stage,
    connect,
    run_kernel,
)
from repro.apps.mandelbrot import KERNEL_SOURCE
from repro.runtime import device_matrix

W = H = 32
ITERS = 60


def run_on(device_type: str) -> None:
    device_matrix().reset_ledgers()
    data = {
        "out": ManagedArray.zeros(W * H, "int"),
        "w": W,
        "h": H,
        "max_iter": ITERS,
    }
    run_kernel(KERNEL_SOURCE, "mandelbrot", data, worksize=[W, H],
               device_type=device_type)
    ledger = device_matrix().combined_ledger()
    print(f"{device_type}: kernel={ledger.kernel_ns:10.0f} ns  "
          f"h2d={ledger.h2d_ns:8.0f} ns  d2h={ledger.d2h_ns:8.0f} ns")


class RetargetingHost(Actor):
    """Computes one frame per target, reconnecting its request channel
    to a different kernel actor between frames."""

    requests = OutPort()
    din = InPort()

    def __init__(self, targets: list[InPort]) -> None:
        super().__init__()
        self.targets = targets
        self.frames = 0

    def behaviour(self) -> None:
        # Re-plumb the configuration channel to the next kernel actor.
        self.requests.disconnect()
        connect(self.requests, self.targets[self.frames])

        request = KernelRequest([W, H])
        dout = OutPort()
        connect(dout, request.input)
        connect(request.output, self.din)
        self.requests.send(request)
        dout.send({
            "out": ManagedArray.zeros(W * H, "int"),
            "w": W, "h": H, "max_iter": ITERS,
        })
        self.din.receive()
        self.frames += 1
        print(f"frame {self.frames} computed")
        if self.frames == len(self.targets):
            self.stop()


def main() -> None:
    print("-- one-parameter device switch --")
    run_on("GPU")
    run_on("CPU")

    print("-- runtime re-plumbing: frame 1 on GPU, frame 2 on CPU --")
    stage = Stage("switch")
    gpu_actor = stage.spawn(KernelActor(KERNEL_SOURCE, "mandelbrot", "GPU"))
    cpu_actor = stage.spawn(KernelActor(KERNEL_SOURCE, "mandelbrot", "CPU"))
    host = stage.spawn(
        RetargetingHost([gpu_actor.requests, cpu_actor.requests])
    )
    stage.run(60.0)
    print("devices swapped by re-plumbing only; kernel code untouched")


if __name__ == "__main__":
    main()
