#!/usr/bin/env python3
"""Document ranking — the paper's real-world workload, end to end.

Synthesises a corpus, classifies it against a weight template on the
simulated GPU through the actor API, and shows the movability effect
Figure 3e reports: with ``mov`` the repeated invocations never re-copy
the unchanged corpus; without it, every repeat pays the full round trip.
"""

from repro.apps import docrank
from repro.runtime import device_matrix

DOCS, TERMS, REPEATS = 256, 64, 10


def classify(movable: bool) -> None:
    outcome = docrank.run_actors(
        DOCS, TERMS, REPEATS, device_type="GPU", movable=movable
    )
    ledger = device_matrix().combined_ledger()
    mode = "mov" if movable else "copy"
    print(
        f"[{mode:>4}] wanted-checksum={outcome.result}  "
        f"h2d={ledger.bytes_to_device:>8} B  "
        f"d2h={ledger.bytes_from_device:>8} B  "
        f"transfer={outcome.segment('to_device') + outcome.segment('from_device'):>12.0f} ns"
    )


def main() -> None:
    tf, w = docrank.generate(DOCS, TERMS)
    nonzero = sum(1 for x in tf if x)
    print(
        f"corpus: {DOCS} documents x {TERMS} terms "
        f"({nonzero} non-zero term frequencies), {REPEATS} ranking passes"
    )
    reference = docrank.run_python(DOCS, TERMS, REPEATS)
    print(f"reference checksum (single-threaded Python): {reference.result}")

    classify(movable=True)
    classify(movable=False)

    both = docrank.run_actors(DOCS, TERMS, REPEATS, movable=True)
    assert both.result == reference.result
    print("device results match the single-threaded oracle")


if __name__ == "__main__":
    main()
