#!/usr/bin/env python3
"""A pipeline of kernel actors with movable data (paper Sections 4+6.2.3).

Three kernel actors are plumbed together the way the paper's Figure 4
controller plumbs the LUD kernels: each actor's output channel feeds the
next actor's input channel.  The image is sent as a *movable* value, so
it is uploaded once, stays on the device across all three kernels, and
is only read back when host code finally touches it.

Watch the ledger: bytes_from_device stays 0 until the final host access.
"""

from repro.actors import (
    Actor,
    InPort,
    KernelActor,
    KernelRequest,
    ManagedArray,
    OutPort,
    Stage,
    connect,
    mov,
)
from repro.runtime import device_matrix

STAGES = """
__kernel void brighten(__global float *img, int n) {
    int i = get_global_id(0);
    if (i < n) { img[i] = img[i] + 16.0; }
}

__kernel void clamp_px(__global float *img, int n) {
    int i = get_global_id(0);
    if (i < n) { img[i] = clamp(img[i], 0.0, 255.0); }
}

__kernel void invert(__global float *img, int n) {
    int i = get_global_id(0);
    if (i < n) { img[i] = 255.0 - img[i]; }
}
"""

N = 4096


class Host(Actor):
    req1 = OutPort()
    req2 = OutPort()
    req3 = OutPort()
    din = InPort()

    def behaviour(self) -> None:
        requests = [KernelRequest([N]) for _ in range(3)]
        dout = OutPort(name="pipeline.dout")
        connect(dout, requests[0].input)
        connect(requests[0].output, requests[1].input)
        connect(requests[1].output, requests[2].input)
        connect(requests[2].output, self.din)
        self.req1.send(requests[0])
        self.req2.send(requests[1])
        self.req3.send(requests[2])

        image = ManagedArray([float(i % 256) for i in range(N)], (N,))
        dout.send(mov({"img": image, "n": N}))

        received = self.din.receive()
        self.image = received.value["img"]
        ledger = device_matrix().combined_ledger()
        print(f"after 3 kernels, before host access: "
              f"bytes_from_device = {ledger.bytes_from_device}")
        print("first pixels:", [self.image[i] for i in range(4)])
        ledger = device_matrix().combined_ledger()
        print(f"after host access:                   "
              f"bytes_from_device = {ledger.bytes_from_device}")
        self.stop()


def main() -> None:
    device_matrix().reset_ledgers()
    stage = Stage("pipeline")
    k1 = stage.spawn(KernelActor(STAGES, "brighten", "GPU"))
    k2 = stage.spawn(KernelActor(STAGES, "clamp_px", "GPU"))
    k3 = stage.spawn(KernelActor(STAGES, "invert", "GPU"))
    host = stage.spawn(Host())
    connect(host.req1, k1.requests)
    connect(host.req2, k2.requests)
    connect(host.req3, k3.requests)
    stage.run(60.0)

    expected = 255.0 - min(255.0, (0 % 256) + 16.0)
    assert host.image[0] == expected


if __name__ == "__main__":
    main()
