#!/usr/bin/env python3
"""Quickstart: run an OpenCL kernel through the actor API.

The kernel is ordinary OpenCL-C; `run_kernel` builds the actor plumbing
the paper describes — a host actor sends a request (worksize, groupsize
and the data channels) to a kernel actor, which compiles the kernel at
runtime, moves the data, dispatches, and sends the results back.
"""

from repro.actors import run_kernel
from repro.runtime import device_matrix

KERNEL = """
__kernel void saxpy(__global float *x, __global float *y,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
"""


def main() -> None:
    n = 1024
    data = {
        "x": [float(i) for i in range(n)],
        "y": [1.0] * n,
        "a": 2.0,
        "n": n,
    }
    result = run_kernel(KERNEL, "saxpy", data, worksize=[n],
                        device_type="GPU")

    y = result["y"]
    y = y.host() if hasattr(y, "host") else y
    print("y[:5] =", y[:5])
    assert y[3] == 2.0 * 3 + 1.0

    ledger = device_matrix().combined_ledger()
    print("simulated cost breakdown (ns):")
    for segment, ns in ledger.breakdown().items():
        print(f"  {segment:>12}: {ns:12.0f}")
    print(f"  kernel launches: {ledger.kernel_launches}")


if __name__ == "__main__":
    main()
