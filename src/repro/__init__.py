"""repro — a faithful reproduction of "Parallel Programming in
Actor-Based Applications via OpenCL" (MIDDLEWARE 2015).

Subpackages:

* ``repro.kir`` / ``repro.kernelc`` — kernel IR and the OpenCL-C-subset
  language every kernel is compiled from.
* ``repro.opencl`` — the simulated OpenCL substrate (platforms,
  contexts, queues, buffers, runtime compilation, deterministic cost
  model).
* ``repro.ensemble`` + ``repro.runtime`` — the Ensemble actor language,
  its compiler (including ``opencl`` actor kernel extraction) and VM.
* ``repro.actors`` — the Pythonic actor API (the public interface).
* ``repro.openacc`` — the pragma-based comparison baseline.
* ``repro.apps`` — the paper's five evaluation applications, each in
  five functionally-equivalent variants.
* ``repro.metrics`` / ``repro.harness`` — Table 1 and Figure 3
  regeneration.
"""

__version__ = "1.0.0"

from . import errors  # noqa: F401
