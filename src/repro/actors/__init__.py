"""Actor-based programming interface (the public API).

Exposes the Ensemble model to Python directly: actors with a repeated
``behaviour``, typed channels with optional buffers, stages, movable
(`mov`) data, and OpenCL kernels as actors.

Quick one-shot dispatch::

    from repro.actors import run_kernel

    result = run_kernel(SOURCE, "square", {"a": data, "out": out, "n": n},
                        worksize=[n])
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..runtime.mov import Movable, is_movable, mov  # noqa: F401
from ..runtime.residency import ManagedArray  # noqa: F401
from .actor import (  # noqa: F401
    Actor,
    ActorFailure,
    RestartPolicy,
    Stage,
    StopBehaviour,
)
from .channel import (  # noqa: F401
    DeadLetter,
    InPort,
    OutPort,
    channel,
    connect,
)
from .kernel_actor import KernelActor, KernelRequest  # noqa: F401


class _OneShotHost(Actor):
    """Dispatches a single request to a kernel actor and collects the
    result — the minimal host actor, used by :func:`run_kernel`."""

    requests = OutPort()
    din = InPort()

    def __init__(
        self,
        data: dict,
        worksize: Sequence[int],
        groupsize: Optional[Sequence[int]],
        movable: bool,
    ) -> None:
        super().__init__()
        self._data = data
        self._worksize = list(worksize)
        self._groupsize = list(groupsize) if groupsize is not None else None
        self._movable = movable
        self.result: Any = None

    def behaviour(self) -> None:
        request = KernelRequest(self._worksize, self._groupsize)
        dout = OutPort(name="oneshot.dout")
        connect(dout, request.input)
        connect(request.output, self.din)
        self.requests.send(request)
        dout.send(mov(self._data) if self._movable else self._data)
        received = self.din.receive()
        self.result = received.value if is_movable(received) else received
        self.stop()


def run_kernel(
    source: str,
    kernel_name: str,
    data: dict,
    worksize: Sequence[int],
    groupsize: Optional[Sequence[int]] = None,
    device_type: str = "GPU",
    device_index: int = 0,
    movable: bool = False,
    timeout: float = 120.0,
) -> dict:
    """Run one kernel dispatch through the actor machinery.

    *data* maps kernel parameter names to arrays
    (:class:`ManagedArray` or plain lists) and scalars; the returned
    dict holds the post-kernel values (host-synchronised).
    """
    stage = Stage("run_kernel")
    kernel = stage.spawn(
        KernelActor(source, kernel_name, device_type, device_index)
    )
    host = stage.spawn(_OneShotHost(data, worksize, groupsize, movable))
    connect(host.requests, kernel.requests)
    stage.run(timeout)
    result = host.result
    if isinstance(result, dict):
        for value in result.values():
            if isinstance(value, ManagedArray):
                value.sync_host()
    return result
