"""Typed, unidirectional channels with optional buffering.

Semantics follow Ensemble (paper Section 4):

* a channel is a pair of ends — an :class:`OutPort` (sender side) and an
  :class:`InPort` (receiver side) — joined by :func:`connect`;
* channels are typed; sends are checked against the declared type;
* an optional buffer makes communication asynchronous; with no buffer
  (or a full one) the system reverts to synchronous, blocking
  rendezvous;
* ends compose into 1-1, 1-n (broadcast) and n-1 (merge) topologies;
* non-movable messages are duplicated on send to preserve
  shared-nothing semantics; movable messages surrender ownership
  instead (see :mod:`repro.runtime.mov`).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ChannelClosed, ChannelError
from ..runtime.mov import Movable, copy_message, is_movable
from ..trace import current_tracer, thread_track

_port_ids = itertools.count(1)


@dataclass
class DeadLetter:
    """A message that could not be delivered (port closed, rendezvous
    abandoned).  Captured on the owning actor's stage (``Stage.dead_letters``)
    so supervision code can inspect what was lost — see docs/RELIABILITY.md.
    """

    __by_reference__ = True

    port: "InPort"
    item: Any
    reason: str

#: Sentinel meaning "no timeout" for blocking channel operations.
FOREVER: Optional[float] = None


def _type_ok(typ, value: Any) -> bool:
    if typ is None:
        return True
    payload = value.value if isinstance(value, Movable) else value
    if isinstance(typ, type):
        return isinstance(payload, typ)
    if callable(typ):
        return bool(typ(payload))
    return True


class InPort:
    """The receiving end of a channel; owns the message buffer."""

    __by_reference__ = True

    def __init__(
        self,
        typ=None,
        buffer: int = 0,
        name: str = "",
        owner=None,
    ) -> None:
        if buffer < 0:
            raise ChannelError("buffer size cannot be negative")
        self.id = next(_port_ids)
        self.typ = typ
        self.capacity = buffer
        self.name = name or f"in{self.id}"
        self.owner = owner
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._nonfull = threading.Condition(self._lock)
        self._items: deque = deque()
        self._open_sources = 0
        self._ever_attached = False
        self._closed = False
        # Receivers currently blocked with no timeout: each is
        # committed to consuming the next message, which lets
        # rendezvous sends skip their Event round trip (see _put).
        self._recv_waiting = 0

    def _describe(self) -> str:
        """Identify this port in error messages: name, owner, depth."""
        owner = getattr(self.owner, "name", None) or "unowned"
        capacity = self.capacity if self.capacity else "rendezvous"
        return (
            f"{self.name}#{self.id} (owner={owner}, "
            f"queued={len(self._items)}, capacity={capacity})"
        )

    def _dead_letter(self, item: Any, reason: str) -> None:
        """Record an undeliverable message on the owner's stage."""
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("actor.dead_letter")
        stage = getattr(self.owner, "stage", None)
        letters = getattr(stage, "dead_letters", None)
        if letters is not None:
            letters.append(DeadLetter(self, item, reason))

    # -- wiring ------------------------------------------------------------

    def _attach(self) -> None:
        with self._lock:
            if self._closed:
                raise ChannelError(f"{self.name}: connecting to a closed port")
            self._open_sources += 1
            self._ever_attached = True
            self._nonempty.notify_all()

    def _detach(self) -> None:
        with self._lock:
            self._open_sources -= 1
            if self._open_sources <= 0:
                self._nonempty.notify_all()

    # -- operations ----------------------------------------------------------

    def _put(self, item: Any, timeout: Optional[float]) -> None:
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count(
                f"mailbox.{self.name}#{self.id}",
                1.0,
                track=f"channel/{self.name}#{self.id}",
            )
        with self._lock:
            if self._closed:
                self._dead_letter(item, "closed")
                raise ChannelError(
                    f"send to closed port {self._describe()}"
                )
            if self.capacity:
                while len(self._items) >= self.capacity:
                    if not self._nonfull.wait(timeout):
                        raise ChannelError(
                            f"send to {self._describe()} timed out "
                            "(buffer full)"
                        )
                    if self._closed:
                        self._dead_letter(item, "closed")
                        raise ChannelError(
                            f"send to closed port {self._describe()}"
                        )
                self._items.append((item, None))
                self._nonempty.notify()
                return
            # Rendezvous fast path: a receiver already parked without a
            # timeout is committed to consuming this message, so the
            # handoff is as good as done — skip the Event round trip
            # (one fewer sleep/wake per pipeline step).
            if self._recv_waiting > len(self._items):
                self._items.append((item, None))
                self._nonempty.notify()
                return
            # Rendezvous: block until a receiver consumes this message.
            consumed = threading.Event()
            self._items.append((item, consumed))
            self._nonempty.notify()
        if not consumed.wait(timeout):
            # Withdraw the offer so a later receiver cannot consume a
            # message whose sender already gave up.  If the receiver
            # took it in the race with this timeout, the send succeeded.
            with self._lock:
                withdrawn = False
                for i, (_, event) in enumerate(self._items):
                    if event is consumed:
                        del self._items[i]
                        withdrawn = True
                        break
                if not withdrawn:
                    return
                self._dead_letter(item, "rendezvous-timeout")
                detail = self._describe()
            raise ChannelError(f"rendezvous send to {detail} timed out")

    def receive(self, timeout: Optional[float] = FOREVER) -> Any:
        """Take the next message, blocking until one arrives.

        Raises :class:`ChannelClosed` when every sender has closed and
        the buffer is drained — the idiomatic end-of-stream signal.
        """
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                f"receive:{self.name}",
                track=thread_track(),
                category="channel",
                port=self.name,
            ):
                item = self._receive(timeout)
            tracer.count(
                f"mailbox.{self.name}#{self.id}",
                -1.0,
                track=f"channel/{self.name}#{self.id}",
            )
            return item
        return self._receive(timeout)

    def _receive(self, timeout: Optional[float]) -> Any:
        with self._lock:
            parked = timeout is None and not self._items
            if parked:
                self._recv_waiting += 1
            try:
                while not self._items:
                    if self._closed or (
                        self._ever_attached and self._open_sources == 0
                    ):
                        raise ChannelClosed(
                            f"{self.name}: all senders closed"
                        )
                    # A port with no senders *yet* blocks: channels may
                    # be plumbed at runtime (paper Section 6.1.1).
                    if not self._nonempty.wait(timeout):
                        raise ChannelError(
                            f"receive on {self._describe()} timed out"
                        )
            finally:
                if parked:
                    self._recv_waiting -= 1
            item, consumed = self._items.popleft()
            if self.capacity:
                self._nonfull.notify()
        if consumed is not None:
            consumed.set()
        return item

    def poll(self) -> bool:
        """True when a message is waiting."""
        with self._lock:
            return bool(self._items)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._nonempty.notify_all()
            self._nonfull.notify_all()

    def __repr__(self) -> str:
        return f"<InPort {self.name} buf={self.capacity} q={len(self._items)}>"


class OutPort:
    """The sending end of a channel."""

    __by_reference__ = True

    def __init__(self, typ=None, name: str = "", owner=None) -> None:
        self.id = next(_port_ids)
        self.typ = typ
        self.name = name or f"out{self.id}"
        self.owner = owner
        self._targets: list[InPort] = []
        self._closed = False

    # -- wiring ------------------------------------------------------------

    @property
    def targets(self) -> list[InPort]:
        return list(self._targets)

    @property
    def connected(self) -> bool:
        return bool(self._targets)

    def disconnect(self) -> None:
        for target in self._targets:
            target._detach()
        self._targets.clear()

    # -- operations ----------------------------------------------------------

    def send(self, value: Any, timeout: Optional[float] = FOREVER) -> None:
        """Send *value* to every connected receiver.

        Non-movable values are duplicated per receiver (shared-nothing);
        a :class:`~repro.runtime.mov.Movable` surrenders ownership and
        therefore allows exactly one receiver.
        """
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                f"send:{self.name}",
                track=thread_track(),
                category="channel",
                port=self.name,
                targets=len(self._targets),
            ):
                self._send(value, timeout)
            return
        self._send(value, timeout)

    def _send(self, value: Any, timeout: Optional[float]) -> None:
        if self._closed:
            raise ChannelError(f"{self.name}: send on a closed port")
        if not self._targets:
            raise ChannelError(f"{self.name}: send on an unconnected channel")
        if not _type_ok(self.typ, value):
            raise ChannelError(
                f"{self.name}: message of type "
                f"{type(value).__name__} violates the channel type"
            )
        if is_movable(value):
            if len(self._targets) != 1:
                raise ChannelError(
                    f"{self.name}: movable data cannot be broadcast to "
                    f"{len(self._targets)} receivers"
                )
            payload = value.surrender()
            self._targets[0]._put(Movable(payload), timeout)
            return
        for target in self._targets:
            target._put(copy_message(value), timeout)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for target in self._targets:
                target._detach()

    def __repr__(self) -> str:
        return f"<OutPort {self.name} -> {len(self._targets)} target(s)>"


def connect(out_port: OutPort, in_port: InPort) -> None:
    """Join *out_port* to *in_port* (paper: ``connect s.output to r.input``).

    Calling connect repeatedly builds 1-n / n-1 topologies.
    """
    if not isinstance(out_port, OutPort) or not isinstance(in_port, InPort):
        raise ChannelError("connect needs (OutPort, InPort)")
    if out_port.typ is not None and in_port.typ is not None:
        if out_port.typ is not in_port.typ:
            raise ChannelError(
                f"type mismatch: {out_port.name} conveys "
                f"{out_port.typ!r}, {in_port.name} expects {in_port.typ!r}"
            )
    in_port._attach()
    out_port._targets.append(in_port)


def channel(
    typ=None, buffer: int = 0, name: str = ""
) -> tuple[OutPort, InPort]:
    """Create a connected (OutPort, InPort) pair — a dynamic channel.

    Mirrors Ensemble's runtime channel creation (``new in data_t`` /
    ``new out ...`` + connect), used to wire host actors to kernel
    actors at runtime.
    """
    out_port = OutPort(typ, name=f"{name}.out" if name else "")
    in_port = InPort(typ, buffer=buffer, name=f"{name}.in" if name else "")
    connect(out_port, in_port)
    return out_port, in_port
