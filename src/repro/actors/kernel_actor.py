"""OpenCL kernels represented as actors (paper Section 6).

A :class:`KernelActor` is the runtime analogue of an Ensemble ``opencl``
actor: it presents a single ``requests`` channel conveying an
:class:`KernelRequest` (the paper's ``opencl struct`` — worksize,
groupsize, and the data in/out channels), receives the data, dispatches
the kernel on its declared device, and sends the result onward.  All
OpenCL boilerplate — environment lookup, buffer creation, data movement,
argument binding, NDRange dispatch — is automated here; compare with the
hand-written ceremony in the :mod:`repro.apps` ``api_ocl`` variants.

Movability integration (Section 6.2.3): when the incoming data message
is movable, buffers written by the kernel stay device-resident and only
a reference travels onward — repeated or chained kernels touch the host
link zero times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..errors import CLDeviceLost, CLInvalidKernelArgs, RuntimeFault
from .. import kir
from ..trace import current_tracer, thread_track
from ..opencl import faults
from ..opencl.program import Program
from ..runtime.mov import Movable, is_movable
from ..runtime.oclenv import OpenCLEnvironment, get_environment
from ..runtime.residency import ManagedArray
from .actor import Actor
from .channel import InPort, OutPort


@dataclass
class KernelRequest:
    """The ``opencl struct`` a host sends to a kernel actor.

    ``input`` is the port the kernel actor receives the data on;
    ``output`` is the port it sends results to.  The host keeps the
    matching opposite ends.  A groupsize of ``None`` (or zeros, as in
    the paper's Listing 3) lets the device choose.
    """

    worksize: Sequence[int]
    groupsize: Optional[Sequence[int]] = None
    input: InPort = field(default_factory=InPort)
    output: OutPort = field(default_factory=OutPort)

    __by_reference__ = True

    def effective_groupsize(self) -> Optional[tuple[int, ...]]:
        if self.groupsize is None:
            return None
        gs = tuple(int(g) for g in self.groupsize)
        if all(g == 0 for g in gs):
            return None
        return gs


class KernelActor(Actor):
    """An actor whose behaviour body is an OpenCL kernel."""

    requests = InPort()

    def __init__(
        self,
        source: str,
        kernel_name: str,
        device_type: str = "GPU",
        device_index: int = 0,
        platform_index: int = 0,
    ) -> None:
        super().__init__()
        self.source = source
        self.kernel_name = kernel_name
        self.device_type = device_type
        self.device_index = device_index
        self.platform_index = platform_index
        self._env: Optional[OpenCLEnvironment] = None
        self._program: Optional[Program] = None
        self._fn: Optional[kir.Function] = None
        self._written: set[str] = set()
        self._read: set[str] = set()

    # -- lazy OpenCL environment ------------------------------------------

    @property
    def env(self) -> OpenCLEnvironment:
        """The actor's OpenCLEnvironment from the runtime device matrix."""
        if self._env is None:
            self._env = get_environment(
                self.device_type, self.device_index, self.platform_index
            )
        return self._env

    def _ensure_program(self) -> Program:
        if self._program is None:
            # Shared acquisition: actors with identical source reuse the
            # context's program binary (compile once, binary-load after).
            program = Program.shared(
                self.env.context, self.source, self.env.device
            )
            self._program = program
            module = program.compiled_for(self.env.device).module
            fn = module.functions.get(self.kernel_name)
            if fn is None or not fn.is_kernel:
                raise RuntimeFault(
                    f"{self.name}: no kernel {self.kernel_name!r} in source"
                )
            self._fn = fn
            self._written = kir.written_arrays(fn)
            self._read = kir.read_arrays(fn)
        return self._program

    # -- behaviour ---------------------------------------------------------

    def behaviour(self) -> None:
        request = self.requests.receive()
        if not isinstance(request, KernelRequest):
            raise RuntimeFault(
                f"{self.name}: expected a KernelRequest, got "
                f"{type(request).__name__}"
            )
        message = request.input.receive()
        movable = is_movable(message)
        payload = message.value if movable else message
        try:
            try:
                self._dispatch(request, payload)
            except CLDeviceLost:
                # The actor's device dropped off the bus: re-target a
                # surviving device and re-issue.  Managed arrays carry
                # their own residency, so inputs re-upload from the host
                # copy (or drain the lost device's buffers) on the new
                # context — outputs are identical to the fault-free run.
                self._failover()
                self._dispatch(request, payload)
            self._gate_handoff()
        except Exception:
            # A failed dispatch must not leave downstream receivers
            # blocked on the reply channel.
            request.output.close()
            raise
        if movable:
            # Forward the same movable reference: written buffers stay on
            # the device (lazy evaluation).
            request.output.send(message)
        else:
            # Shared-nothing: read everything back and send a duplicate.
            for value in payload.values():
                if isinstance(value, ManagedArray):
                    value.sync_host()
            request.output.send(payload)

    def _gate_handoff(self) -> None:
        """The stage hand-off fault site: the result forward to the
        requester's output port.

        Keyed ``<kernel>.output`` (actor ids are not run-stable; kernel
        names are — pipelines running several actors of one kernel
        should pin hand-off faults with explicit specs).  Each failed
        attempt charges one wrapper call (``api_call_ns``) as
        ``fault.ensemble.handoff`` host time on the actor's context,
        with backoff/retry exactly as the substrate gates.
        """
        if faults.active_plan() is None:
            return
        env = self.env
        faults.host_gate(
            "handoff",
            f"{self.kernel_name}.output",
            env.device.spec.api_call_ns,
            lambda ns, name, args: env.context.charge(
                "host", ns, name=name, args=args
            ),
            span_name="fault.ensemble.handoff",
        )

    def _failover(self) -> None:
        """Re-target the actor at a surviving device (device loss)."""
        from ..runtime.oclenv import device_matrix

        failed = self.env.device
        self._env = device_matrix().failover_environment(failed)
        self._program = None
        self._fn = None
        faults.count_failover()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("actor.failover")

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, request: KernelRequest, payload: Any) -> None:
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                f"kernel_actor.dispatch:{self.kernel_name}",
                track=thread_track(),
                category="actor",
                kernel=self.kernel_name,
                device_type=self.device_type,
                worksize=list(request.worksize),
            ):
                self._dispatch_inner(request, payload)
            return
        self._dispatch_inner(request, payload)

    def _dispatch_inner(self, request: KernelRequest, payload: Any) -> None:
        if not isinstance(payload, dict):
            raise RuntimeFault(
                f"{self.name}: kernel data must be a dict of "
                "parameter name -> array/scalar"
            )
        program = self._ensure_program()
        assert self._fn is not None
        kernel = program.create_kernel(self.kernel_name)
        queue = self.env.queue

        managed: dict[str, ManagedArray] = {}
        for index, param in enumerate(self._fn.params):
            try:
                value = payload[param.name]
            except KeyError:
                raise CLInvalidKernelArgs(
                    f"{self.name}: kernel parameter {param.name!r} missing "
                    f"from the data message (has {sorted(payload)})"
                ) from None
            if isinstance(param.type, kir.ArrayType):
                array = self._as_managed(value, param.type.element.kind)
                if array is not value:
                    # Promote the raw list to a managed array inside the
                    # payload so residency survives past this dispatch.
                    payload[param.name] = array
                managed[param.name] = array
                kernel.set_arg(
                    index,
                    array.to_device(queue, copy=param.name in self._read),
                )
            else:
                kernel.set_arg(index, value)

        queue.enqueue_nd_range_kernel(
            kernel, request.worksize, request.effective_groupsize()
        )
        for name in self._written:
            if name in managed:
                managed[name].mark_device_written()

    @staticmethod
    def _as_managed(value: Any, dtype: str) -> ManagedArray:
        if isinstance(value, ManagedArray):
            if value.dtype != dtype:
                raise CLInvalidKernelArgs(
                    f"array dtype {value.dtype} != kernel param {dtype}"
                )
            return value
        if isinstance(value, list):
            return ManagedArray(value, (len(value),), dtype)
        raise CLInvalidKernelArgs(
            f"kernel array argument must be a ManagedArray or list, "
            f"got {type(value).__name__}"
        )
