"""Actors and stages: the Pythonic face of the Ensemble model.

This is the "plain Java" path from paper Section 4 — applications need
not be written in the Ensemble language; they can target the runtime's
actor abstractions directly.  An actor has private state and a single
thread of control whose ``behaviour`` is repeated until the actor stops;
all actors execute within a :class:`Stage` (one memory space).

Port declaration is declarative::

    class Sender(Actor):
        output = OutPort(int)

        def __init__(self) -> None:
            super().__init__()
            self.value = 1

        def behaviour(self) -> None:
            self.output.send(self.value)
            self.value += 1

Class-level ports are templates; each instance receives fresh clones, so
two instances of an actor class never share a channel end.
"""

from __future__ import annotations

import itertools
import threading
import traceback
from typing import Optional

from ..errors import ActorError, ChannelClosed, RuntimeFault
from ..trace import current_tracer, thread_track
from .channel import InPort, OutPort, connect  # noqa: F401 (re-export)

_actor_ids = itertools.count(1)

#: How long Stage.join waits before declaring the application hung.
DEFAULT_JOIN_TIMEOUT = 60.0


class StopBehaviour(Exception):
    """Raised (via :meth:`Actor.stop`) to leave the behaviour loop."""


class Actor:
    """Base class: private state + a repeated ``behaviour`` clause."""

    def __init__(self) -> None:
        self.actor_id = next(_actor_ids)
        self.name = f"{type(self).__name__}-{self.actor_id}"
        self.stage: Optional["Stage"] = None
        self._stopped = threading.Event()
        self._instantiate_ports()

    def _instantiate_ports(self) -> None:
        """Clone class-level port templates into instance ports."""
        seen: set[str] = set()
        for klass in type(self).__mro__:
            for attr, template in vars(klass).items():
                if attr in seen:
                    continue
                if isinstance(template, InPort):
                    seen.add(attr)
                    port = InPort(
                        template.typ,
                        buffer=template.capacity,
                        name=f"{type(self).__name__}.{attr}",
                        owner=self,
                    )
                    setattr(self, attr, port)
                elif isinstance(template, OutPort):
                    seen.add(attr)
                    port = OutPort(
                        template.typ,
                        name=f"{type(self).__name__}.{attr}",
                        owner=self,
                    )
                    setattr(self, attr, port)

    # -- behaviour ---------------------------------------------------------

    def behaviour(self) -> None:
        """One iteration of the actor's behaviour clause.  Subclasses
        must override; the runtime repeats it until :meth:`stop`."""
        raise NotImplementedError(
            f"{type(self).__name__} must define behaviour()"
        )

    def stop(self) -> None:
        """Stop this actor after the current behaviour iteration."""
        raise StopBehaviour()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    # -- internals ---------------------------------------------------------

    def _run(self) -> Optional[BaseException]:
        error: Optional[BaseException] = None
        iteration = 0
        try:
            while True:
                tracer = current_tracer()
                if tracer.enabled:
                    with tracer.span(
                        f"behaviour:{self.name}",
                        track=thread_track(),
                        category="actor",
                        iteration=iteration,
                    ):
                        self.behaviour()
                else:
                    self.behaviour()
                iteration += 1
        except StopBehaviour:
            pass
        except ChannelClosed:
            # Upstream finished: draining actors stop cleanly.
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via stage
            error = exc
        finally:
            self._close_ports()
            self._stopped.set()
        return error

    def _close_ports(self) -> None:
        for value in vars(self).values():
            if isinstance(value, (InPort, OutPort)):
                value.close()

    def ports(self) -> dict[str, object]:
        return {
            attr: value
            for attr, value in vars(self).items()
            if isinstance(value, (InPort, OutPort))
        }

    def __repr__(self) -> str:
        return f"<Actor {self.name}>"


class Stage:
    """A memory space in which actors execute (paper Section 4).

    Typical use mirrors an Ensemble ``boot`` block::

        stage = Stage("home")
        s = stage.spawn(Sender())
        r = stage.spawn(Receiver())
        connect(s.output, r.input)
        stage.run()
    """

    def __init__(self, name: str = "home") -> None:
        self.name = name
        self.actors: list[Actor] = []
        self._threads: dict[int, threading.Thread] = {}
        self._errors: list[tuple[Actor, BaseException]] = []
        self._started = False

    def spawn(self, actor: Actor) -> Actor:
        """Register *actor* on this stage (threads start at :meth:`start`)."""
        if self._started:
            raise RuntimeFault("cannot spawn after the stage has started")
        if actor.stage is not None:
            raise RuntimeFault(f"{actor.name} already belongs to a stage")
        actor.stage = self
        self.actors.append(actor)
        return actor

    def start(self) -> None:
        """Create one thread per actor and begin executing behaviours."""
        if self._started:
            raise RuntimeFault("stage already started")
        self._started = True
        for actor in self.actors:
            thread = threading.Thread(
                target=self._actor_main,
                args=(actor,),
                name=f"{self.name}/{actor.name}",
                daemon=True,
            )
            self._threads[actor.actor_id] = thread
            thread.start()

    def _actor_main(self, actor: Actor) -> None:
        error = actor._run()
        if error is not None:
            self._errors.append((actor, error))

    def join(self, timeout: float = DEFAULT_JOIN_TIMEOUT) -> None:
        """Wait for every actor to stop; re-raise the first actor error."""
        deadline = timeout
        for actor in self.actors:
            thread = self._threads.get(actor.actor_id)
            if thread is None:
                continue
            thread.join(deadline)
            if thread.is_alive():
                raise ActorError(
                    f"stage {self.name!r}: actor {actor.name} did not stop "
                    f"within {timeout}s (deadlock?)"
                )
        if self._errors:
            actor, error = self._errors[0]
            detail = "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            )
            raise ActorError(f"actor {actor.name} failed:\n{detail}") from error

    def run(self, timeout: float = DEFAULT_JOIN_TIMEOUT) -> None:
        """start() + join() — the whole application lifecycle."""
        self.start()
        self.join(timeout)

    def stop_all(self) -> None:
        """Close every port, unblocking and terminating all actors."""
        for actor in self.actors:
            actor._close_ports()

    def __enter__(self) -> "Stage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._started:
                self.run()
            else:
                self.join()
        else:
            self.stop_all()

    def __repr__(self) -> str:
        return f"<Stage {self.name!r} actors={len(self.actors)}>"
