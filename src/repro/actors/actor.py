"""Actors and stages: the Pythonic face of the Ensemble model.

This is the "plain Java" path from paper Section 4 — applications need
not be written in the Ensemble language; they can target the runtime's
actor abstractions directly.  An actor has private state and a single
thread of control whose ``behaviour`` is repeated until the actor stops;
all actors execute within a :class:`Stage` (one memory space).

Port declaration is declarative::

    class Sender(Actor):
        output = OutPort(int)

        def __init__(self) -> None:
            super().__init__()
            self.value = 1

        def behaviour(self) -> None:
            self.output.send(self.value)
            self.value += 1

Class-level ports are templates; each instance receives fresh clones, so
two instances of an actor class never share a channel end.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..errors import ActorError, ChannelClosed, RuntimeFault
from ..trace import current_tracer, thread_track
from .channel import DeadLetter, InPort, OutPort, connect  # noqa: F401
from ..errors import CLInvalidValue

_actor_ids = itertools.count(1)

#: How long Stage.join waits before declaring the application hung.
DEFAULT_JOIN_TIMEOUT = 60.0


@dataclass(frozen=True)
class RestartPolicy:
    """Supervision: restart a crashed actor's behaviour loop in place.

    A crashed actor (behaviour raised something other than
    :class:`StopBehaviour` / :class:`~repro.errors.ChannelClosed`) is
    restarted on its own thread with its ports still wired, up to
    ``max_restarts`` times, sleeping ``backoff_s * restart_number``
    wall-clock seconds before each attempt.  Exhausting the budget makes
    the failure fatal: ports close and the stage records the error.
    """

    max_restarts: int = 3
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise CLInvalidValue("max_restarts must be >= 0")
        if self.backoff_s < 0:
            raise CLInvalidValue("backoff_s must be >= 0")


@dataclass
class ActorFailure:
    """One crash notice delivered to a stage's supervisor.

    ``fatal`` distinguishes a crash absorbed by a restart (the actor is
    running again) from one that exhausted its restart budget (the
    actor is gone).  Travels by reference over supervisor channels.
    """

    __by_reference__ = True

    actor_name: str
    error: BaseException
    restarts: int
    fatal: bool


class StopBehaviour(Exception):
    """Raised (via :meth:`Actor.stop`) to leave the behaviour loop."""


class Actor:
    """Base class: private state + a repeated ``behaviour`` clause."""

    def __init__(self) -> None:
        self.actor_id = next(_actor_ids)
        self.name = f"{type(self).__name__}-{self.actor_id}"
        self.stage: Optional["Stage"] = None
        self._stopped = threading.Event()
        self._instantiate_ports()

    def _instantiate_ports(self) -> None:
        """Clone class-level port templates into instance ports."""
        seen: set[str] = set()
        for klass in type(self).__mro__:
            for attr, template in vars(klass).items():
                if attr in seen:
                    continue
                if isinstance(template, InPort):
                    seen.add(attr)
                    port = InPort(
                        template.typ,
                        buffer=template.capacity,
                        name=f"{type(self).__name__}.{attr}",
                        owner=self,
                    )
                    setattr(self, attr, port)
                elif isinstance(template, OutPort):
                    seen.add(attr)
                    port = OutPort(
                        template.typ,
                        name=f"{type(self).__name__}.{attr}",
                        owner=self,
                    )
                    setattr(self, attr, port)

    # -- behaviour ---------------------------------------------------------

    def behaviour(self) -> None:
        """One iteration of the actor's behaviour clause.  Subclasses
        must override; the runtime repeats it until :meth:`stop`."""
        raise NotImplementedError(
            f"{type(self).__name__} must define behaviour()"
        )

    def stop(self) -> None:
        """Stop this actor after the current behaviour iteration."""
        raise StopBehaviour()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    # -- internals ---------------------------------------------------------

    def _run(self) -> Optional[BaseException]:
        """One life of the behaviour loop; returns the crash, if any.

        Deliberately does *not* close ports or mark the actor stopped —
        that is :meth:`_finalize`, which the stage calls only when the
        actor will not be restarted (supervision keeps channels wired
        across restarts).
        """
        error: Optional[BaseException] = None
        iteration = 0
        try:
            while True:
                tracer = current_tracer()
                if tracer.enabled:
                    with tracer.span(
                        f"behaviour:{self.name}",
                        track=thread_track(),
                        category="actor",
                        iteration=iteration,
                    ):
                        self.behaviour()
                else:
                    self.behaviour()
                iteration += 1
        except StopBehaviour:
            pass
        except ChannelClosed:
            # Upstream finished: draining actors stop cleanly.
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via stage
            error = exc
        return error

    def _finalize(self) -> None:
        """Close the ports and mark the actor stopped (end of last life)."""
        self._close_ports()
        self._stopped.set()

    def _close_ports(self) -> None:
        for value in vars(self).values():
            if isinstance(value, (InPort, OutPort)):
                value.close()

    def ports(self) -> dict[str, object]:
        return {
            attr: value
            for attr, value in vars(self).items()
            if isinstance(value, (InPort, OutPort))
        }

    def __repr__(self) -> str:
        return f"<Actor {self.name}>"


class Stage:
    """A memory space in which actors execute (paper Section 4).

    Typical use mirrors an Ensemble ``boot`` block::

        stage = Stage("home")
        s = stage.spawn(Sender())
        r = stage.spawn(Receiver())
        connect(s.output, r.input)
        stage.run()
    """

    def __init__(
        self,
        name: str = "home",
        supervisor: Union[InPort, Callable[[ActorFailure], None], None] = None,
    ) -> None:
        self.name = name
        self.actors: list[Actor] = []
        #: Crash notices (:class:`ActorFailure`), fatal and absorbed alike.
        self.supervised_failures: list[ActorFailure] = []
        #: Messages that could not be delivered (see channel.DeadLetter).
        self.dead_letters: list[DeadLetter] = []
        #: Where fatal/absorbed crash notices go: an :class:`InPort`
        #: (supervision as a message stream) or a plain callable.  With a
        #: supervisor installed, a fatal crash is *handled* — join() does
        #: not re-raise it; without one it propagates as before.
        self.supervisor = supervisor
        self._threads: dict[int, threading.Thread] = {}
        self._errors: list[tuple[Actor, BaseException]] = []
        self._policies: dict[int, RestartPolicy] = {}
        self._started = False

    def spawn(
        self, actor: Actor, policy: Optional[RestartPolicy] = None
    ) -> Actor:
        """Register *actor* on this stage (threads start at :meth:`start`).

        An optional :class:`RestartPolicy` puts the actor under
        supervision: crashes restart the behaviour loop in place instead
        of killing the thread.
        """
        if self._started:
            raise RuntimeFault("cannot spawn after the stage has started")
        if actor.stage is not None:
            raise RuntimeFault(f"{actor.name} already belongs to a stage")
        actor.stage = self
        self.actors.append(actor)
        if policy is not None:
            self._policies[actor.actor_id] = policy
        return actor

    def start(self) -> None:
        """Create one thread per actor and begin executing behaviours."""
        if self._started:
            raise RuntimeFault("stage already started")
        self._started = True
        for actor in self.actors:
            thread = threading.Thread(
                target=self._actor_main,
                args=(actor,),
                name=f"{self.name}/{actor.name}",
                daemon=True,
            )
            self._threads[actor.actor_id] = thread
            thread.start()

    def _actor_main(self, actor: Actor) -> None:
        policy = self._policies.get(actor.actor_id)
        restarts = 0
        while True:
            error = actor._run()
            if error is None:
                actor._finalize()
                return
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("actor.failure")
            if policy is not None and restarts < policy.max_restarts:
                restarts += 1
                if tracer.enabled:
                    tracer.count("actor.restart")
                self._notify_supervisor(
                    ActorFailure(actor.name, error, restarts, fatal=False)
                )
                if policy.backoff_s > 0.0:
                    time.sleep(policy.backoff_s * restarts)
                continue
            actor._finalize()
            notice = ActorFailure(actor.name, error, restarts, fatal=True)
            delivered = self._notify_supervisor(notice)
            if not delivered:
                # No supervisor: the crash propagates through join(), as
                # it always did — never a silent thread death.
                self._errors.append((actor, error))
            return

    def _notify_supervisor(self, notice: ActorFailure) -> bool:
        """Record *notice*; deliver it to the supervisor if one is set.

        Returns whether a supervisor took responsibility for it.  A
        supervisor that is itself gone (closed port, raising callable)
        does not take responsibility — the failure falls back to
        :meth:`join` propagation.
        """
        self.supervised_failures.append(notice)
        target = self.supervisor
        if target is None:
            return False
        try:
            if isinstance(target, InPort):
                target._put(notice, timeout=1.0)
            else:
                target(notice)
        except BaseException:  # noqa: BLE001 - supervisor itself is gone
            return False
        return True

    def join(self, timeout: float = DEFAULT_JOIN_TIMEOUT) -> None:
        """Wait for every actor to stop; re-raise the first actor error."""
        deadline = timeout
        for actor in self.actors:
            thread = self._threads.get(actor.actor_id)
            if thread is None:
                continue
            thread.join(deadline)
            if thread.is_alive():
                raise ActorError(
                    f"stage {self.name!r}: actor {actor.name} did not stop "
                    f"within {timeout}s (deadlock?)"
                )
        if self._errors:
            actor, error = self._errors[0]
            detail = "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            )
            raise ActorError(f"actor {actor.name} failed:\n{detail}") from error

    def run(self, timeout: float = DEFAULT_JOIN_TIMEOUT) -> None:
        """start() + join() — the whole application lifecycle."""
        self.start()
        self.join(timeout)

    def stop_all(self) -> None:
        """Close every port, unblocking and terminating all actors."""
        for actor in self.actors:
            actor._close_ports()

    def __enter__(self) -> "Stage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._started:
                self.run()
            else:
                self.join()
        else:
            self.stop_all()

    def __repr__(self) -> str:
        return f"<Stage {self.name!r} actors={len(self.actors)}>"
