"""Tokeniser for Ensemble source text.

Comments: ``//`` to end of line and ``/* ... */`` blocks.
String literals use double quotes with ``\\n``/``\\t``/``\\"`` escapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LexError

KEYWORDS = frozenset(
    {
        "type",
        "is",
        "struct",
        "interface",
        "opencl",
        "stage",
        "actor",
        "presents",
        "constructor",
        "behaviour",
        "boot",
        "function",
        "in",
        "out",
        "mov",
        "send",
        "on",
        "receive",
        "from",
        "connect",
        "to",
        "if",
        "then",
        "else",
        "for",
        "do",
        "while",
        "stop",
        "return",
        "new",
        "of",
        "local",
        "global",
        "private",
        "constant",
        "and",
        "or",
        "not",
        "true",
        "false",
        "integer",
        "real",
        "boolean",
        "string",
    }
)

OPERATORS = (
    ":=",
    ":",
    "..",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


@dataclass(frozen=True)
class Token:
    kind: str  # 'id', 'kw', 'int', 'real', 'string', 'op', 'eof'
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        col = i - line_start + 1
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, col)
            line += source.count("\n", i, end)
            i = end + 2
            nl = source.rfind("\n", 0, i)
            line_start = nl + 1 if nl != -1 else 0
            continue
        if ch == '"':
            j = i + 1
            out: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                    if j >= n:
                        break
                    out.append(_ESCAPES.get(source[j], source[j]))
                elif source[j] == "\n":
                    raise LexError("newline in string literal", line, col)
                else:
                    out.append(source[j])
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", line, col)
            tokens.append(Token("string", "".join(out), line, col))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            # Careful: `0 .. 9` uses '..' — only a real if a single '.'
            # is followed by a digit.
            if (
                j < n
                and source[j] == "."
                and j + 1 < n
                and source[j + 1].isdigit()
            ):
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] in "eE":
                    k = j + 1
                    if k < n and source[k] in "+-":
                        k += 1
                    while k < n and source[k].isdigit():
                        k += 1
                    j = k
                tokens.append(Token("real", source[i:j], line, col))
            else:
                tokens.append(Token("int", source[i:j], line, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line, col))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, 1))
    return tokens
