"""Bytecode definitions for the Ensemble VM.

A simple stack machine, analogous to the paper's modified-JVM class
files (Figure 1): each constructor, behaviour, function and the boot
block compiles to a :class:`Code` object; OpenCL actors additionally
carry a :class:`KernelPlan` with the generated kernel-C source string
stored alongside the bytecode — exactly where the paper's compiler puts
its generated C string (Section 6.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

# Opcode reference (stack effects; TOS = top of stack):
#  CONST c          -> push c
#  LOADL slot       -> push locals[slot]
#  STOREL slot      -> locals[slot] = pop
#  LOADSTATE name   -> push actor state field
#  STORESTATE name  -> state[name] = pop
#  LOADCHAN name    -> push own interface port
#  GETFIELD name    -> obj = pop; push obj.field
#  SETFIELD name    -> obj = pop; value = pop; obj.field = value
#  GETINDEX         -> idx = pop; obj = pop; push obj[idx]
#  SETINDEX         -> idx = pop; obj = pop; value = pop; obj[idx] = value
#  BINOP op         -> r = pop; l = pop; push l op r
#  UNOP op          -> v = pop; push op v
#  JUMP t / JUMPF t -> unconditional / if-false jump to instruction t
#  NEWARRAY (ndims, dtype) -> fill = pop; dims = pop*ndims (reversed)
#  NEWSTRUCT (name, argc)  -> args popped (reversed); push StructValue
#  NEWCHAN (dir, movable)  -> push fresh channel end
#  NEWACTOR (name, argc)   -> args popped; spawn actor; push handle
#  SEND movable     -> chan = pop; value = pop; send
#  RECEIVE          -> chan = pop; push received value
#  CONNECT          -> target = pop; source = pop; connect source->target
#  CALL (name, argc)   -> user function call
#  NATIVE (name, argc) -> runtime native call
#  DISPATCH         -> OpenCL kernel dispatch (plan attached to actor)
#  POP / STOP / RET

Instr = tuple[str, Any]


@dataclass
class Code:
    """One compiled code object."""

    name: str
    instrs: list[Instr] = field(default_factory=list)
    nlocals: int = 0
    param_slots: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instrs)


@dataclass
class ParamSpec:
    """How to build one kernel argument from the received data value.

    kind:
      'array_field'  — ManagedArray struct field -> device buffer
      'dim_field'    — int: shape[axis] of a struct field (flattening)
      'scalar_field' — scalar struct field, passed as a 1-element array
                       (paper Section 6.1.2) and written back after
      'array_self'   — the data value itself is the array
      'dim_self'     — int: shape[axis] of the data array
    """

    kind: str
    name: str  # kernel parameter name
    fname: str = ""  # struct field it derives from
    axis: int = 0
    dtype: str = "float"


@dataclass
class KernelPlan:
    """Everything the VM needs to dispatch an OpenCL actor's kernel."""

    kernel_name: str
    kernel_source: str
    device_type: str
    device_index: int
    platform_index: int
    req_slot: int
    data_slot: int
    data_is_struct: bool
    params: list[ParamSpec]
    worksize_field: str
    groupsize_field: str
    out_field: str
    in_movable: bool
    written_params: list[str]
    read_params: list[str]


@dataclass
class CompiledActor:
    name: str
    interface: str
    channel_specs: list[tuple[str, str, bool, int]]  # (name, dir, mov, buffer)
    state_names: list[str]
    state_init: Code
    constructor: Code
    behaviour: Code
    kernel_plan: Optional[KernelPlan] = None


@dataclass
class CompiledFunction:
    name: str
    code: Code
    nparams: int


@dataclass
class CompiledProgram:
    stage_name: str
    actors: dict[str, CompiledActor]
    functions: dict[str, CompiledFunction]
    boot: Code
    struct_fields: dict[str, list[str]] = field(default_factory=dict)
    source: str = ""
