"""Recursive-descent parser for Ensemble.

Produces the AST of :mod:`repro.ensemble.ast`.  Syntax notes relative
to the paper's listings:

* ``=`` binds a new name (type inferred); ``:=`` assigns an existing
  lvalue — exactly as in Listings 2 and 3;
* ``for i = a .. b do { ... }`` iterates inclusively;
* OpenCL actor settings use the paper's angle-bracket form:
  ``opencl <device_index=0, device_type=CPU> actor ...``;
* both ``and``/``or``/``not`` and ``&&``/``||``/``!`` are accepted.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast
from .lexer import Token, tokenize

_BASE_TYPES = ("integer", "real", "boolean", "string")


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def at_kw(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.text in words

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {tok.text or tok.kind!r}",
                tok.line,
                tok.column,
            )
        return self.next()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.column)

    # -- program ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        structs: list[ast.StructDecl] = []
        interfaces: list[ast.InterfaceDecl] = []
        stage: Optional[ast.StageDecl] = None
        while not self.at("eof"):
            if self.at_kw("type"):
                decl = self.parse_type_decl()
                if isinstance(decl, ast.StructDecl):
                    structs.append(decl)
                else:
                    interfaces.append(decl)
            elif self.at_kw("stage"):
                if stage is not None:
                    raise self.error("only one stage per program")
                stage = self.parse_stage()
            else:
                raise self.error("expected a type declaration or a stage")
        if stage is None:
            raise ParseError("program has no stage")
        return ast.Program(structs, interfaces, stage)

    # -- type declarations ---------------------------------------------

    def parse_type_decl(self):
        line = self.expect("kw", "type").line
        name = self.expect("id").text
        self.expect("kw", "is")
        if self.at_kw("opencl"):
            self.next()
            self.expect("kw", "struct")
            fields = self._paren_fields(chan_ok=True)
            return ast.StructDecl(name, fields, is_opencl=True, line=line)
        if self.at_kw("struct"):
            self.next()
            fields = self._paren_fields(chan_ok=False)
            return ast.StructDecl(name, fields, line=line)
        if self.at_kw("interface"):
            self.next()
            fields = self._paren_fields(chan_ok=True, chan_required=True)
            return ast.InterfaceDecl(name, fields, line=line)
        raise self.error("expected struct, opencl struct or interface")

    def _paren_fields(
        self, chan_ok: bool, chan_required: bool = False
    ) -> list[ast.FieldDecl]:
        self.expect("op", "(")
        fields: list[ast.FieldDecl] = []
        while not self.at("op", ")"):
            fields.append(self._field(chan_ok, chan_required))
            if not self.accept("op", ";"):
                break
        self.expect("op", ")")
        return fields

    def _field(self, chan_ok: bool, chan_required: bool) -> ast.FieldDecl:
        tok = self.peek()
        if self.at_kw("in", "out"):
            if not chan_ok:
                raise self.error("channel fields are not allowed here")
            direction = self.next().text
            movable = bool(self.accept("kw", "mov"))
            elem = self.parse_type_expr()
            name = self.expect("id").text
            buffer = 0
            if self.at("op", "[") and self.peek(1).kind == "int":
                # optional buffer: `in integer input[4]` (paper Section
                # 4: "each channel may have an optional buffer")
                self.next()
                buffer = int(self.expect("int").text)
                self.expect("op", "]")
                if direction != "in":
                    raise self.error(
                        "buffers are declared on the receiving end"
                    )
            chan = ast.ChanTypeExpr(
                direction, elem, movable, buffer, line=tok.line
            )
            return ast.FieldDecl(chan, name, line=tok.line)
        if chan_required:
            raise self.error("interface fields must be 'in' or 'out' channels")
        typ = self.parse_type_expr()
        name = self.expect("id").text
        return ast.FieldDecl(typ, name, line=tok.line)

    def parse_type_expr(self) -> ast.TypeExpr:
        tok = self.peek()
        movable = bool(self.accept("kw", "mov"))
        if self.at_kw(*_BASE_TYPES):
            base: ast.TypeExpr = ast.NamedType(self.next().text, line=tok.line)
        elif self.at("id"):
            base = ast.NamedType(self.next().text, line=tok.line)
        else:
            raise self.error("expected a type")
        dims = 0
        while self.at("op", "[") and self.peek(1).text == "]":
            self.next()
            self.next()
            dims += 1
        if dims:
            base = ast.ArrayTypeExpr(base, dims, line=tok.line)
        if movable:
            base = ast.MovType(base, line=tok.line)
        return base

    # -- stage ---------------------------------------------------------------

    def parse_stage(self) -> ast.StageDecl:
        line = self.expect("kw", "stage").line
        name = self.expect("id").text
        self.expect("op", "{")
        actors: list[ast.ActorDecl] = []
        functions: list[ast.FunctionDecl] = []
        boot: Optional[list[ast.Stmt]] = None
        while not self.at("op", "}"):
            if self.at_kw("actor", "opencl"):
                actors.append(self.parse_actor())
            elif self.at_kw("function"):
                functions.append(self.parse_function())
            elif self.at_kw("boot"):
                if boot is not None:
                    raise self.error("duplicate boot block")
                self.next()
                boot = self.parse_block()
            else:
                raise self.error("expected actor, function or boot")
        self.expect("op", "}")
        if boot is None:
            raise ParseError(f"stage {name!r} has no boot block", line, 1)
        return ast.StageDecl(name, actors, functions, boot, line=line)

    def parse_actor(self) -> ast.ActorDecl:
        line = self.peek().line
        is_opencl = False
        settings: dict[str, str] = {}
        if self.accept("kw", "opencl"):
            is_opencl = True
            if self.accept("op", "<"):
                while not self.at("op", ">"):
                    key = self.expect("id").text
                    self.expect("op", "=")
                    tok = self.next()
                    settings[key] = tok.text
                    if not self.accept("op", ","):
                        break
                self.expect("op", ">")
        self.expect("kw", "actor")
        name = self.expect("id").text
        self.expect("kw", "presents")
        interface = self.expect("id").text
        self.expect("op", "{")
        state: list[ast.StateDecl] = []
        while self.at("id") and self.peek(1).text == "=":
            sline = self.peek().line
            sname = self.next().text
            self.next()  # '='
            init = self.parse_expr()
            self.expect("op", ";")
            state.append(ast.StateDecl(sname, init, line=sline))
        self.expect("kw", "constructor")
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.at("op", ")"):
            params.append(self._param())
            while self.accept("op", ","):
                params.append(self._param())
        self.expect("op", ")")
        ctor_body = self.parse_block()
        self.expect("kw", "behaviour")
        behaviour = self.parse_block()
        self.expect("op", "}")
        return ast.ActorDecl(
            name,
            interface,
            state,
            params,
            ctor_body,
            behaviour,
            is_opencl=is_opencl,
            opencl_settings=settings,
            line=line,
        )

    def _param(self) -> ast.Param:
        line = self.peek().line
        typ = self.parse_type_expr()
        name = self.expect("id").text
        return ast.Param(typ, name, line=line)

    def parse_function(self) -> ast.FunctionDecl:
        line = self.expect("kw", "function").line
        name = self.expect("id").text
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.at("op", ")"):
            params.append(self._param())
            while self.accept("op", ","):
                params.append(self._param())
        self.expect("op", ")")
        ret_type = None
        if self.accept("op", ":"):
            ret_type = self.parse_type_expr()
        body = self.parse_block()
        return ast.FunctionDecl(name, params, ret_type, body, line=line)

    # -- statements --------------------------------------------------------

    def parse_block(self) -> list[ast.Stmt]:
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.at("op", "}"):
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if self.at_kw("send"):
            self.next()
            value = self.parse_expr()
            self.expect("kw", "on")
            channel = self.parse_expr()
            self.expect("op", ";")
            return ast.Send(value, channel, line=tok.line)
        if self.at_kw("receive"):
            self.next()
            name = self.expect("id").text
            self.expect("kw", "from")
            channel = self.parse_expr()
            self.expect("op", ";")
            return ast.Receive(name, channel, line=tok.line)
        if self.at_kw("connect"):
            self.next()
            source = self.parse_expr()
            self.expect("kw", "to")
            target = self.parse_expr()
            self.expect("op", ";")
            return ast.Connect(source, target, line=tok.line)
        if self.at_kw("if"):
            return self.parse_if()
        if self.at_kw("for"):
            self.next()
            var = self.expect("id").text
            self.expect("op", "=")
            start = self.parse_expr()
            self.expect("op", "..")
            stop = self.parse_expr()
            self.expect("kw", "do")
            body = self.parse_block()
            return ast.For(var, start, stop, body, line=tok.line)
        if self.at_kw("while"):
            self.next()
            cond = self.parse_expr()
            self.expect("kw", "do")
            body = self.parse_block()
            return ast.While(cond, body, line=tok.line)
        if self.at_kw("stop"):
            self.next()
            self.expect("op", ";")
            return ast.StopStmt(line=tok.line)
        if self.at_kw("return"):
            self.next()
            value = None if self.at("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return ast.ReturnStmt(value, line=tok.line)
        # bind / assign / expression statement
        expr = self.parse_expr()
        if self.accept("op", ":="):
            value = self.parse_expr()
            self.expect("op", ";")
            return ast.Assign(expr, value, line=tok.line)
        if self.accept("op", "="):
            if not isinstance(expr, ast.Name):
                raise ParseError(
                    "'=' binds a new name; use ':=' to assign",
                    tok.line,
                    tok.column,
                )
            value = self.parse_expr()
            self.expect("op", ";")
            return ast.Bind(expr.id, value, line=tok.line)
        self.expect("op", ";")
        return ast.ExprStmt(expr, line=tok.line)

    def parse_if(self) -> ast.If:
        tok = self.expect("kw", "if")
        cond = self.parse_expr()
        self.accept("kw", "then")
        then = self.parse_block()
        orelse: list[ast.Stmt] = []
        if self.accept("kw", "else"):
            if self.at_kw("if"):
                orelse = [self.parse_if()]
            else:
                orelse = self.parse_block()
        return ast.If(cond, then, orelse, line=tok.line)

    # -- expressions (precedence climbing) -----------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.at_kw("or") or self.at("op", "||"):
            line = self.next().line
            right = self.parse_and()
            left = ast.BinOpE("or", left, right, line=line)
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_equality()
        while self.at_kw("and") or self.at("op", "&&"):
            line = self.next().line
            right = self.parse_equality()
            left = ast.BinOpE("and", left, right, line=line)
        return left

    def parse_equality(self) -> ast.Expr:
        left = self.parse_relational()
        while self.at("op", "==") or self.at("op", "!="):
            tok = self.next()
            right = self.parse_relational()
            left = ast.BinOpE(tok.text, left, right, line=tok.line)
        return left

    def parse_relational(self) -> ast.Expr:
        left = self.parse_additive()
        while (
            self.at("op", "<")
            or self.at("op", "<=")
            or self.at("op", ">")
            or self.at("op", ">=")
        ):
            tok = self.next()
            right = self.parse_additive()
            left = ast.BinOpE(tok.text, left, right, line=tok.line)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.at("op", "+") or self.at("op", "-"):
            tok = self.next()
            right = self.parse_multiplicative()
            left = ast.BinOpE(tok.text, left, right, line=tok.line)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.at("op", "*") or self.at("op", "/") or self.at("op", "%"):
            tok = self.next()
            right = self.parse_unary()
            left = ast.BinOpE(tok.text, left, right, line=tok.line)
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if self.at("op", "-"):
            self.next()
            return ast.UnOpE("-", self.parse_unary(), line=tok.line)
        if self.at("op", "!") or self.at_kw("not"):
            self.next()
            return ast.UnOpE("not", self.parse_unary(), line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("op", "."):
                field = self.expect("id").text
                expr = ast.FieldAccess(expr, field, line=self.peek().line)
            elif self.at("op", "[") and self.peek(1).text != "]":
                self.next()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.IndexAccess(expr, index, line=self.peek().line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return ast.IntLit(int(tok.text), line=tok.line)
        if tok.kind == "real":
            self.next()
            return ast.RealLit(float(tok.text), line=tok.line)
        if tok.kind == "string":
            self.next()
            return ast.StringLit(tok.text, line=tok.line)
        if self.at_kw("true", "false"):
            self.next()
            return ast.BoolLit(tok.text == "true", line=tok.line)
        if self.at_kw("new"):
            return self.parse_new()
        if tok.kind == "id":
            self.next()
            if self.accept("op", "("):
                args: list[ast.Expr] = []
                if not self.at("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return ast.CallE(tok.text, args, line=tok.line)
            return ast.Name(tok.text, line=tok.line)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {tok.text or tok.kind!r}")

    def parse_new(self) -> ast.Expr:
        tok = self.expect("kw", "new")
        if self.at_kw("in", "out"):
            direction = self.next().text
            movable = bool(self.accept("kw", "mov"))
            element = self.parse_type_expr()
            return ast.NewChannel(direction, element, movable, line=tok.line)
        space = ""
        if self.at_kw("local"):
            self.next()
            space = "local"
        type_tok = self.peek()
        if self.at_kw(*_BASE_TYPES):
            elem_name = self.next().text
        elif self.at("id"):
            elem_name = self.next().text
        else:
            raise self.error("expected a type after 'new'")
        element = ast.NamedType(elem_name, line=type_tok.line)
        if self.at("op", "("):
            if space:
                raise self.error("'local' applies only to arrays")
            self.next()
            args: list[ast.Expr] = []
            if not self.at("op", ")"):
                args.append(self.parse_expr())
                while self.accept("op", ","):
                    args.append(self.parse_expr())
            self.expect("op", ")")
            return ast.NewStruct(elem_name, args, line=tok.line)
        dims: list[ast.Expr] = []
        while self.at("op", "[") and self.peek(1).text != "]":
            self.next()
            dims.append(self.parse_expr())
            self.expect("op", "]")
        if not dims:
            raise self.error("expected '(' args ')' or '[size]' after 'new T'")
        fill = None
        if self.accept("kw", "of"):
            fill = self.parse_expr()
        return ast.NewArray(element, dims, fill, space, line=tok.line)


def parse(source: str) -> ast.Program:
    """Parse Ensemble *source* into an AST."""
    return Parser(source).parse_program()
