"""Kernel extraction: lower an OpenCL actor's kernel region to kernel-C.

This is the paper's Section 6.1.2/6.1.3 compiler work:

* the statements between the second ``receive`` and the final ``send``
  become the body of a generated kernel function;
* struct data is flattened — each field becomes a separate kernel
  parameter; multi-dimensional arrays flatten to 1-D with generated
  index arithmetic (extra ``<field>__dim<k>`` int parameters carry the
  inner dimensions); scalar fields are passed as one-element arrays so
  kernel writes reach the host;
* functions called from the kernel region are lowered to C equivalents
  and included in the generated source;
* the result is serialised to a kernel-C string (via the kir unparser)
  and stored in the compiled actor, to be runtime-compiled through the
  ordinary OpenCL program path on first dispatch.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TypeCheckError
from .. import kir
from . import ast
from .bytecode import ParamSpec
from .types import (
    ArrT,
    BOOL,
    EType,
    INT,
    REAL,
    StructT,
    TypeTable,
)

_KIR_SCALAR = {"integer": kir.INT_T, "real": kir.FLOAT_T, "boolean": kir.BOOL_T}
_DTYPE = {"integer": "int", "real": "float", "boolean": "bool"}


def _scalar_kir(etype: EType) -> kir.ScalarType:
    try:
        return _KIR_SCALAR[str(etype)]
    except KeyError:
        raise TypeCheckError(f"{etype} has no kernel representation") from None


def _err(msg: str, node) -> TypeCheckError:
    return TypeCheckError(msg, getattr(node, "line", 0))


class KernelGenerator:
    """Lowers one OpenCL actor's kernel region."""

    def __init__(
        self,
        actor: ast.ActorDecl,
        table: TypeTable,
        data_var: str,
        data_type: EType,
        functions: list[ast.FunctionDecl],
    ) -> None:
        self.actor = actor
        self.table = table
        self.data_var = data_var
        self.data_type = data_type
        self.functions = {fn.name: fn for fn in functions}
        self.kernel_name = f"{actor.name.lower()}_kernel"
        self.module = kir.Module()
        self.params: list[ParamSpec] = []
        self.kir_params: list[kir.Param] = []
        # Ensemble name -> (kir name, EType) for kernel-region locals.
        self.locals: dict[str, EType] = {}
        # struct field name -> (EType); '' key for bare-array data.
        self.fields: dict[str, EType] = {}
        self._lowered_fns: set[str] = set()
        self._fill_counter = 0

    # ------------------------------------------------------------------
    # parameter layout
    # ------------------------------------------------------------------

    def _layout_params(self) -> None:
        if isinstance(self.data_type, StructT):
            info = self.table.struct(self.data_type.name)
            for fname, ftype in info.fields:
                self._add_field_params(fname, ftype)
        elif isinstance(self.data_type, ArrT):
            self._add_field_params("data", self.data_type, self_array=True)
            self.fields[""] = self.data_type
        else:
            raise TypeCheckError(
                f"opencl data must be a struct or array, got {self.data_type}"
            )

    def _add_field_params(
        self, fname: str, ftype: EType, self_array: bool = False
    ) -> None:
        self.fields[fname] = ftype
        if isinstance(ftype, ArrT):
            elem = _scalar_kir(ftype.scalar)
            self.kir_params.append(
                kir.Param(fname, kir.ArrayType(elem, kir.GLOBAL))
            )
            self.params.append(
                ParamSpec(
                    "array_self" if self_array else "array_field",
                    fname,
                    fname=fname,
                    dtype=_DTYPE[str(ftype.scalar)],
                )
            )
            for axis in range(1, ftype.ndim):
                dim_name = f"{fname}__dim{axis}"
                self.kir_params.append(kir.Param(dim_name, kir.INT_T))
                self.params.append(
                    ParamSpec(
                        "dim_self" if self_array else "dim_field",
                        dim_name,
                        fname=fname,
                        axis=axis,
                    )
                )
        else:
            elem = _scalar_kir(ftype)
            # Primitives travel as 1-element arrays (Section 6.1.2).
            self.kir_params.append(
                kir.Param(fname, kir.ArrayType(elem, kir.GLOBAL))
            )
            self.params.append(
                ParamSpec(
                    "scalar_field",
                    fname,
                    fname=fname,
                    dtype=_DTYPE[str(ftype)],
                )
            )

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def generate(
        self, region: list[ast.Stmt]
    ) -> tuple[str, list[ParamSpec], list[str], list[str]]:
        """Lower *region*; returns (source, params, written, read)."""
        self._layout_params()
        body = self._block(region)
        fn = kir.Function(
            self.kernel_name, self.kir_params, kir.VOID, body, is_kernel=True
        )
        self.module.add(fn)
        kir.validate(self.module)
        written = sorted(kir.written_arrays(fn))
        read = sorted(kir.read_arrays(fn))
        source = kir.unparse_module(self.module)
        return source, self.params, written, read

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _block(self, stmts: list[ast.Stmt]) -> list[kir.Stmt]:
        out: list[kir.Stmt] = []
        for stmt in stmts:
            out.extend(self._stmt(stmt))
        return out

    def _stmt(self, stmt: ast.Stmt) -> list[kir.Stmt]:
        if isinstance(stmt, ast.Bind):
            return self._bind(stmt)
        if isinstance(stmt, ast.Assign):
            return [self._assign(stmt)]
        if isinstance(stmt, ast.If):
            cond = self._expr(stmt.cond)
            return [
                kir.If(cond, self._block(stmt.then), self._block(stmt.orelse))
            ]
        if isinstance(stmt, ast.For):
            self.locals[stmt.var] = INT
            start = self._expr(stmt.start)
            stop = kir.BinOp("+", self._expr(stmt.stop), kir.Const(1))
            stop.type = kir.INT_T
            body = self._block(stmt.body)
            del self.locals[stmt.var]
            return [kir.For(stmt.var, start, stop, kir.Const(1), body)]
        if isinstance(stmt, ast.While):
            return [kir.While(self._expr(stmt.cond), self._block(stmt.body))]
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.CallE) and stmt.expr.name == "barrier":
                return [kir.Barrier()]
            return [kir.ExprStmt(self._expr(stmt.expr))]
        raise _err(
            f"{type(stmt).__name__} cannot appear in a kernel region", stmt
        )

    def _bind(self, stmt: ast.Bind) -> list[kir.Stmt]:
        if stmt.name in self.fields or stmt.name in self.locals:
            raise _err(f"kernel local {stmt.name!r} shadows a name", stmt)
        if isinstance(stmt.value, ast.NewArray):
            return self._bind_array(stmt, stmt.value)
        init = self._expr(stmt.value)
        etype = stmt.value.etype
        self.locals[stmt.name] = etype
        return [kir.Decl(stmt.name, _scalar_kir(etype), init=init)]

    def _bind_array(
        self, stmt: ast.Bind, new: ast.NewArray
    ) -> list[kir.Stmt]:
        if len(new.dims) != 1:
            raise _err(
                "kernel-local arrays must be one-dimensional", stmt
            )
        elem_et = self.table.resolve(new.element)
        elem = _scalar_kir(elem_et)
        space = kir.LOCAL if new.space == "local" else kir.PRIVATE
        size = self._expr(new.dims[0])
        self.locals[stmt.name] = ArrT(elem_et)
        out: list[kir.Stmt] = [
            kir.Decl(stmt.name, kir.ArrayType(elem, space), size=size)
        ]
        if new.fill is not None:
            # Ensemble has no uninitialised data (no NULL values): the
            # compiler emits an explicit fill loop — the very
            # initialisation overhead the paper discusses for Figure 3e.
            self._fill_counter += 1
            ivar = f"__fill{self._fill_counter}"
            fill = self._expr(new.fill)
            base = kir.Var(stmt.name)
            base.type = kir.ArrayType(elem, space)
            idx = kir.Var(ivar)
            idx.type = kir.INT_T
            if space == kir.LOCAL:
                # Group-shared arrays are filled cooperatively (strided
                # by local id) and a barrier keeps later stores from
                # racing with neighbours' fills.
                lid = kir.Call("get_local_id", [kir.Const(0)])
                lid.type = kir.INT_T
                lsz = kir.Call("get_local_size", [kir.Const(0)])
                lsz.type = kir.INT_T
                cond = kir.BinOp("<", idx, self._expr(new.dims[0]))
                cond.type = kir.BOOL_T
                step = kir.BinOp("+", idx, lsz)
                step.type = kir.INT_T
                out.append(kir.Decl(ivar, kir.INT_T, init=lid))
                out.append(
                    kir.While(cond, [
                        kir.Store(base, idx, fill),
                        kir.Assign(ivar, step),
                    ])
                )
                out.append(kir.Barrier())
            else:
                out.append(
                    kir.For(
                        ivar,
                        kir.Const(0),
                        self._expr(new.dims[0]),
                        kir.Const(1),
                        [kir.Store(base, idx, fill)],
                    )
                )
        return out

    def _assign(self, stmt: ast.Assign) -> kir.Stmt:
        value = self._expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Name):
            if target.id not in self.locals:
                raise _err(
                    f"cannot assign to {target.id!r} inside a kernel", stmt
                )
            return kir.Assign(target.id, value)
        if isinstance(target, ast.FieldAccess):
            fname = self._data_field(target)
            ftype = self.fields[fname]
            if isinstance(ftype, ArrT):
                raise _err("cannot assign a whole array field", stmt)
            base = kir.Var(fname)
            base.type = kir.ArrayType(_scalar_kir(ftype), kir.GLOBAL)
            return kir.Store(base, kir.Const(0), value)
        if isinstance(target, ast.IndexAccess):
            base, index = self._flatten_index(target)
            return kir.Store(base, index, value)
        raise _err("invalid kernel assignment target", stmt)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> kir.Expr:
        node = self._expr_inner(expr)
        return node

    def _expr_inner(self, expr: ast.Expr) -> kir.Expr:
        if isinstance(expr, ast.IntLit):
            return kir.Const(expr.value)
        if isinstance(expr, ast.RealLit):
            return kir.Const(float(expr.value))
        if isinstance(expr, ast.BoolLit):
            return kir.Const(bool(expr.value))
        if isinstance(expr, ast.Name):
            if expr.id in self.locals:
                var = kir.Var(expr.id)
                var.type = self._kir_type(self.locals[expr.id])
                return var
            if expr.id == self.data_var and "" in self.fields:
                var = kir.Var("data")
                var.type = self._kir_type(self.fields[""])
                return var
            raise _err(
                f"{expr.id!r} is not visible inside the kernel region", expr
            )
        if isinstance(expr, ast.FieldAccess):
            fname = self._data_field(expr)
            ftype = self.fields[fname]
            if isinstance(ftype, ArrT):
                var = kir.Var(fname)
                var.type = self._kir_type(ftype)
                return var
            # Scalar field: element 0 of its 1-element carrier array.
            base = kir.Var(fname)
            base.type = kir.ArrayType(_scalar_kir(ftype), kir.GLOBAL)
            load = kir.Index(base, kir.Const(0))
            load.type = _scalar_kir(ftype)
            return load
        if isinstance(expr, ast.IndexAccess):
            base, index = self._flatten_index(expr)
            load = kir.Index(base, index)
            load.type = _scalar_kir(expr.etype)
            return load
        if isinstance(expr, ast.BinOpE):
            op = {"and": "&&", "or": "||"}.get(expr.op, expr.op)
            node = kir.BinOp(op, self._expr(expr.left), self._expr(expr.right))
            node.type = self._kir_type(expr.etype)
            return node
        if isinstance(expr, ast.UnOpE):
            op = "!" if expr.op == "not" else expr.op
            node = kir.UnOp(op, self._expr(expr.operand))
            node.type = self._kir_type(expr.etype)
            return node
        if isinstance(expr, ast.CallE):
            return self._call(expr)
        raise _err(
            f"{type(expr).__name__} cannot appear in a kernel region", expr
        )

    def _call(self, expr: ast.CallE) -> kir.Expr:
        args = [self._expr(a) for a in expr.args]
        if expr.name == "intToReal":
            cast = kir.Cast(kir.FLOAT_T, args[0])
            cast.type = kir.FLOAT_T
            return cast
        if expr.name == "realToInt":
            cast = kir.Cast(kir.INT_T, args[0])
            cast.type = kir.INT_T
            return cast
        node = kir.Call(expr.name, args)
        if expr.name in self.functions:
            self._lower_function(expr.name)
        node.type = self._kir_type(expr.etype) if expr.etype != "void" else None
        if str(expr.etype) in _KIR_SCALAR:
            node.type = _KIR_SCALAR[str(expr.etype)]
        else:
            node.type = None
        return node

    def _lower_function(self, name: str) -> None:
        """Generate a C equivalent of a stage function used by the kernel
        (paper: 'the compiler will generate C equivalents within this
        string')."""
        if name in self._lowered_fns:
            return
        self._lowered_fns.add(name)
        fn = self.functions[name]
        params_info, ret = self.table.functions[name]
        saved_locals = self.locals
        self.locals = {}
        kparams: list[kir.Param] = []
        for pname, ptype in params_info:
            if isinstance(ptype, ArrT):
                raise _err(
                    f"function {name!r} used in a kernel cannot take "
                    "array parameters",
                    fn,
                )
            kparams.append(kir.Param(pname, _scalar_kir(ptype)))
            self.locals[pname] = ptype
        body = self._fn_block(fn.body)
        self.locals = saved_locals
        ret_t = kir.VOID if str(ret) == "void" else _scalar_kir(ret)
        self.module.add(kir.Function(name, kparams, ret_t, body))

    def _fn_block(self, stmts: list[ast.Stmt]) -> list[kir.Stmt]:
        out: list[kir.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ast.ReturnStmt):
                value = (
                    self._expr(stmt.value) if stmt.value is not None else None
                )
                out.append(kir.Return(value))
            else:
                out.extend(self._stmt(stmt))
        return out

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _data_field(self, expr: ast.FieldAccess) -> str:
        if not (
            isinstance(expr.obj, ast.Name) and expr.obj.id == self.data_var
        ):
            raise _err(
                "only fields of the received data are accessible in a "
                "kernel region",
                expr,
            )
        if expr.field not in self.fields:
            raise _err(f"unknown data field {expr.field!r}", expr)
        return expr.field

    def _flatten_index(
        self, expr: ast.IndexAccess
    ) -> tuple[kir.Expr, kir.Expr]:
        """Collapse ``base[i0][i1]...`` into (kir base var, flat index)."""
        indices: list[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.IndexAccess):
            indices.append(node.index)
            node = node.obj
        indices.reverse()
        if isinstance(node, ast.FieldAccess):
            fname = self._data_field(node)
            ftype = self.fields[fname]
        elif isinstance(node, ast.Name):
            if node.id in self.locals:
                fname = node.id
                ftype = self.locals[node.id]
            elif node.id == self.data_var and "" in self.fields:
                fname = "data"
                ftype = self.fields[""]
            else:
                raise _err(f"cannot index {node.id!r} in a kernel", node)
        else:
            raise _err("unsupported kernel array expression", expr)
        if not isinstance(ftype, ArrT):
            raise _err(f"{fname!r} is not an array", expr)
        ndim = ftype.ndim
        if len(indices) != ndim:
            raise _err(
                f"kernel array access must supply all {ndim} indices",
                expr,
            )
        flat = self._expr(indices[0])
        for axis in range(1, ndim):
            dim = kir.Var(f"{fname}__dim{axis}")
            dim.type = kir.INT_T
            mul = kir.BinOp("*", flat, dim)
            mul.type = kir.INT_T
            flat = kir.BinOp("+", mul, self._expr(indices[axis]))
            flat.type = kir.INT_T
        base = kir.Var(fname)
        base.type = self._kir_type_flat(ftype)
        return base, flat

    def _kir_type(self, etype: EType) -> Optional[kir.Type]:
        if isinstance(etype, ArrT):
            return self._kir_type_flat(etype)
        if str(etype) in _KIR_SCALAR:
            return _KIR_SCALAR[str(etype)]
        return None

    def _kir_type_flat(self, etype: ArrT) -> kir.ArrayType:
        return kir.ArrayType(_scalar_kir(etype.scalar), kir.GLOBAL)
