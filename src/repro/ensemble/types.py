"""Semantic types of the Ensemble language and the program type table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import TypeCheckError
from . import ast


class EType:
    """Base class of semantic types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


class _Simple(EType):
    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, _Simple) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("simple", self.name))


INT = _Simple("integer")
REAL = _Simple("real")
BOOL = _Simple("boolean")
STRING = _Simple("string")
VOID = _Simple("void")

NUMERIC = (INT, REAL)


@dataclass(frozen=True)
class ArrT(EType):
    """An array type; multi-dimensional arrays nest (`real[][]` is
    ArrT(ArrT(REAL)))."""

    element: EType

    def __str__(self) -> str:
        return f"{self.element}[]"

    @property
    def ndim(self) -> int:
        inner = self.element
        n = 1
        while isinstance(inner, ArrT):
            n += 1
            inner = inner.element
        return n

    @property
    def scalar(self) -> EType:
        inner: EType = self
        while isinstance(inner, ArrT):
            inner = inner.element
        return inner


@dataclass(frozen=True)
class StructT(EType):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ChanEndT(EType):
    direction: str  # 'in' | 'out'
    element: EType
    movable: bool = False

    def __str__(self) -> str:
        movtxt = "mov " if self.movable else ""
        return f"{self.direction} {movtxt}{self.element}"


@dataclass(frozen=True)
class ActorT(EType):
    name: str

    def __str__(self) -> str:
        return f"actor {self.name}"


@dataclass
class StructInfo:
    name: str
    fields: list[tuple[str, EType]]
    is_opencl: bool = False
    # For opencl structs: resolved roles.
    worksize_field: str = ""
    groupsize_field: str = ""
    in_field: str = ""
    out_field: str = ""
    in_movable: bool = False

    def field_type(self, fname: str) -> EType:
        for name, typ in self.fields:
            if name == fname:
                return typ
        raise TypeCheckError(f"struct {self.name} has no field {fname!r}")

    def has_field(self, fname: str) -> bool:
        return any(name == fname for name, _ in self.fields)


@dataclass
class InterfaceInfo:
    name: str
    channels: list[tuple[str, ChanEndT]]
    buffers: dict[str, int] = field(default_factory=dict)

    def channel_type(self, cname: str) -> ChanEndT:
        for name, typ in self.channels:
            if name == cname:
                return typ
        raise TypeCheckError(
            f"interface {self.name} has no channel {cname!r}"
        )


@dataclass
class ActorInfo:
    name: str
    interface: str
    ctor_params: list[tuple[str, EType]]
    is_opencl: bool = False
    settings: dict[str, str] = field(default_factory=dict)


class TypeTable:
    """All named types of one program."""

    def __init__(self) -> None:
        self.structs: dict[str, StructInfo] = {}
        self.interfaces: dict[str, InterfaceInfo] = {}
        self.actors: dict[str, ActorInfo] = {}
        self.functions: dict[str, tuple[list[tuple[str, EType]], EType]] = {}

    # -- resolution ---------------------------------------------------------

    def resolve(self, expr: ast.TypeExpr) -> EType:
        """Resolve a syntactic type expression to a semantic type."""
        if isinstance(expr, ast.MovType):
            # movability is carried on channel ends, not on value types
            return self.resolve(expr.inner)
        if isinstance(expr, ast.NamedType):
            simple = {
                "integer": INT,
                "real": REAL,
                "boolean": BOOL,
                "string": STRING,
            }.get(expr.name)
            if simple is not None:
                return simple
            if expr.name in self.structs:
                return StructT(expr.name)
            if expr.name in self.actors:
                return ActorT(expr.name)
            raise TypeCheckError(f"unknown type {expr.name!r}", expr.line)
        if isinstance(expr, ast.ArrayTypeExpr):
            typ = self.resolve(expr.element)
            for _ in range(expr.dims):
                typ = ArrT(typ)
            return typ
        if isinstance(expr, ast.ChanTypeExpr):
            elem = self.resolve(expr.element)
            movable = expr.movable or isinstance(expr.element, ast.MovType)
            return ChanEndT(expr.direction, elem, movable)
        raise TypeCheckError(f"cannot resolve type {expr!r}")

    def struct(self, name: str) -> StructInfo:
        try:
            return self.structs[name]
        except KeyError:
            raise TypeCheckError(f"unknown struct {name!r}") from None

    def interface(self, name: str) -> InterfaceInfo:
        try:
            return self.interfaces[name]
        except KeyError:
            raise TypeCheckError(f"unknown interface {name!r}") from None

    def actor(self, name: str) -> ActorInfo:
        try:
            return self.actors[name]
        except KeyError:
            raise TypeCheckError(f"unknown actor {name!r}") from None


def assignable(target: EType, value: EType) -> bool:
    """True when *value* may be assigned to *target* (int widens to real)."""
    if target == value:
        return True
    if target == REAL and value == INT:
        return True
    return False
