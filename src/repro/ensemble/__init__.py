"""The Ensemble actor language: parser, type checker, compiler.

End-to-end usage::

    from repro import ensemble

    compiled = ensemble.compile_source(SOURCE)
    result = ensemble.run_source(SOURCE)      # boots and runs the stage
    print(result.output)

The execution engine lives in :mod:`repro.runtime.vm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import Program  # noqa: F401
from .bytecode import CompiledActor, CompiledProgram, KernelPlan  # noqa: F401
from .compiler import compile_program  # noqa: F401
from .parser import parse  # noqa: F401
from .typecheck import typecheck  # noqa: F401
from .types import TypeTable  # noqa: F401


def compile_source(source: str) -> CompiledProgram:
    """Parse, type-check and compile Ensemble *source* to bytecode."""
    program = parse(source)
    table = typecheck(program)
    compiled = compile_program(program, table)
    compiled.source = source
    return compiled


@dataclass
class RunResult:
    """Outcome of :func:`run_source`."""

    output: list[str] = field(default_factory=list)
    vm: object = None

    @property
    def text(self) -> str:
        return "".join(self.output)


def run_source(
    source: str, timeout: float = 120.0, echo: bool = False
) -> RunResult:
    """Compile and execute an Ensemble program; returns its print output."""
    from ..runtime.vm import EnsembleVM

    compiled = compile_source(source)
    vm = EnsembleVM(compiled, echo=echo)
    vm.run(timeout)
    return RunResult(output=vm.output, vm=vm)
