"""Semantic analysis for Ensemble programs.

Three concerns, mirroring the paper's compiler:

1. **Type checking** with local inference (``=`` binds, ``:=`` assigns),
   strong int/real separation (int widens to real, never the reverse
   implicitly) and typed channel ends.
2. **OpenCL actor structure** (Section 6.1.1/6.1.2): an ``opencl`` actor
   presents an interface with a single in-channel conveying an
   ``opencl struct``; its behaviour must start with the two ``receive``
   statements and end with a ``send``; everything between is the kernel
   region, restricted to kernel-compatible constructs plus the OpenCL
   work-item/math builtins.
3. **Movability analysis** (Section 4): a value sent on a ``mov``
   channel must not be read again until it is reassigned; violations are
   compile-time errors.

Every expression node gets an ``etype`` attribute used by the compiler
and the kernel extractor.
"""

from __future__ import annotations

from typing import Optional

from ..errors import MovabilityError, TypeCheckError
from . import ast
from .types import (
    ActorInfo,
    ActorT,
    ArrT,
    BOOL,
    ChanEndT,
    EType,
    INT,
    InterfaceInfo,
    NUMERIC,
    REAL,
    STRING,
    StructInfo,
    StructT,
    TypeTable,
    VOID,
    assignable,
)

# Host-side native functions provided by the runtime (system actors /
# invokenative operations in the paper's VM).
NATIVES: dict[str, tuple[list[EType], EType]] = {
    "printString": ([STRING], VOID),
    "printInt": ([INT], VOID),
    "printReal": ([REAL], VOID),
    "printBool": ([BOOL], VOID),
    "intToReal": ([INT], REAL),
    "realToInt": ([REAL], INT),
    "random": ([], REAL),
    "randomInt": ([INT], INT),
    "clockMillis": ([], INT),
}

# OpenCL work-item builtins, legal only inside a kernel region.
WORKITEM: dict[str, tuple[list[EType], EType]] = {
    "get_global_id": ([INT], INT),
    "get_local_id": ([INT], INT),
    "get_group_id": ([INT], INT),
    "get_global_size": ([INT], INT),
    "get_local_size": ([INT], INT),
    "get_num_groups": ([INT], INT),
    "barrier": ([], VOID),
}

# Math builtins: available both on the host and inside kernels
# ("the standard set of OpenCL calls ... including the math functions").
MATH: dict[str, tuple[list[EType], EType]] = {
    "sqrt": ([REAL], REAL),
    "fabs": ([REAL], REAL),
    "exp": ([REAL], REAL),
    "log": ([REAL], REAL),
    "sin": ([REAL], REAL),
    "cos": ([REAL], REAL),
    "pow": ([REAL, REAL], REAL),
    "floor": ([REAL], REAL),
    "ceil": ([REAL], REAL),
    "fmin": ([REAL, REAL], REAL),
    "fmax": ([REAL, REAL], REAL),
    "atan2": ([REAL, REAL], REAL),
}


class Scope:
    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.names: dict[str, EType] = {}

    def declare(self, name: str, typ: EType, line: int = 0) -> None:
        if name in self.names:
            raise TypeCheckError(f"{name!r} is already bound", line)
        self.names[name] = typ

    def lookup(self, name: str, line: int = 0) -> EType:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        raise TypeCheckError(f"unknown name {name!r}", line)

    def has(self, name: str) -> bool:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False

    def rebind(self, name: str, typ: EType, line: int = 0) -> None:
        """receive may rebind an existing name of the same type."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                if scope.names[name] != typ:
                    raise TypeCheckError(
                        f"receive rebinds {name!r} from "
                        f"{scope.names[name]} to {typ}",
                        line,
                    )
                return
            scope = scope.parent
        self.names[name] = typ


class Checker:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.table = TypeTable()
        self._ctx = "host"  # 'host' | 'kernel' | 'boot'
        self._current_fn_ret: Optional[EType] = None
        self._in_actor = False

    # ==================================================================
    # entry point
    # ==================================================================

    def run(self) -> TypeTable:
        self._collect_names()
        self._resolve_structs()
        self._resolve_interfaces()
        self._resolve_signatures()
        for fn in self.program.stage.functions:
            self._check_function(fn)
        for actor in self.program.stage.actors:
            self._check_actor(actor)
        self._check_boot()
        for actor in self.program.stage.actors:
            analyse_movability(actor, self.table)
        return self.table

    # ==================================================================
    # declaration passes
    # ==================================================================

    def _collect_names(self) -> None:
        for struct in self.program.structs:
            if struct.name in self.table.structs:
                raise TypeCheckError(
                    f"duplicate type {struct.name!r}", struct.line
                )
            self.table.structs[struct.name] = StructInfo(
                struct.name, [], is_opencl=struct.is_opencl
            )
        for iface in self.program.interfaces:
            self.table.interfaces[iface.name] = InterfaceInfo(iface.name, [])
        for actor in self.program.stage.actors:
            if actor.name in self.table.actors:
                raise TypeCheckError(
                    f"duplicate actor {actor.name!r}", actor.line
                )
            self.table.actors[actor.name] = ActorInfo(
                actor.name,
                actor.interface,
                [],
                is_opencl=actor.is_opencl,
                settings=dict(actor.opencl_settings),
            )

    def _resolve_structs(self) -> None:
        for struct in self.program.structs:
            info = self.table.structs[struct.name]
            for fdecl in struct.fields:
                ftype = self.table.resolve(fdecl.type)
                info.fields.append((fdecl.name, ftype))
            if struct.is_opencl:
                self._validate_opencl_struct(struct, info)

    def _validate_opencl_struct(
        self, struct: ast.StructDecl, info: StructInfo
    ) -> None:
        """Enforce the paper's shape: two integer arrays (worksize and
        groupsize) plus an in channel and an out channel."""
        int_arrays = [
            name for name, typ in info.fields if typ == ArrT(INT)
        ]
        ins = [
            (name, typ)
            for name, typ in info.fields
            if isinstance(typ, ChanEndT) and typ.direction == "in"
        ]
        outs = [
            (name, typ)
            for name, typ in info.fields
            if isinstance(typ, ChanEndT) and typ.direction == "out"
        ]
        if len(int_arrays) != 2 or len(ins) != 1 or len(outs) != 1:
            raise TypeCheckError(
                f"opencl struct {struct.name!r} must have two integer "
                "arrays (worksize, groupsize), one in channel and one "
                "out channel",
                struct.line,
            )
        if len(info.fields) != 4:
            raise TypeCheckError(
                f"opencl struct {struct.name!r} has extra fields",
                struct.line,
            )
        info.worksize_field, info.groupsize_field = int_arrays
        info.in_field = ins[0][0]
        info.out_field = outs[0][0]
        info.in_movable = ins[0][1].movable

    def _resolve_interfaces(self) -> None:
        for iface in self.program.interfaces:
            info = self.table.interfaces[iface.name]
            for chan in iface.channels:
                ctype = self.table.resolve(chan.type)
                if not isinstance(ctype, ChanEndT):
                    raise TypeCheckError(
                        f"interface field {chan.name!r} is not a channel",
                        chan.line,
                    )
                info.channels.append((chan.name, ctype))
                if isinstance(chan.type, ast.ChanTypeExpr):
                    info.buffers[chan.name] = chan.type.buffer

    def _resolve_signatures(self) -> None:
        for fn in self.program.stage.functions:
            if fn.name in NATIVES or fn.name in MATH:
                raise TypeCheckError(
                    f"function {fn.name!r} shadows a builtin", fn.line
                )
            params = [
                (p.name, self.table.resolve(p.type)) for p in fn.params
            ]
            ret = self.table.resolve(fn.ret_type) if fn.ret_type else VOID
            self.table.functions[fn.name] = (params, ret)
        for actor in self.program.stage.actors:
            info = self.table.actors[actor.name]
            info.ctor_params = [
                (p.name, self.table.resolve(p.type))
                for p in actor.constructor_params
            ]
            if actor.interface not in self.table.interfaces:
                raise TypeCheckError(
                    f"actor {actor.name!r} presents unknown interface "
                    f"{actor.interface!r}",
                    actor.line,
                )

    # ==================================================================
    # functions
    # ==================================================================

    def _check_function(self, fn: ast.FunctionDecl) -> None:
        params, ret = self.table.functions[fn.name]
        scope = Scope()
        for name, typ in params:
            scope.declare(name, typ, fn.line)
        self._current_fn_ret = ret
        self._check_block(fn.body, scope)
        self._current_fn_ret = None

    # ==================================================================
    # actors
    # ==================================================================

    def _actor_scope(self, actor: ast.ActorDecl) -> Scope:
        """State fields + interface channels are in scope inside an actor."""
        scope = Scope()
        iface = self.table.interface(actor.interface)
        for cname, ctype in iface.channels:
            scope.declare(cname, ctype, actor.line)
        return scope

    def _check_actor(self, actor: ast.ActorDecl) -> None:
        self._in_actor = True
        scope = self._actor_scope(actor)
        for state in actor.state:
            typ = self._check_expr(state.init, scope)
            if typ == VOID:
                raise TypeCheckError(
                    f"state field {state.name!r} has void type", state.line
                )
            scope.declare(state.name, typ, state.line)
        ctor_scope = Scope(scope)
        for pname, ptype in self.table.actor(actor.name).ctor_params:
            ctor_scope.declare(pname, ptype, actor.line)
        self._check_block(actor.constructor_body, ctor_scope)
        if actor.is_opencl:
            self._check_opencl_actor(actor, scope)
        else:
            self._check_block(actor.behaviour, Scope(scope))
        self._in_actor = False

    def _check_opencl_actor(self, actor: ast.ActorDecl, scope: Scope) -> None:
        iface = self.table.interface(actor.interface)
        if len(iface.channels) != 1:
            raise TypeCheckError(
                f"opencl actor {actor.name!r}: interface must contain "
                "a single channel",
                actor.line,
            )
        cname, ctype = iface.channels[0]
        if ctype.direction != "in" or not isinstance(ctype.element, StructT):
            raise TypeCheckError(
                f"opencl actor {actor.name!r}: the channel must be an "
                "in channel conveying an opencl struct",
                actor.line,
            )
        sinfo = self.table.struct(ctype.element.name)
        if not sinfo.is_opencl:
            raise TypeCheckError(
                f"opencl actor {actor.name!r}: {sinfo.name} is not an "
                "opencl struct",
                actor.line,
            )
        body = actor.behaviour
        if len(body) < 3:
            raise TypeCheckError(
                f"opencl actor {actor.name!r}: behaviour must contain "
                "receive, receive, ..., send",
                actor.line,
            )
        first, second, last = body[0], body[1], body[-1]
        if not (
            isinstance(first, ast.Receive)
            and isinstance(first.channel, ast.Name)
            and first.channel.id == cname
        ):
            raise TypeCheckError(
                f"opencl actor {actor.name!r}: the first statement must "
                f"receive from {cname!r}",
                getattr(first, "line", actor.line),
            )
        if not (
            isinstance(second, ast.Receive)
            and isinstance(second.channel, ast.FieldAccess)
            and isinstance(second.channel.obj, ast.Name)
            and second.channel.obj.id == first.name
            and second.channel.field == sinfo.in_field
        ):
            raise TypeCheckError(
                f"opencl actor {actor.name!r}: the second statement must "
                f"receive the data from {first.name}.{sinfo.in_field}",
                getattr(second, "line", actor.line),
            )
        if not (
            isinstance(last, ast.Send)
            and isinstance(last.channel, ast.FieldAccess)
            and isinstance(last.channel.obj, ast.Name)
            and last.channel.obj.id == first.name
            and last.channel.field == sinfo.out_field
        ):
            raise TypeCheckError(
                f"opencl actor {actor.name!r}: the last statement must "
                f"send on {first.name}.{sinfo.out_field}",
                getattr(last, "line", actor.line),
            )
        # Type the prologue / kernel region / epilogue.
        inner = Scope(scope)
        self._check_stmt(first, inner)
        self._check_stmt(second, inner)
        self._ctx = "kernel"
        try:
            kernel_scope = Scope(inner)
            for stmt in body[2:-1]:
                self._check_kernel_stmt(stmt, kernel_scope, second.name)
        finally:
            self._ctx = "host"
        self._check_stmt(last, inner)

    def _check_kernel_stmt(
        self, stmt: ast.Stmt, scope: Scope, data_var: str
    ) -> None:
        if isinstance(
            stmt, (ast.Send, ast.Receive, ast.Connect, ast.StopStmt,
                   ast.ReturnStmt)
        ):
            raise TypeCheckError(
                f"{type(stmt).__name__} is not allowed inside a kernel "
                "region",
                stmt.line,
            )
        if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.CallE):
            if stmt.expr.name.startswith("print"):
                raise TypeCheckError(
                    "print statements are not allowed in kernels", stmt.line
                )
        self._check_stmt(stmt, scope)

    # ==================================================================
    # boot
    # ==================================================================

    def _check_boot(self) -> None:
        self._ctx = "boot"
        try:
            self._check_block(self.program.stage.boot, Scope())
        finally:
            self._ctx = "host"

    # ==================================================================
    # statements
    # ==================================================================

    def _check_block(self, stmts: list[ast.Stmt], scope: Scope) -> None:
        for stmt in stmts:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Bind):
            typ = self._check_expr(stmt.value, scope)
            if typ == VOID:
                raise TypeCheckError(
                    f"cannot bind {stmt.name!r} to a void value", stmt.line
                )
            scope.declare(stmt.name, typ, stmt.line)
        elif isinstance(stmt, ast.Assign):
            target = self._check_lvalue(stmt.target, scope)
            value = self._check_expr(stmt.value, scope)
            if not assignable(target, value):
                raise TypeCheckError(
                    f"cannot assign {value} to {target}", stmt.line
                )
        elif isinstance(stmt, ast.Send):
            chan = self._check_expr(stmt.channel, scope)
            if not isinstance(chan, ChanEndT) or chan.direction != "out":
                raise TypeCheckError(
                    f"send needs an out channel, got {chan}", stmt.line
                )
            value = self._check_expr(stmt.value, scope)
            if not assignable(chan.element, value):
                raise TypeCheckError(
                    f"sending {value} on a channel of {chan.element}",
                    stmt.line,
                )
        elif isinstance(stmt, ast.Receive):
            chan = self._check_expr(stmt.channel, scope)
            if not isinstance(chan, ChanEndT) or chan.direction != "in":
                raise TypeCheckError(
                    f"receive needs an in channel, got {chan}", stmt.line
                )
            scope.rebind(stmt.name, chan.element, stmt.line)
        elif isinstance(stmt, ast.Connect):
            src = self._check_expr(stmt.source, scope)
            dst = self._check_expr(stmt.target, scope)
            if not (isinstance(src, ChanEndT) and src.direction == "out"):
                raise TypeCheckError(
                    f"connect source must be an out channel, got {src}",
                    stmt.line,
                )
            if not (isinstance(dst, ChanEndT) and dst.direction == "in"):
                raise TypeCheckError(
                    f"connect target must be an in channel, got {dst}",
                    stmt.line,
                )
            if src.element != dst.element:
                raise TypeCheckError(
                    f"connect joins {src.element} to {dst.element}",
                    stmt.line,
                )
        elif isinstance(stmt, ast.If):
            cond = self._check_expr(stmt.cond, scope)
            if cond != BOOL:
                raise TypeCheckError(
                    f"if condition must be boolean, got {cond}", stmt.line
                )
            self._check_block(stmt.then, Scope(scope))
            self._check_block(stmt.orelse, Scope(scope))
        elif isinstance(stmt, ast.For):
            start = self._check_expr(stmt.start, scope)
            stop = self._check_expr(stmt.stop, scope)
            if start != INT or stop != INT:
                raise TypeCheckError(
                    "for bounds must be integers", stmt.line
                )
            inner = Scope(scope)
            inner.declare(stmt.var, INT, stmt.line)
            self._check_block(stmt.body, inner)
        elif isinstance(stmt, ast.While):
            cond = self._check_expr(stmt.cond, scope)
            if cond != BOOL:
                raise TypeCheckError(
                    f"while condition must be boolean, got {cond}", stmt.line
                )
            self._check_block(stmt.body, Scope(scope))
        elif isinstance(stmt, ast.StopStmt):
            if not self._in_actor:
                raise TypeCheckError("stop outside an actor", stmt.line)
        elif isinstance(stmt, ast.ReturnStmt):
            if self._current_fn_ret is None:
                raise TypeCheckError("return outside a function", stmt.line)
            if stmt.value is None:
                if self._current_fn_ret != VOID:
                    raise TypeCheckError("return needs a value", stmt.line)
            else:
                value = self._check_expr(stmt.value, scope)
                if not assignable(self._current_fn_ret, value):
                    raise TypeCheckError(
                        f"returning {value} from a function of "
                        f"{self._current_fn_ret}",
                        stmt.line,
                    )
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        else:
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}")

    def _check_lvalue(self, target: ast.Expr, scope: Scope) -> EType:
        if isinstance(target, (ast.Name, ast.FieldAccess, ast.IndexAccess)):
            return self._check_expr(target, scope)
        raise TypeCheckError("invalid assignment target", target.line)

    # ==================================================================
    # expressions
    # ==================================================================

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> EType:
        typ = self._expr_type(expr, scope)
        expr.etype = typ  # annotation consumed by the compiler
        return typ

    def _expr_type(self, expr: ast.Expr, scope: Scope) -> EType:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.RealLit):
            return REAL
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.StringLit):
            return STRING
        if isinstance(expr, ast.Name):
            return scope.lookup(expr.id, expr.line)
        if isinstance(expr, ast.FieldAccess):
            obj = self._check_expr(expr.obj, scope)
            if isinstance(obj, StructT):
                return self.table.struct(obj.name).field_type(expr.field)
            if isinstance(obj, ActorT):
                if self._ctx != "boot":
                    raise TypeCheckError(
                        "actor channels are only accessible from boot",
                        expr.line,
                    )
                info = self.table.actor(obj.name)
                return self.table.interface(info.interface).channel_type(
                    expr.field
                )
            raise TypeCheckError(
                f"cannot access field {expr.field!r} of {obj}", expr.line
            )
        if isinstance(expr, ast.IndexAccess):
            obj = self._check_expr(expr.obj, scope)
            if not isinstance(obj, ArrT):
                raise TypeCheckError(f"cannot index into {obj}", expr.line)
            index = self._check_expr(expr.index, scope)
            if index != INT:
                raise TypeCheckError(
                    f"array index must be integer, got {index}", expr.line
                )
            return obj.element
        if isinstance(expr, ast.BinOpE):
            return self._binop_type(expr, scope)
        if isinstance(expr, ast.UnOpE):
            operand = self._check_expr(expr.operand, scope)
            if expr.op == "-":
                if operand not in NUMERIC:
                    raise TypeCheckError(
                        f"cannot negate {operand}", expr.line
                    )
                return operand
            if operand != BOOL:
                raise TypeCheckError(f"'not' needs a boolean", expr.line)
            return BOOL
        if isinstance(expr, ast.CallE):
            return self._call_type(expr, scope)
        if isinstance(expr, ast.NewArray):
            return self._new_array_type(expr, scope)
        if isinstance(expr, ast.NewStruct):
            return self._new_struct_type(expr, scope)
        if isinstance(expr, ast.NewChannel):
            elem = self.table.resolve(expr.element)
            return ChanEndT(expr.direction, elem, expr.movable)
        if isinstance(expr, ast.NewActor):
            return self._new_actor_type(expr, scope)
        raise TypeCheckError(f"unknown expression {type(expr).__name__}")

    def _binop_type(self, expr: ast.BinOpE, scope: Scope) -> EType:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        op = expr.op
        if op in ("+", "-", "*", "/"):
            if left not in NUMERIC or right not in NUMERIC:
                raise TypeCheckError(
                    f"operator {op!r} needs numeric operands, got "
                    f"{left} and {right}",
                    expr.line,
                )
            return REAL if REAL in (left, right) else INT
        if op == "%":
            if left != INT or right != INT:
                raise TypeCheckError(
                    "operator '%' needs integer operands", expr.line
                )
            return INT
        if op in ("<", "<=", ">", ">="):
            if left not in NUMERIC or right not in NUMERIC:
                raise TypeCheckError(
                    f"operator {op!r} needs numeric operands", expr.line
                )
            return BOOL
        if op in ("==", "!="):
            if left != right and not (
                left in NUMERIC and right in NUMERIC
            ):
                raise TypeCheckError(
                    f"cannot compare {left} with {right}", expr.line
                )
            return BOOL
        if op in ("and", "or"):
            if left != BOOL or right != BOOL:
                raise TypeCheckError(
                    f"operator {op!r} needs boolean operands", expr.line
                )
            return BOOL
        raise TypeCheckError(f"unknown operator {op!r}", expr.line)

    def _call_type(self, expr: ast.CallE, scope: Scope) -> EType:
        name = expr.name
        arg_types = [self._check_expr(a, scope) for a in expr.args]

        def check_sig(params: list[EType], ret: EType) -> EType:
            if len(arg_types) != len(params):
                raise TypeCheckError(
                    f"{name} expects {len(params)} arguments, got "
                    f"{len(arg_types)}",
                    expr.line,
                )
            for want, got in zip(params, arg_types):
                if not assignable(want, got):
                    raise TypeCheckError(
                        f"{name}: argument of {got} where {want} expected",
                        expr.line,
                    )
            return ret

        if name in WORKITEM:
            if self._ctx != "kernel":
                raise TypeCheckError(
                    f"{name} is only available inside a kernel", expr.line
                )
            return check_sig(*WORKITEM[name])
        if name in MATH:
            return check_sig(*MATH[name])
        if name == "length":
            if len(arg_types) != 1 or not isinstance(arg_types[0], ArrT):
                raise TypeCheckError("length expects one array", expr.line)
            return INT
        if name in ("fillPattern1D", "fillPattern2D", "fillPatternCond2D"):
            if self._ctx == "kernel":
                raise TypeCheckError(
                    f"{name} is not available inside a kernel", expr.line
                )
            want_args = {"fillPattern1D": 6, "fillPattern2D": 7,
                         "fillPatternCond2D": 8}[name]
            if len(arg_types) != want_args:
                raise TypeCheckError(
                    f"{name} expects {want_args} arguments", expr.line
                )
            arr = arg_types[0]
            if not isinstance(arr, ArrT):
                raise TypeCheckError(f"{name}: first argument must be an "
                                     "array", expr.line)
            want_dims = 1 if name == "fillPattern1D" else 2
            if arr.ndim != want_dims:
                raise TypeCheckError(
                    f"{name}: array must be {want_dims}-D", expr.line
                )
            if name == "fillPatternCond2D":
                for t in arg_types[1:]:
                    if t != INT:
                        raise TypeCheckError(
                            f"{name}: pattern arguments must be integers",
                            expr.line,
                        )
            else:
                for t in arg_types[1:-1]:
                    if t != INT:
                        raise TypeCheckError(
                            f"{name}: pattern arguments must be integers",
                            expr.line,
                        )
                if arg_types[-1] != REAL:
                    raise TypeCheckError(
                        f"{name}: the divisor must be real", expr.line
                    )
            return VOID
        if name == "minElement":
            if len(arg_types) != 1 or not isinstance(arg_types[0], ArrT):
                raise TypeCheckError("minElement expects one array", expr.line)
            if self._ctx == "kernel":
                raise TypeCheckError(
                    "minElement is not available inside a kernel", expr.line
                )
            return arg_types[0].scalar
        if name == "checksumWeighted":
            if len(arg_types) != 1 or not isinstance(arg_types[0], ArrT):
                raise TypeCheckError(
                    "checksumWeighted expects one array", expr.line
                )
            if self._ctx == "kernel":
                raise TypeCheckError(
                    "checksumWeighted is not available inside a kernel",
                    expr.line,
                )
            return REAL if arg_types[0].scalar == REAL else INT
        if name in NATIVES:
            if self._ctx == "kernel" and name not in (
                "intToReal", "realToInt"
            ):
                raise TypeCheckError(
                    f"{name} is not available inside a kernel", expr.line
                )
            return check_sig(*NATIVES[name])
        if name in self.table.functions:
            params, ret = self.table.functions[name]
            return check_sig([t for _, t in params], ret)
        raise TypeCheckError(f"unknown function {name!r}", expr.line)

    def _new_array_type(self, expr: ast.NewArray, scope: Scope) -> EType:
        if expr.space == "local" and self._ctx != "kernel":
            raise TypeCheckError(
                "'new local' arrays exist only inside kernels", expr.line
            )
        elem = self.table.resolve(expr.element)
        if elem not in (INT, REAL, BOOL):
            raise TypeCheckError(
                f"arrays of {elem} are not supported", expr.line
            )
        for dim in expr.dims:
            if self._check_expr(dim, scope) != INT:
                raise TypeCheckError(
                    "array dimensions must be integers", expr.line
                )
        typ: EType = elem
        for _ in expr.dims:
            typ = ArrT(typ)
        if expr.fill is not None:
            fill = self._check_expr(expr.fill, scope)
            if not assignable(elem, fill):
                raise TypeCheckError(
                    f"array fill of {fill} where {elem} expected", expr.line
                )
        return typ

    def _new_struct_type(self, expr: ast.NewStruct, scope: Scope) -> EType:
        if expr.type_name in self.table.actors:
            if self._ctx == "kernel":
                raise TypeCheckError(
                    "cannot create actors inside a kernel", expr.line
                )
            info = self.table.actor(expr.type_name)
            if len(expr.args) != len(info.ctor_params):
                raise TypeCheckError(
                    f"actor {expr.type_name} constructor expects "
                    f"{len(info.ctor_params)} arguments",
                    expr.line,
                )
            for arg, (_, want) in zip(expr.args, info.ctor_params):
                got = self._check_expr(arg, scope)
                if not assignable(want, got):
                    raise TypeCheckError(
                        f"constructor argument of {got} where {want} "
                        "expected",
                        expr.line,
                    )
            return ActorT(expr.type_name)
        sinfo = self.table.struct(expr.type_name)
        if len(expr.args) != len(sinfo.fields):
            raise TypeCheckError(
                f"struct {expr.type_name} expects {len(sinfo.fields)} "
                f"fields, got {len(expr.args)}",
                expr.line,
            )
        for arg, (fname, want) in zip(expr.args, sinfo.fields):
            got = self._check_expr(arg, scope)
            ok = (
                assignable(want, got)
                or (
                    isinstance(want, ChanEndT)
                    and isinstance(got, ChanEndT)
                    and want.direction == got.direction
                    and want.element == got.element
                )
            )
            if not ok:
                raise TypeCheckError(
                    f"field {fname!r}: {got} where {want} expected",
                    expr.line,
                )
        return StructT(expr.type_name)

    def _new_actor_type(self, expr: ast.NewActor, scope: Scope) -> EType:
        info = self.table.actor(expr.type_name)
        for arg, (_, want) in zip(expr.args, info.ctor_params):
            got = self._check_expr(arg, scope)
            if not assignable(want, got):
                raise TypeCheckError(
                    f"constructor argument of {got} where {want} expected",
                    expr.line,
                )
        return ActorT(expr.type_name)


# =====================================================================
# Movability analysis
# =====================================================================


def _expr_names(expr: ast.Expr):
    """Yield the names *read* by an expression (root names only)."""
    if isinstance(expr, ast.Name):
        yield expr.id
    elif isinstance(expr, ast.FieldAccess):
        yield from _expr_names(expr.obj)
    elif isinstance(expr, ast.IndexAccess):
        yield from _expr_names(expr.obj)
        yield from _expr_names(expr.index)
    elif isinstance(expr, ast.BinOpE):
        yield from _expr_names(expr.left)
        yield from _expr_names(expr.right)
    elif isinstance(expr, ast.UnOpE):
        yield from _expr_names(expr.operand)
    elif isinstance(expr, ast.CallE):
        for arg in expr.args:
            yield from _expr_names(arg)
    elif isinstance(expr, (ast.NewArray, ast.NewStruct, ast.NewActor)):
        for child in getattr(expr, "dims", []) or []:
            yield from _expr_names(child)
        for child in getattr(expr, "args", []) or []:
            yield from _expr_names(child)
        fill = getattr(expr, "fill", None)
        if fill is not None:
            yield from _expr_names(fill)


def _root_name(expr: ast.Expr) -> Optional[str]:
    while isinstance(expr, (ast.FieldAccess, ast.IndexAccess)):
        expr = expr.obj
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class _MoveState:
    def __init__(self) -> None:
        self.moved: set[str] = set()

    def copy(self) -> "_MoveState":
        clone = _MoveState()
        clone.moved = set(self.moved)
        return clone


def analyse_movability(actor: ast.ActorDecl, table: TypeTable) -> None:
    """Reject use-after-send of movable values (compile-time, as in the
    paper's inter-procedural analysis — here intra-behaviour with a
    two-pass fixed point over the implicit behaviour loop)."""

    def check_read(expr: ast.Expr, state: _MoveState) -> None:
        for name in _expr_names(expr):
            if name in state.moved:
                raise MovabilityError(
                    f"actor {actor.name!r}: movable value {name!r} used "
                    "after being sent",
                    getattr(expr, "line", 0),
                )

    def walk(stmts: list[ast.Stmt], state: _MoveState) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Bind):
                check_read(stmt.value, state)
                state.moved.discard(stmt.name)
            elif isinstance(stmt, ast.Assign):
                check_read(stmt.value, state)
                root = _root_name(stmt.target)
                if isinstance(stmt.target, ast.Name):
                    state.moved.discard(stmt.target.id)
                elif root is not None and root in state.moved:
                    raise MovabilityError(
                        f"actor {actor.name!r}: movable value {root!r} "
                        "written through after being sent",
                        stmt.line,
                    )
            elif isinstance(stmt, ast.Receive):
                chan_t = getattr(stmt.channel, "etype", None)
                check_read(stmt.channel, state)
                state.moved.discard(stmt.name)
            elif isinstance(stmt, ast.Send):
                check_read(stmt.value, state)
                check_read(stmt.channel, state)
                chan_t = getattr(stmt.channel, "etype", None)
                if isinstance(chan_t, ChanEndT) and chan_t.movable:
                    root = _root_name(stmt.value)
                    if root is not None:
                        state.moved.add(root)
            elif isinstance(stmt, ast.Connect):
                check_read(stmt.source, state)
                check_read(stmt.target, state)
            elif isinstance(stmt, ast.If):
                check_read(stmt.cond, state)
                then_state = state.copy()
                else_state = state.copy()
                walk(stmt.then, then_state)
                walk(stmt.orelse, else_state)
                state.moved = then_state.moved | else_state.moved
            elif isinstance(stmt, ast.For):
                check_read(stmt.start, state)
                check_read(stmt.stop, state)
                walk(stmt.body, state)
                walk(stmt.body, state)  # loop back-edge
            elif isinstance(stmt, ast.While):
                check_read(stmt.cond, state)
                walk(stmt.body, state)
                walk(stmt.body, state)
            elif isinstance(stmt, ast.ExprStmt):
                check_read(stmt.expr, state)
            # Stop/Return carry no movability effects beyond reads.
            elif isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
                check_read(stmt.value, state)

    state = _MoveState()
    walk(actor.constructor_body, state)
    # The behaviour clause repeats: analyse twice so a value moved at the
    # bottom and read at the top is caught.
    walk(actor.behaviour, state)
    walk(actor.behaviour, state)


def typecheck(program: ast.Program) -> TypeTable:
    """Check *program*; returns the resolved type table."""
    return Checker(program).run()
