"""Compile checked Ensemble ASTs to VM bytecode.

Each actor yields three code objects (state initialisation, constructor,
behaviour) plus, for ``opencl`` actors, a :class:`KernelPlan`: the
behaviour compiles to *prologue receives* + ``DISPATCH`` + *epilogue
send*, with the extracted kernel serialised to kernel-C inside the plan
(see :mod:`repro.ensemble.kernelgen`).  The boot block compiles to its
own code object executed by the stage at startup.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TypeCheckError
from . import ast
from .bytecode import (
    Code,
    CompiledActor,
    CompiledFunction,
    CompiledProgram,
    KernelPlan,
)
from .kernelgen import KernelGenerator
from .typecheck import MATH, NATIVES, WORKITEM
from .types import ArrT, ChanEndT, StructT, TypeTable

_DTYPE = {"integer": "int", "real": "float", "boolean": "bool"}


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.slots: dict[str, int] = {}

    def lookup(self, name: str) -> Optional[int]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.slots:
                return scope.slots[name]
            scope = scope.parent
        return None


class FnCompiler:
    """Compiles one statement list to a Code object."""

    def __init__(
        self,
        name: str,
        table: TypeTable,
        state_names: frozenset[str] = frozenset(),
        channel_names: frozenset[str] = frozenset(),
    ) -> None:
        self.name = name
        self.table = table
        self.state_names = state_names
        self.channel_names = channel_names
        self.code = Code(name)
        self.scope = _Scope()
        self.next_slot = 0

    # -- emission helpers ---------------------------------------------------

    def emit(self, op: str, arg=None) -> int:
        self.code.instrs.append((op, arg))
        return len(self.code.instrs) - 1

    def patch(self, index: int, target: int) -> None:
        op, _ = self.code.instrs[index]
        self.code.instrs[index] = (op, target)

    def here(self) -> int:
        return len(self.code.instrs)

    def new_slot(self, name: str) -> int:
        slot = self.next_slot
        self.next_slot += 1
        self.scope.slots[name] = slot
        return slot

    def declare_param(self, name: str) -> int:
        slot = self.new_slot(name)
        self.code.param_slots.append(slot)
        return slot

    def finish(self) -> Code:
        self.code.nlocals = self.next_slot
        return self.code

    def push_scope(self) -> None:
        self.scope = _Scope(self.scope)

    def pop_scope(self) -> None:
        assert self.scope.parent is not None
        self.scope = self.scope.parent

    # -- statements --------------------------------------------------------

    def compile_block(self, stmts: list[ast.Stmt]) -> None:
        self.push_scope()
        for stmt in stmts:
            self.compile_stmt(stmt)
        self.pop_scope()

    def compile_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Bind):
            self.expr(stmt.value)
            self.emit("STOREL", self.new_slot(stmt.name))
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.Send):
            self.expr(stmt.value)
            self.expr(stmt.channel)
            chan_t = getattr(stmt.channel, "etype", None)
            movable = isinstance(chan_t, ChanEndT) and chan_t.movable
            self.emit("SEND", movable)
        elif isinstance(stmt, ast.Receive):
            self.expr(stmt.channel)
            self.emit("RECEIVE")
            self._store_name(stmt.name, stmt.line)
        elif isinstance(stmt, ast.Connect):
            self.expr(stmt.source)
            self.expr(stmt.target)
            self.emit("CONNECT")
        elif isinstance(stmt, ast.If):
            self.expr(stmt.cond)
            jf = self.emit("JUMPF")
            self.compile_block(stmt.then)
            if stmt.orelse:
                jend = self.emit("JUMP")
                self.patch(jf, self.here())
                self.compile_block(stmt.orelse)
                self.patch(jend, self.here())
            else:
                self.patch(jf, self.here())
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.While):
            top = self.here()
            self.expr(stmt.cond)
            jf = self.emit("JUMPF")
            self.compile_block(stmt.body)
            self.emit("JUMP", top)
            self.patch(jf, self.here())
        elif isinstance(stmt, ast.StopStmt):
            self.emit("STOP")
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.expr(stmt.value)
            else:
                self.emit("CONST", None)
            self.emit("RET")
        elif isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr)
            self.emit("POP")
        else:
            raise TypeCheckError(
                f"cannot compile {type(stmt).__name__}", stmt.line
            )

    def _for(self, stmt: ast.For) -> None:
        self.push_scope()
        var_slot = self.new_slot(stmt.var)
        stop_slot = self.new_slot(f"__stop_{var_slot}")
        self.expr(stmt.start)
        self.emit("STOREL", var_slot)
        self.expr(stmt.stop)
        self.emit("STOREL", stop_slot)
        top = self.here()
        self.emit("LOADL", var_slot)
        self.emit("LOADL", stop_slot)
        self.emit("BINOP", "<=")
        jf = self.emit("JUMPF")
        self.compile_block(stmt.body)
        self.emit("LOADL", var_slot)
        self.emit("CONST", 1)
        self.emit("BINOP", "+")
        self.emit("STOREL", var_slot)
        self.emit("JUMP", top)
        self.patch(jf, self.here())
        self.pop_scope()

    def _assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            self.expr(stmt.value)
            self._store_name(target.id, stmt.line)
        elif isinstance(target, ast.FieldAccess):
            self.expr(stmt.value)
            self.expr(target.obj)
            self.emit("SETFIELD", target.field)
        elif isinstance(target, ast.IndexAccess):
            self.expr(stmt.value)
            self.expr(target.obj)
            self.expr(target.index)
            self.emit("SETINDEX")
        else:
            raise TypeCheckError("invalid assignment target", stmt.line)

    def _store_name(self, name: str, line: int) -> None:
        slot = self.scope.lookup(name)
        if slot is not None:
            self.emit("STOREL", slot)
        elif name in self.state_names:
            self.emit("STORESTATE", name)
        else:
            self.emit("STOREL", self.new_slot(name))

    # -- expressions -------------------------------------------------------

    def expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.RealLit, ast.StringLit)):
            self.emit("CONST", expr.value)
        elif isinstance(expr, ast.BoolLit):
            self.emit("CONST", expr.value)
        elif isinstance(expr, ast.Name):
            self._load_name(expr.id, expr.line)
        elif isinstance(expr, ast.FieldAccess):
            self.expr(expr.obj)
            self.emit("GETFIELD", expr.field)
        elif isinstance(expr, ast.IndexAccess):
            self.expr(expr.obj)
            self.expr(expr.index)
            self.emit("GETINDEX")
        elif isinstance(expr, ast.BinOpE):
            self.expr(expr.left)
            self.expr(expr.right)
            self.emit("BINOP", expr.op)
        elif isinstance(expr, ast.UnOpE):
            self.expr(expr.operand)
            self.emit("UNOP", expr.op)
        elif isinstance(expr, ast.CallE):
            self._call(expr)
        elif isinstance(expr, ast.NewArray):
            for dim in expr.dims:
                self.expr(dim)
            if expr.fill is not None:
                self.expr(expr.fill)
            else:
                elem = str(getattr(expr.element, "name", "real"))
                self.emit(
                    "CONST", {"integer": 0, "real": 0.0, "boolean": False}[elem]
                )
            elem_name = str(getattr(expr.element, "name", "real"))
            self.emit("NEWARRAY", (len(expr.dims), _DTYPE[elem_name]))
        elif isinstance(expr, ast.NewStruct):
            for arg in expr.args:
                self.expr(arg)
            if expr.type_name in self.table.actors:
                self.emit("NEWACTOR", (expr.type_name, len(expr.args)))
            else:
                self.emit("NEWSTRUCT", (expr.type_name, len(expr.args)))
        elif isinstance(expr, ast.NewActor):
            for arg in expr.args:
                self.expr(arg)
            self.emit("NEWACTOR", (expr.type_name, len(expr.args)))
        elif isinstance(expr, ast.NewChannel):
            self.emit("NEWCHAN", (expr.direction, expr.movable))
        else:
            raise TypeCheckError(
                f"cannot compile expression {type(expr).__name__}", expr.line
            )

    def _load_name(self, name: str, line: int) -> None:
        slot = self.scope.lookup(name)
        if slot is not None:
            self.emit("LOADL", slot)
        elif name in self.state_names:
            self.emit("LOADSTATE", name)
        elif name in self.channel_names:
            self.emit("LOADCHAN", name)
        else:
            raise TypeCheckError(f"unknown name {name!r}", line)

    def _call(self, expr: ast.CallE) -> None:
        for arg in expr.args:
            self.expr(arg)
        if expr.name in self.table.functions:
            self.emit("CALL", (expr.name, len(expr.args)))
        elif (expr.name in NATIVES or expr.name in MATH
              or expr.name in ("length", "checksumWeighted", "minElement",
                               "fillPattern1D", "fillPattern2D",
                               "fillPatternCond2D")):
            self.emit("NATIVE", (expr.name, len(expr.args)))
        elif expr.name in WORKITEM:
            raise TypeCheckError(
                f"{expr.name} outside a kernel region", expr.line
            )
        else:
            raise TypeCheckError(f"unknown function {expr.name!r}", expr.line)


class ProgramCompiler:
    def __init__(self, program: ast.Program, table: TypeTable) -> None:
        self.program = program
        self.table = table

    def compile(self) -> CompiledProgram:
        actors = {
            actor.name: self._compile_actor(actor)
            for actor in self.program.stage.actors
        }
        functions = {
            fn.name: self._compile_function(fn)
            for fn in self.program.stage.functions
        }
        boot = FnCompiler("boot", self.table)
        boot.compile_block(self.program.stage.boot)
        struct_fields = {
            name: [fname for fname, _ in info.fields]
            for name, info in self.table.structs.items()
        }
        return CompiledProgram(
            self.program.stage.name,
            actors,
            functions,
            boot.finish(),
            struct_fields=struct_fields,
        )

    def _compile_function(self, fn: ast.FunctionDecl) -> CompiledFunction:
        comp = FnCompiler(fn.name, self.table)
        for param in fn.params:
            comp.declare_param(param.name)
        comp.compile_block(fn.body)
        comp.emit("CONST", None)
        comp.emit("RET")
        return CompiledFunction(fn.name, comp.finish(), len(fn.params))

    def _compile_actor(self, actor: ast.ActorDecl) -> CompiledActor:
        iface = self.table.interface(actor.interface)
        channel_names = frozenset(name for name, _ in iface.channels)
        state_names = frozenset(s.name for s in actor.state)
        channel_specs = [
            (name, chan.direction, chan.movable,
             iface.buffers.get(name, 0))
            for name, chan in iface.channels
        ]

        state = FnCompiler(
            f"{actor.name}.state", self.table, state_names, channel_names
        )
        for decl in actor.state:
            state.expr(decl.init)
            state.emit("STORESTATE", decl.name)

        ctor = FnCompiler(
            f"{actor.name}.constructor", self.table, state_names, channel_names
        )
        for param in actor.constructor_params:
            ctor.declare_param(param.name)
        ctor.compile_block(actor.constructor_body)

        plan: Optional[KernelPlan] = None
        behaviour = FnCompiler(
            f"{actor.name}.behaviour", self.table, state_names, channel_names
        )
        if actor.is_opencl:
            plan = self._compile_opencl_behaviour(actor, behaviour)
        else:
            behaviour.compile_block(actor.behaviour)

        return CompiledActor(
            actor.name,
            actor.interface,
            channel_specs,
            sorted(state_names),
            state.finish(),
            ctor.finish(),
            behaviour.finish(),
            kernel_plan=plan,
        )

    def _compile_opencl_behaviour(
        self, actor: ast.ActorDecl, comp: FnCompiler
    ) -> KernelPlan:
        body = actor.behaviour
        first = body[0]
        second = body[1]
        last = body[-1]
        assert isinstance(first, ast.Receive)
        assert isinstance(second, ast.Receive)
        assert isinstance(last, ast.Send)

        comp.push_scope()
        # Prologue: receive the request struct, then the data.
        comp.expr(first.channel)
        comp.emit("RECEIVE")
        req_slot = comp.new_slot(first.name)
        comp.emit("STOREL", req_slot)
        comp.expr(second.channel)
        comp.emit("RECEIVE")
        data_slot = comp.new_slot(second.name)
        comp.emit("STOREL", data_slot)

        # Extract the kernel and build the plan.
        req_type = first.channel.etype.element  # StructT (opencl struct)
        sinfo = self.table.struct(req_type.name)
        data_type = second.channel.etype.element
        generator = KernelGenerator(
            actor,
            self.table,
            second.name,
            data_type,
            self.program.stage.functions,
        )
        source, params, written, read = generator.generate(body[2:-1])
        settings = actor.opencl_settings
        plan = KernelPlan(
            kernel_name=generator.kernel_name,
            kernel_source=source,
            device_type=settings.get("device_type", "GPU"),
            device_index=int(settings.get("device_index", "0")),
            platform_index=int(settings.get("platform_index", "0")),
            req_slot=req_slot,
            data_slot=data_slot,
            data_is_struct=isinstance(data_type, StructT),
            params=params,
            worksize_field=sinfo.worksize_field,
            groupsize_field=sinfo.groupsize_field,
            out_field=sinfo.out_field,
            in_movable=sinfo.in_movable,
            written_params=written,
            read_params=read,
        )

        comp.emit("DISPATCH")
        # Epilogue: the final send.
        comp.compile_stmt(last)
        comp.pop_scope()
        return plan


def compile_program(
    program: ast.Program, table: TypeTable
) -> CompiledProgram:
    return ProgramCompiler(program, table).compile()
