"""AST node definitions for the Ensemble language.

The grammar follows the paper's listings (1–3): type declarations
(struct / ``opencl struct`` / interface), a single stage containing
actor declarations and a ``boot`` block, imperative statements with
``=`` binding / ``:=`` assignment, channel ``send``/``receive``/
``connect``, and ``new`` expressions for arrays, structs, channel ends
and actors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# ---------------------------------------------------------------------------
# Type expressions (syntactic; resolved by the checker)
# ---------------------------------------------------------------------------


@dataclass
class TypeExpr:
    """Base class of syntactic type references."""

    line: int = field(default=0, kw_only=True)


@dataclass
class NamedType(TypeExpr):
    """``integer``, ``real``, ``boolean``, ``string`` or a user type."""

    name: str


@dataclass
class ArrayTypeExpr(TypeExpr):
    element: TypeExpr
    # number of [] suffixes collapses into `dims` on the innermost element
    dims: int = 1


@dataclass
class ChanTypeExpr(TypeExpr):
    direction: str  # 'in' | 'out'
    element: TypeExpr
    movable: bool = False
    #: optional buffer capacity (0 = synchronous rendezvous)
    buffer: int = 0


@dataclass
class MovType(TypeExpr):
    inner: TypeExpr


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class FieldDecl:
    type: TypeExpr
    name: str
    line: int = 0


@dataclass
class StructDecl:
    name: str
    fields: list[FieldDecl]
    is_opencl: bool = False
    line: int = 0


@dataclass
class InterfaceDecl:
    name: str
    channels: list[FieldDecl]  # each .type is a ChanTypeExpr
    line: int = 0


@dataclass
class Param:
    type: TypeExpr
    name: str
    line: int = 0


@dataclass
class FunctionDecl:
    name: str
    params: list[Param]
    ret_type: Optional[TypeExpr]
    body: list["Stmt"]
    line: int = 0


@dataclass
class StateDecl:
    """An actor state field with an initialiser (``value = 1;``)."""

    name: str
    init: "Expr"
    line: int = 0


@dataclass
class ActorDecl:
    name: str
    interface: str
    state: list[StateDecl]
    constructor_params: list[Param]
    constructor_body: list["Stmt"]
    behaviour: list["Stmt"]
    is_opencl: bool = False
    opencl_settings: dict[str, str] = field(default_factory=dict)
    line: int = 0


@dataclass
class StageDecl:
    name: str
    actors: list[ActorDecl]
    functions: list[FunctionDecl]
    boot: list["Stmt"]
    line: int = 0


@dataclass
class Program:
    structs: list[StructDecl]
    interfaces: list[InterfaceDecl]
    stage: StageDecl


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class Bind(Stmt):
    """``x = expr;`` — declare-and-initialise with inference."""

    name: str
    value: "Expr"


@dataclass
class Assign(Stmt):
    """``lvalue := expr;``"""

    target: "Expr"  # Name, FieldAccess or IndexAccess
    value: "Expr"


@dataclass
class Send(Stmt):
    """``send expr on chan;``"""

    value: "Expr"
    channel: "Expr"


@dataclass
class Receive(Stmt):
    """``receive x from chan;`` — binds (or rebinds) *name*."""

    name: str
    channel: "Expr"


@dataclass
class Connect(Stmt):
    """``connect out_chan to in_chan;``"""

    source: "Expr"
    target: "Expr"


@dataclass
class If(Stmt):
    cond: "Expr"
    then: list[Stmt] = field(default_factory=list)
    orelse: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``for i = a .. b do { }`` — inclusive bounds."""

    var: str
    start: "Expr"
    stop: "Expr"
    body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: "Expr"
    body: list[Stmt] = field(default_factory=list)


@dataclass
class StopStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Optional["Expr"] = None


@dataclass
class ExprStmt(Stmt):
    expr: "Expr"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class RealLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class Name(Expr):
    id: str


@dataclass
class FieldAccess(Expr):
    obj: Expr
    field: str


@dataclass
class IndexAccess(Expr):
    obj: Expr
    index: Expr


@dataclass
class BinOpE(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class UnOpE(Expr):
    op: str
    operand: Expr


@dataclass
class CallE(Expr):
    name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    """``new real[n][m] of 0.0``; ``space`` is '' or 'local'."""

    element: TypeExpr
    dims: list[Expr] = field(default_factory=list)
    fill: Optional[Expr] = None
    space: str = ""


@dataclass
class NewStruct(Expr):
    """``new settings_t(ws, gs, i, o)``"""

    type_name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewChannel(Expr):
    """``new in data_t`` / ``new out real[][]``"""

    direction: str
    element: TypeExpr
    movable: bool = False


@dataclass
class NewActor(Expr):
    """``new Dispatch(args)`` (boot / host code only)."""

    type_name: str
    args: list[Expr] = field(default_factory=list)
