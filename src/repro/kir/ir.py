"""Kernel IR node definitions.

The kernel IR (kir) is the common executable representation shared by the
kernel-C front end, the Ensemble compiler's kernel extraction, and the
OpenACC pragma compiler.  A device in the OpenCL substrate only ever
executes kir: every front end lowers to it.

Design notes
------------
* Arrays are always one-dimensional.  Front ends flatten multi-dimensional
  arrays and generate explicit index arithmetic, exactly as the Ensemble
  compiler does in the paper (Section 6.1.2).
* Every expression node carries a ``type`` field filled in by the front
  end; the validator checks consistency.
* Address spaces mirror OpenCL: ``global``, ``local``, ``constant``,
  ``private``.  ``local`` arrays are allocated per work-group by the
  execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

INT = "int"
FLOAT = "float"
BOOL = "bool"
VOID = "void"

SCALAR_TYPES = (INT, FLOAT, BOOL)

GLOBAL = "global"
LOCAL = "local"
CONSTANT = "constant"
PRIVATE = "private"

ADDRESS_SPACES = (GLOBAL, LOCAL, CONSTANT, PRIVATE)


@dataclass(frozen=True)
class ScalarType:
    """A scalar value type (int, float or bool)."""

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in SCALAR_TYPES:
            raise ValueError(f"bad scalar kind: {self.kind!r}")

    @property
    def is_array(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class ArrayType:
    """A 1-D array of scalars living in some address space."""

    element: ScalarType
    space: str = GLOBAL

    def __post_init__(self) -> None:
        if self.space not in ADDRESS_SPACES:
            raise ValueError(f"bad address space: {self.space!r}")

    @property
    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.space} {self.element}[]"


Type = Union[ScalarType, ArrayType]

INT_T = ScalarType(INT)
FLOAT_T = ScalarType(FLOAT)
BOOL_T = ScalarType(BOOL)


def scalar(kind: str) -> ScalarType:
    """Return the canonical ScalarType for *kind*."""
    return {INT: INT_T, FLOAT: FLOAT_T, BOOL: BOOL_T}[kind]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for all expression nodes."""

    type: Optional[Type] = field(default=None, init=False)


@dataclass
class Const(Expr):
    """A literal int, float or bool."""

    value: Union[int, float, bool]

    def __post_init__(self) -> None:
        if isinstance(self.value, bool):
            self.type = BOOL_T
        elif isinstance(self.value, int):
            self.type = INT_T
        elif isinstance(self.value, float):
            self.type = FLOAT_T
        else:
            raise ValueError(f"bad constant: {self.value!r}")


@dataclass
class Var(Expr):
    """Reference to a named local variable or parameter."""

    name: str


@dataclass
class BinOp(Expr):
    """Binary arithmetic / comparison / logic operation."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    """Unary negation / logical not / bit complement."""

    op: str
    operand: Expr


@dataclass
class Index(Expr):
    """Array element load: ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    """Call to a builtin or user function."""

    name: str
    args: list[Expr]


@dataclass
class Cast(Expr):
    """Explicit scalar conversion, e.g. ``(float) x``."""

    target: ScalarType
    operand: Expr


@dataclass
class Select(Expr):
    """Ternary select: ``cond ? a : b`` (both branches evaluated lazily)."""

    cond: Expr
    if_true: Expr
    if_false: Expr


# Binary operators grouped by result behaviour.
ARITH_OPS = ("+", "-", "*", "/", "%")
COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGIC_OPS = ("&&", "||")
BIT_OPS = ("&", "|", "^", "<<", ">>")
ALL_BINOPS = ARITH_OPS + COMPARE_OPS + LOGIC_OPS + BIT_OPS

UNARY_OPS = ("-", "!", "~")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for all statement nodes."""


@dataclass
class Decl(Stmt):
    """Declare (and optionally initialise) a private scalar or array.

    ``size`` is an expression for array declarations (``local float t[64]``)
    and must be group-uniform when ``space == 'local'``.
    """

    name: str
    type: Type
    init: Optional[Expr] = None
    size: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """Scalar assignment ``name = value``."""

    name: str
    value: Expr


@dataclass
class Store(Stmt):
    """Array element store ``base[index] = value``."""

    base: Expr
    index: Expr
    value: Expr


@dataclass
class If(Stmt):
    """Two-armed conditional ``if (cond) then... else orelse...``."""

    cond: Expr
    then: list[Stmt]
    orelse: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """Counted loop: ``for var = start; var < stop; var += step``.

    ``var`` is an int induction variable scoped to the loop.
    """

    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    """Pre-tested loop ``while (cond) body...``."""

    cond: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Break(Stmt):
    """Exit the innermost enclosing loop."""


@dataclass
class Continue(Stmt):
    """Skip to the next iteration of the innermost enclosing loop."""


@dataclass
class Return(Stmt):
    """Return from the function (kernels return nothing)."""

    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (e.g. a call)."""

    expr: Expr


@dataclass
class Barrier(Stmt):
    """Work-group barrier (CLK_LOCAL_MEM_FENCE).  Only legal in kernels."""


# ---------------------------------------------------------------------------
# Functions / kernels / modules
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A function or kernel parameter."""

    name: str
    type: Type


@dataclass
class Function:
    """A function (host-callable or kernel-internal helper) or a kernel.

    Kernels (``is_kernel=True``) take buffer and scalar parameters, return
    void, and may use work-item builtins and barriers.
    """

    name: str
    params: list[Param]
    ret_type: Type
    body: list[Stmt]
    is_kernel: bool = False

    def param_names(self) -> list[str]:
        return [p.name for p in self.params]


@dataclass
class Module:
    """A compilation unit: an ordered collection of functions/kernels."""

    functions: dict[str, Function] = field(default_factory=dict)

    def add(self, fn: Function) -> None:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn

    def kernels(self) -> list[Function]:
        return [f for f in self.functions.values() if f.is_kernel]

    def kernel(self, name: str) -> Function:
        fn = self.functions.get(name)
        if fn is None or not fn.is_kernel:
            raise KeyError(f"no kernel named {name!r}")
        return fn


# ---------------------------------------------------------------------------
# Work-item builtins available inside kernels
# ---------------------------------------------------------------------------

WORKITEM_BUILTINS = (
    "get_global_id",
    "get_local_id",
    "get_group_id",
    "get_global_size",
    "get_local_size",
    "get_num_groups",
    "get_work_dim",
)

# name -> (arg scalar kinds, result kind).  'num' means int-or-float and the
# result follows the argument type.
MATH_BUILTINS: dict[str, tuple[tuple[str, ...], str]] = {
    "sqrt": (("num",), FLOAT),
    "fabs": (("num",), FLOAT),
    "exp": (("num",), FLOAT),
    "log": (("num",), FLOAT),
    "sin": (("num",), FLOAT),
    "cos": (("num",), FLOAT),
    "tan": (("num",), FLOAT),
    "atan": (("num",), FLOAT),
    "atan2": (("num", "num"), FLOAT),
    "pow": (("num", "num"), FLOAT),
    "floor": (("num",), FLOAT),
    "ceil": (("num",), FLOAT),
    "fmin": (("num", "num"), FLOAT),
    "fmax": (("num", "num"), FLOAT),
    "min": (("num", "num"), "follow"),
    "max": (("num", "num"), "follow"),
    "abs": (("num",), "follow"),
    "clamp": (("num", "num", "num"), "follow"),
}


def walk_stmts(stmts: Sequence[Stmt]):
    """Yield every statement in *stmts*, recursing into bodies."""
    for st in stmts:
        yield st
        if isinstance(st, If):
            yield from walk_stmts(st.then)
            yield from walk_stmts(st.orelse)
        elif isinstance(st, (For, While)):
            yield from walk_stmts(st.body)


def walk_exprs(node: Union[Expr, Stmt]):
    """Yield every expression reachable from *node* (inclusive for Expr)."""
    if isinstance(node, Expr):
        yield node
        if isinstance(node, BinOp):
            yield from walk_exprs(node.left)
            yield from walk_exprs(node.right)
        elif isinstance(node, UnOp):
            yield from walk_exprs(node.operand)
        elif isinstance(node, Index):
            yield from walk_exprs(node.base)
            yield from walk_exprs(node.index)
        elif isinstance(node, Call):
            for a in node.args:
                yield from walk_exprs(a)
        elif isinstance(node, Cast):
            yield from walk_exprs(node.operand)
        elif isinstance(node, Select):
            yield from walk_exprs(node.cond)
            yield from walk_exprs(node.if_true)
            yield from walk_exprs(node.if_false)
        return
    # Statements
    if isinstance(node, Decl):
        if node.init is not None:
            yield from walk_exprs(node.init)
        if node.size is not None:
            yield from walk_exprs(node.size)
    elif isinstance(node, Assign):
        yield from walk_exprs(node.value)
    elif isinstance(node, Store):
        yield from walk_exprs(node.base)
        yield from walk_exprs(node.index)
        yield from walk_exprs(node.value)
    elif isinstance(node, If):
        yield from walk_exprs(node.cond)
    elif isinstance(node, For):
        yield from walk_exprs(node.start)
        yield from walk_exprs(node.stop)
        yield from walk_exprs(node.step)
    elif isinstance(node, While):
        yield from walk_exprs(node.cond)
    elif isinstance(node, Return):
        if node.value is not None:
            yield from walk_exprs(node.value)
    elif isinstance(node, ExprStmt):
        yield from walk_exprs(node.expr)


def has_barrier(fn: Function) -> bool:
    """True when *fn* (or code it textually contains) uses a barrier."""
    return any(isinstance(st, Barrier) for st in walk_stmts(fn.body))


def read_arrays(fn: Function) -> set[str]:
    """Names of array parameters the function loads from."""
    params = {p.name for p in fn.params if isinstance(p.type, ArrayType)}
    read: set[str] = set()
    for st in walk_stmts(fn.body):
        for e in walk_exprs(st):
            if isinstance(e, Index) and isinstance(e.base, Var):
                if e.base.name in params:
                    read.add(e.base.name)
    return read


def written_arrays(fn: Function) -> set[str]:
    """Names of array parameters the function stores into.

    The runtime uses this to know which buffers a kernel writes, so
    lazy evaluation can mark exactly those as device-authoritative.
    """
    params = {p.name for p in fn.params if isinstance(p.type, ArrayType)}
    written: set[str] = set()
    for st in walk_stmts(fn.body):
        if isinstance(st, Store) and isinstance(st.base, Var):
            if st.base.name in params:
                written.add(st.base.name)
    return written
