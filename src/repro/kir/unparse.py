"""Unparse kernel IR back to kernel-C source text.

The Ensemble compiler extracts an ``opencl`` actor's kernel region,
lowers it to IR, and then — exactly as the paper stores a generated C
string inside the actor's bytecode (Section 6.1.3) — serialises the IR
to kernel-C with this module.  At dispatch time the runtime compiles
that string through the ordinary ``clCreateProgramWithSource`` path, so
the Ensemble flow and the C-OpenCL baseline share one compilation
pipeline.

The output is valid input for :mod:`repro.kernelc`; round-tripping is
covered by tests.
"""

from __future__ import annotations

from ..errors import KirError
from . import ir

_SPACE_QUALIFIER = {
    ir.GLOBAL: "__global",
    ir.LOCAL: "__local",
    ir.CONSTANT: "__constant",
    ir.PRIVATE: "",
}


def unparse_module(module: ir.Module) -> str:
    """Render every function of *module* as kernel-C source."""
    parts = [unparse_function(fn) for fn in module.functions.values()]
    return "\n\n".join(parts) + "\n"


def unparse_function(fn: ir.Function) -> str:
    """Render one function (kernel or helper) as kernel-C source."""
    lines: list[str] = []
    params = ", ".join(_param(p) for p in fn.params)
    ret = fn.ret_type if isinstance(fn.ret_type, str) else str(fn.ret_type)
    head = f"__kernel void {fn.name}({params})" if fn.is_kernel else (
        f"{ret} {fn.name}({params})"
    )
    lines.append(head + " {")
    _stmts(fn.body, lines, 1)
    lines.append("}")
    return "\n".join(lines)


def _param(p: ir.Param) -> str:
    if isinstance(p.type, ir.ArrayType):
        qual = _SPACE_QUALIFIER[p.type.space] or "__global"
        return f"{qual} {p.type.element.kind} *{p.name}"
    return f"{p.type.kind} {p.name}"


def _stmts(stmts: list[ir.Stmt], lines: list[str], depth: int) -> None:
    pad = "    " * depth
    for st in stmts:
        _stmt(st, lines, depth, pad)


def _stmt(st: ir.Stmt, lines: list[str], depth: int, pad: str) -> None:
    if isinstance(st, ir.Decl):
        lines.append(pad + _decl(st))
    elif isinstance(st, ir.Assign):
        lines.append(f"{pad}{st.name} = {_expr(st.value)};")
    elif isinstance(st, ir.Store):
        lines.append(
            f"{pad}{_expr(st.base)}[{_expr(st.index)}] = {_expr(st.value)};"
        )
    elif isinstance(st, ir.If):
        lines.append(f"{pad}if ({_expr(st.cond)}) {{")
        _stmts(st.then, lines, depth + 1)
        if st.orelse:
            lines.append(pad + "} else {")
            _stmts(st.orelse, lines, depth + 1)
        lines.append(pad + "}")
    elif isinstance(st, ir.For):
        if not isinstance(st.step, ir.Const):
            raise KirError("unparse: for-loop step must be constant")
        cmp = "<" if st.step.value > 0 else ">"
        lines.append(
            f"{pad}for (int {st.var} = {_expr(st.start)}; "
            f"{st.var} {cmp} {_expr(st.stop)}; "
            f"{st.var} = {st.var} + {_expr(st.step)}) {{"
        )
        _stmts(st.body, lines, depth + 1)
        lines.append(pad + "}")
    elif isinstance(st, ir.While):
        lines.append(f"{pad}while ({_expr(st.cond)}) {{")
        _stmts(st.body, lines, depth + 1)
        lines.append(pad + "}")
    elif isinstance(st, ir.Break):
        lines.append(pad + "break;")
    elif isinstance(st, ir.Continue):
        lines.append(pad + "continue;")
    elif isinstance(st, ir.Return):
        if st.value is None:
            lines.append(pad + "return;")
        else:
            lines.append(f"{pad}return {_expr(st.value)};")
    elif isinstance(st, ir.ExprStmt):
        lines.append(f"{pad}{_expr(st.expr)};")
    elif isinstance(st, ir.Barrier):
        lines.append(pad + "barrier(CLK_LOCAL_MEM_FENCE);")
    else:
        raise KirError(f"unparse: unknown statement {type(st).__name__}")


def _decl(st: ir.Decl) -> str:
    if isinstance(st.type, ir.ArrayType):
        qual = _SPACE_QUALIFIER[st.type.space]
        prefix = f"{qual} " if qual else ""
        if st.size is None:
            raise KirError(f"unparse: array decl {st.name!r} without size")
        return f"{prefix}{st.type.element.kind} {st.name}[{_expr(st.size)}];"
    base = f"{st.type.kind} {st.name}"
    if st.init is not None:
        return f"{base} = {_expr(st.init)};"
    return base + ";"


def _expr(e: ir.Expr) -> str:
    if isinstance(e, ir.Const):
        if isinstance(e.value, bool):
            return "true" if e.value else "false"
        if isinstance(e.value, float):
            text = repr(e.value)
            return text
        return repr(e.value)
    if isinstance(e, ir.Var):
        return e.name
    if isinstance(e, ir.BinOp):
        return f"({_expr(e.left)} {e.op} {_expr(e.right)})"
    if isinstance(e, ir.UnOp):
        return f"({e.op}{_expr(e.operand)})"
    if isinstance(e, ir.Index):
        return f"{_expr(e.base)}[{_expr(e.index)}]"
    if isinstance(e, ir.Call):
        args = ", ".join(_expr(a) for a in e.args)
        return f"{e.name}({args})"
    if isinstance(e, ir.Cast):
        return f"(({e.target.kind})({_expr(e.operand)}))"
    if isinstance(e, ir.Select):
        return f"({_expr(e.cond)} ? {_expr(e.if_true)} : {_expr(e.if_false)})"
    raise KirError(f"unparse: unknown expression {type(e).__name__}")
