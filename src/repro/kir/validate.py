"""Static validation of kernel IR modules.

Front ends are expected to produce well-typed IR; the validator is the
safety net that catches compiler bugs before execution.  It checks:

* every variable reference is in scope;
* expression nodes carry types consistent with their operands;
* barriers appear only in kernels, and never inside helper functions;
* ``local`` declarations appear only in kernels and have a size;
* kernels return void and have scalar-or-array params;
* user-function calls resolve and arity matches.
"""

from __future__ import annotations

from ..errors import KirValidationError
from . import ir


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, ir.Type] = {}

    def declare(self, name: str, typ: ir.Type) -> None:
        if name in self.names:
            raise KirValidationError(f"redeclaration of {name!r}")
        self.names[name] = typ

    def lookup(self, name: str) -> ir.Type:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        raise KirValidationError(f"undeclared variable {name!r}")


class _Validator:
    def __init__(self, module: ir.Module) -> None:
        self.module = module
        self.fn: ir.Function | None = None

    def run(self) -> None:
        for fn in self.module.functions.values():
            self._check_function(fn)

    # -- functions ---------------------------------------------------------

    def _check_function(self, fn: ir.Function) -> None:
        self.fn = fn
        scope = _Scope()
        for p in fn.params:
            if isinstance(p.type, ir.ArrayType) and p.type.space == ir.PRIVATE:
                raise KirValidationError(
                    f"{fn.name}: array param {p.name!r} cannot be private"
                )
            scope.declare(p.name, p.type)
        if fn.is_kernel and fn.ret_type != ir.VOID:
            raise KirValidationError(f"kernel {fn.name} must return void")
        self._check_block(fn.body, scope, in_loop=False)
        self.fn = None

    # -- statements --------------------------------------------------------

    def _check_block(self, stmts: list[ir.Stmt], scope: _Scope, in_loop: bool) -> None:
        for st in stmts:
            self._check_stmt(st, scope, in_loop)

    def _check_stmt(self, st: ir.Stmt, scope: _Scope, in_loop: bool) -> None:
        assert self.fn is not None
        fn = self.fn
        if isinstance(st, ir.Decl):
            if isinstance(st.type, ir.ArrayType):
                if st.type.space == ir.LOCAL and not fn.is_kernel:
                    raise KirValidationError(
                        f"{fn.name}: local array {st.name!r} outside kernel"
                    )
                if st.size is None:
                    raise KirValidationError(
                        f"{fn.name}: array decl {st.name!r} needs a size"
                    )
                self._check_expr(st.size, scope)
            if st.init is not None:
                self._check_expr(st.init, scope)
            scope.declare(st.name, st.type)
        elif isinstance(st, ir.Assign):
            typ = scope.lookup(st.name)
            if isinstance(typ, ir.ArrayType):
                raise KirValidationError(
                    f"{fn.name}: cannot assign whole array {st.name!r}"
                )
            self._check_expr(st.value, scope)
        elif isinstance(st, ir.Store):
            self._check_expr(st.base, scope)
            base_t = self._expr_type(st.base, scope)
            if not isinstance(base_t, ir.ArrayType):
                raise KirValidationError(f"{fn.name}: store into non-array")
            if base_t.space == ir.CONSTANT:
                raise KirValidationError(f"{fn.name}: store into constant memory")
            self._check_expr(st.index, scope)
            self._check_expr(st.value, scope)
        elif isinstance(st, ir.If):
            self._check_expr(st.cond, scope)
            self._check_block(st.then, _Scope(scope), in_loop)
            self._check_block(st.orelse, _Scope(scope), in_loop)
        elif isinstance(st, ir.For):
            self._check_expr(st.start, scope)
            self._check_expr(st.stop, scope)
            self._check_expr(st.step, scope)
            inner = _Scope(scope)
            inner.declare(st.var, ir.INT_T)
            self._check_block(st.body, inner, in_loop=True)
        elif isinstance(st, ir.While):
            self._check_expr(st.cond, scope)
            self._check_block(st.body, _Scope(scope), in_loop=True)
        elif isinstance(st, (ir.Break, ir.Continue)):
            if not in_loop:
                kind = "break" if isinstance(st, ir.Break) else "continue"
                raise KirValidationError(f"{fn.name}: {kind} outside loop")
        elif isinstance(st, ir.Return):
            if st.value is not None:
                if fn.is_kernel:
                    raise KirValidationError(
                        f"kernel {fn.name} cannot return a value"
                    )
                self._check_expr(st.value, scope)
        elif isinstance(st, ir.ExprStmt):
            self._check_expr(st.expr, scope)
        elif isinstance(st, ir.Barrier):
            if not fn.is_kernel:
                raise KirValidationError(
                    f"{fn.name}: barrier outside kernel body"
                )
        else:
            raise KirValidationError(f"unknown statement {type(st).__name__}")

    # -- expressions -------------------------------------------------------

    def _check_expr(self, e: ir.Expr, scope: _Scope) -> None:
        assert self.fn is not None
        fn = self.fn
        if isinstance(e, ir.Const):
            return
        if isinstance(e, ir.Var):
            scope.lookup(e.name)
            return
        if isinstance(e, ir.BinOp):
            if e.op not in ir.ALL_BINOPS:
                raise KirValidationError(f"bad binary op {e.op!r}")
            self._check_expr(e.left, scope)
            self._check_expr(e.right, scope)
            return
        if isinstance(e, ir.UnOp):
            if e.op not in ir.UNARY_OPS:
                raise KirValidationError(f"bad unary op {e.op!r}")
            self._check_expr(e.operand, scope)
            return
        if isinstance(e, ir.Index):
            self._check_expr(e.base, scope)
            base_t = self._expr_type(e.base, scope)
            if not isinstance(base_t, ir.ArrayType):
                raise KirValidationError("indexing a non-array")
            self._check_expr(e.index, scope)
            return
        if isinstance(e, ir.Cast):
            self._check_expr(e.operand, scope)
            return
        if isinstance(e, ir.Select):
            self._check_expr(e.cond, scope)
            self._check_expr(e.if_true, scope)
            self._check_expr(e.if_false, scope)
            return
        if isinstance(e, ir.Call):
            for a in e.args:
                self._check_expr(a, scope)
            if e.name in ir.WORKITEM_BUILTINS:
                if not fn.is_kernel:
                    raise KirValidationError(
                        f"{fn.name}: {e.name} outside kernel"
                    )
                return
            if e.name in ir.MATH_BUILTINS:
                want = len(ir.MATH_BUILTINS[e.name][0])
                if len(e.args) != want:
                    raise KirValidationError(
                        f"{e.name} expects {want} args, got {len(e.args)}"
                    )
                return
            target = self.module.functions.get(e.name)
            if target is None:
                raise KirValidationError(f"call to unknown function {e.name!r}")
            if target.is_kernel:
                raise KirValidationError(f"cannot call kernel {e.name!r}")
            if ir.has_barrier(target):
                raise KirValidationError(
                    f"helper {e.name!r} contains a barrier"
                )
            if len(e.args) != len(target.params):
                raise KirValidationError(
                    f"{e.name} expects {len(target.params)} args,"
                    f" got {len(e.args)}"
                )
            return
        raise KirValidationError(f"unknown expression {type(e).__name__}")

    def _expr_type(self, e: ir.Expr, scope: _Scope) -> ir.Type | None:
        """Best-effort type of *e*: front-end annotation or scope lookup."""
        if e.type is not None:
            return e.type
        if isinstance(e, ir.Var):
            return scope.lookup(e.name)
        return None


def validate(module: ir.Module) -> None:
    """Validate *module*, raising :class:`KirValidationError` on problems."""
    _Validator(module).run()
