"""Kernel body composition for producer->consumer fusion.

The graph-level dispatch optimiser (:mod:`repro.opencl.fusion`) decides
*whether* two adjacent dispatches may merge; this module does the pure
IR surgery of merging them.  Given kernels A and B (each with a rename
map from its own parameter names onto the fused parameter list), it
builds a fresh validated :class:`~repro.kir.ir.Module` holding one
fused kernel whose body is A's statements followed by B's:

* **equal-range fusion** — both bodies are emitted back to back; the
  caller has already proven every shared buffer is accessed purely at
  ``get_global_id(0)``, so per-item interleaving, warp folding and the
  whole-array vectorised tier all observe A-before-B per element.
* **prologue fusion** — A was a single-work-item kernel; its body is
  wrapped in an ``if (get_global_id(0) == 0 && ...)`` guard over B's
  NDRange rank.  Work item (0, ..., 0) runs first in every execution
  tier (item order in the scalar engines, statement phases in the
  vectorised tier), so A's effects are visible to every instance of B
  exactly as they were across the original two launches.

Local variables and loop induction variables of both bodies are renamed
apart (``fa__`` / ``fb__`` prefixes) so the merged scope cannot clash,
and user helper functions referenced by either body are copied into the
fused module under the same prefixes.  Everything returned is freshly
constructed — the source kernels are never mutated — and the result is
deterministic, which keeps :func:`repro.kcache.module_fingerprint`
stable across runs (the fused binary cache hits).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from . import ir

#: Work-item builtins whose value depends on the launch geometry.  A
#: prologue-fused producer would observe B's NDRange instead of its own
#: single-item range through these, so their presence vetoes fusion
#: (checked by the optimiser via :func:`uses_geometry_builtins`).
GEOMETRY_BUILTINS = (
    "get_global_size",
    "get_local_size",
    "get_num_groups",
    "get_work_dim",
)


# ---------------------------------------------------------------------------
# Analysis helpers (used by the fusion legality checks)
# ---------------------------------------------------------------------------


def has_return(fn: ir.Function) -> bool:
    """Whether *fn*'s body contains a ``return`` anywhere.

    A ``return`` inside a fused producer would skip the consumer's
    statements for that work item, which the original two launches never
    did — so such producers are never fused.
    """
    return any(isinstance(st, ir.Return) for st in ir.walk_stmts(fn.body))


def uses_geometry_builtins(fn: ir.Function) -> bool:
    """Whether *fn* queries the launch geometry (sizes, group counts)."""
    for st in ir.walk_stmts(fn.body):
        for e in ir.walk_exprs(st):
            if isinstance(e, ir.Call) and e.name in GEOMETRY_BUILTINS:
                return True
    return False


def declares_local_array(fn: ir.Function) -> bool:
    """Whether *fn* declares ``__local`` storage (group-mode execution)."""
    for p in fn.params:
        if isinstance(p.type, ir.ArrayType) and p.type.space == ir.LOCAL:
            return True
    for st in ir.walk_stmts(fn.body):
        if isinstance(st, ir.Decl) and isinstance(st.type, ir.ArrayType):
            if st.type.space == ir.LOCAL:
                return True
    return False


def _is_gid0(e: ir.Expr, aliases: set[str]) -> bool:
    if isinstance(e, ir.Var):
        return e.name in aliases
    return (
        isinstance(e, ir.Call)
        and e.name == "get_global_id"
        and len(e.args) == 1
        and isinstance(e.args[0], ir.Const)
        and e.args[0].value == 0
    )


def gid_aliases(fn: ir.Function) -> set[str]:
    """Names bound exactly once, at the top level, to ``get_global_id(0)``.

    The idiomatic kernel prelude ``int i = get_global_id(0);`` makes
    ``i`` a faithful alias of the work-item id; any further assignment
    anywhere in the body disqualifies the name.
    """
    candidates: set[str] = set()
    for st in fn.body:
        if isinstance(st, ir.Decl) and st.init is not None:
            if _is_gid0(st.init, set()):
                candidates.add(st.name)
    # A later write (top-level or nested) invalidates the alias.
    seen_first: set[str] = set()
    for st in ir.walk_stmts(fn.body):
        if isinstance(st, ir.Decl) and st.name in candidates:
            if st.name in seen_first:
                candidates.discard(st.name)
            seen_first.add(st.name)
        elif isinstance(st, ir.Assign) and st.name in candidates:
            candidates.discard(st.name)
        elif isinstance(st, ir.For) and st.var in candidates:
            candidates.discard(st.var)
    return candidates


def accesses_elementwise(fn: ir.Function, param_names: set[str]) -> bool:
    """Whether every load/store of the named array params indexes purely
    at ``get_global_id(0)`` (directly or through a once-assigned alias).

    This is the structural condition under which per-item interleaved
    execution of a fused pair equals the original launch-after-launch
    order: work item *i* only ever touches element *i* of the shared
    buffers, so no item observes another item's half of the fusion.
    """
    if not param_names:
        return True
    aliases = gid_aliases(fn)
    for st in ir.walk_stmts(fn.body):
        if isinstance(st, ir.Store) and isinstance(st.base, ir.Var):
            if st.base.name in param_names:
                if not _is_gid0(st.index, aliases):
                    return False
        for e in ir.walk_exprs(st):
            if isinstance(e, ir.Index) and isinstance(e.base, ir.Var):
                if e.base.name in param_names:
                    if not _is_gid0(e.index, aliases):
                        return False
    return True


def user_callees(module: ir.Module, fn: ir.Function) -> list[str]:
    """Names of user helper functions *fn* reaches (transitively),
    in deterministic first-use order."""
    out: list[str] = []
    pending = [fn]
    seen: set[str] = set()
    while pending:
        current = pending.pop(0)
        for st in ir.walk_stmts(current.body):
            for e in ir.walk_exprs(st):
                if isinstance(e, ir.Call) and e.name in module.functions:
                    if e.name not in seen:
                        seen.add(e.name)
                        out.append(e.name)
                        pending.append(module.functions[e.name])
    return out


# ---------------------------------------------------------------------------
# Renaming deep copy
# ---------------------------------------------------------------------------


def _clone_expr(
    e: ir.Expr, names: Mapping[str, str], calls: Mapping[str, str]
) -> ir.Expr:
    if isinstance(e, ir.Const):
        out: ir.Expr = ir.Const(e.value)
    elif isinstance(e, ir.Var):
        out = ir.Var(names.get(e.name, e.name))
    elif isinstance(e, ir.BinOp):
        out = ir.BinOp(
            e.op, _clone_expr(e.left, names, calls),
            _clone_expr(e.right, names, calls),
        )
    elif isinstance(e, ir.UnOp):
        out = ir.UnOp(e.op, _clone_expr(e.operand, names, calls))
    elif isinstance(e, ir.Index):
        out = ir.Index(
            _clone_expr(e.base, names, calls),
            _clone_expr(e.index, names, calls),
        )
    elif isinstance(e, ir.Call):
        out = ir.Call(
            calls.get(e.name, e.name),
            [_clone_expr(a, names, calls) for a in e.args],
        )
    elif isinstance(e, ir.Cast):
        out = ir.Cast(e.target, _clone_expr(e.operand, names, calls))
    elif isinstance(e, ir.Select):
        out = ir.Select(
            _clone_expr(e.cond, names, calls),
            _clone_expr(e.if_true, names, calls),
            _clone_expr(e.if_false, names, calls),
        )
    else:  # pragma: no cover - new node kinds must be handled explicitly
        raise TypeError(f"cannot clone expression {type(e).__name__}")
    out.type = e.type
    return out


def _clone_stmts(
    stmts: Sequence[ir.Stmt],
    names: Mapping[str, str],
    calls: Mapping[str, str],
) -> list[ir.Stmt]:
    out: list[ir.Stmt] = []
    for st in stmts:
        if isinstance(st, ir.Decl):
            out.append(
                ir.Decl(
                    names.get(st.name, st.name),
                    st.type,
                    None if st.init is None
                    else _clone_expr(st.init, names, calls),
                    None if st.size is None
                    else _clone_expr(st.size, names, calls),
                )
            )
        elif isinstance(st, ir.Assign):
            out.append(
                ir.Assign(
                    names.get(st.name, st.name),
                    _clone_expr(st.value, names, calls),
                )
            )
        elif isinstance(st, ir.Store):
            out.append(
                ir.Store(
                    _clone_expr(st.base, names, calls),
                    _clone_expr(st.index, names, calls),
                    _clone_expr(st.value, names, calls),
                )
            )
        elif isinstance(st, ir.If):
            out.append(
                ir.If(
                    _clone_expr(st.cond, names, calls),
                    _clone_stmts(st.then, names, calls),
                    _clone_stmts(st.orelse, names, calls),
                )
            )
        elif isinstance(st, ir.For):
            out.append(
                ir.For(
                    names.get(st.var, st.var),
                    _clone_expr(st.start, names, calls),
                    _clone_expr(st.stop, names, calls),
                    _clone_expr(st.step, names, calls),
                    _clone_stmts(st.body, names, calls),
                )
            )
        elif isinstance(st, ir.While):
            out.append(
                ir.While(
                    _clone_expr(st.cond, names, calls),
                    _clone_stmts(st.body, names, calls),
                )
            )
        elif isinstance(st, ir.Break):
            out.append(ir.Break())
        elif isinstance(st, ir.Continue):
            out.append(ir.Continue())
        elif isinstance(st, ir.Return):
            out.append(
                ir.Return(
                    None if st.value is None
                    else _clone_expr(st.value, names, calls)
                )
            )
        elif isinstance(st, ir.ExprStmt):
            out.append(ir.ExprStmt(_clone_expr(st.expr, names, calls)))
        elif isinstance(st, ir.Barrier):
            out.append(ir.Barrier())
        else:  # pragma: no cover - new node kinds must be handled explicitly
            raise TypeError(f"cannot clone statement {type(st).__name__}")
    return out


def _local_names(fn: ir.Function) -> set[str]:
    """Every name the body declares (locals and loop induction vars)."""
    names: set[str] = set()
    for st in ir.walk_stmts(fn.body):
        if isinstance(st, ir.Decl):
            names.add(st.name)
        elif isinstance(st, ir.For):
            names.add(st.var)
    return names


def _rename_map(
    fn: ir.Function, param_map: Mapping[str, str], prefix: str
) -> dict[str, str]:
    """Full identifier rename for one fused side: parameters onto the
    fused parameter list, locals behind a side-unique prefix."""
    names = dict(param_map)
    for local in _local_names(fn):
        names[local] = f"{prefix}{local}"
    return names


def _gid_guard(rank: int) -> ir.Expr:
    """``get_global_id(0) == 0 && ... && get_global_id(rank-1) == 0``."""
    cond: Optional[ir.Expr] = None
    for dim in range(max(1, rank)):
        call = ir.Call("get_global_id", [ir.Const(dim)])
        call.type = ir.INT_T
        eq = ir.BinOp("==", call, ir.Const(0))
        eq.type = ir.BOOL_T
        if cond is None:
            cond = eq
        else:
            both = ir.BinOp("&&", cond, eq)
            both.type = ir.BOOL_T
            cond = both
    assert cond is not None
    return cond


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------


def compose_module(
    name: str,
    fn_a: ir.Function,
    module_a: ir.Module,
    param_map_a: Mapping[str, str],
    fn_b: ir.Function,
    module_b: ir.Module,
    param_map_b: Mapping[str, str],
    fused_params: Sequence[ir.Param],
    guard_rank: int = 0,
) -> ir.Module:
    """Build a module holding the fused kernel *name* = A then B.

    ``param_map_a`` / ``param_map_b`` rename each source kernel's
    parameters onto ``fused_params`` (the deduplicated union the
    optimiser derived from the actual buffer/scalar bindings).  With
    ``guard_rank > 0``, A's body becomes a prologue guarded to the
    all-zero work item of a *guard_rank*-dimensional NDRange (prologue
    fusion); with 0 the bodies are concatenated (equal-range fusion).
    Helper functions either body calls are copied in under ``fa__`` /
    ``fb__`` prefixes.  The caller validates and compiles the result.
    """
    module = ir.Module()

    calls_a: dict[str, str] = {}
    calls_b: dict[str, str] = {}
    for source_module, fn, calls, prefix in (
        (module_a, fn_a, calls_a, "fa__"),
        (module_b, fn_b, calls_b, "fb__"),
    ):
        for helper_name in user_callees(source_module, fn):
            calls[helper_name] = f"{prefix}{helper_name}"
        for helper_name, fused_name in calls.items():
            helper = source_module.functions[helper_name]
            module.add(
                ir.Function(
                    fused_name,
                    [ir.Param(p.name, p.type) for p in helper.params],
                    helper.ret_type,
                    _clone_stmts(helper.body, {}, calls),
                    is_kernel=False,
                )
            )

    body_a = _clone_stmts(
        fn_a.body, _rename_map(fn_a, param_map_a, "fa__"), calls_a
    )
    body_b = _clone_stmts(
        fn_b.body, _rename_map(fn_b, param_map_b, "fb__"), calls_b
    )
    if guard_rank > 0:
        body: list[ir.Stmt] = [ir.If(_gid_guard(guard_rank), body_a)]
    else:
        body = body_a
    body = body + body_b

    module.add(
        ir.Function(
            name,
            [ir.Param(p.name, p.type) for p in fused_params],
            ir.VOID,
            body,
            is_kernel=True,
        )
    )
    return module
