"""Vectorised batch execution of kernels (numpy backend).

The scalar engine (:mod:`repro.kir.pycodegen`) executes an NDRange one
Python work-item at a time.  This module instead compiles a kernel into
a ``__vec_<name>(args, gsz, lsz)`` function that executes the whole
NDRange as numpy array operations, one array lane per work-item, and
returns the per-item dynamic op-count *vector*, which
:func:`fold_group_warps` reduces to the per-group warp maxima the cost
model consumes.

Three escalating capabilities make almost every kernel eligible:

* **Masked straight-line / structured code** — ``if``/``else`` becomes
  boolean masks, counted ``for`` loops with item-invariant bounds stay
  plain Python loops.
* **Iterative masked evaluation** — ``while`` loops, ``for`` loops with
  item-dependent bounds, ``break``, ``continue`` and early ``return``
  keep a per-lane *active mask*; the loop body re-executes under the
  mask until it empties.  ``break``/``continue``/``return`` subtract
  lanes from the enclosing masks.  A runaway loop (more than
  :data:`LOOP_ITER_CAP` iterations) raises :class:`VecIterationCap` and
  the dispatcher falls back to the scalar warp-fold.
* **Pure user-function inlining** — calls to side-effect-free
  kernel-language helpers are inlined at codegen time (with per-site
  renaming), charging exactly the ops the scalar engine charges.
* **Cooperative barrier phases** — group-mode kernels (barriers /
  ``__local`` arrays) execute with local memory materialised as
  ``(num_groups, size)`` numpy buffers.  Every statement already runs
  in lock-step across all lanes, so ``barrier()`` itself emits nothing;
  eligibility restricts barriers to dispatch-uniform control flow so
  the scalar engine would never diagnose divergence either.

Two optimisation passes keep deep divergent loops cheap without
changing anything observable:

* **Active-lane compaction** — a masked loop whose live-lane density
  falls below :data:`COMPACT_DENSITY` (re-checked every
  :data:`COMPACT_CHECK_EVERY` rounds) gathers its loop-carried state
  into a contiguous array via ``np.flatnonzero`` and runs subsequent
  rounds at the compacted width, scattering results back to full width
  on exit.  Charging, mask subtraction and the iteration cap are
  bit-identical to the full-width path; the thresholds are read at run
  time (see :func:`repro.opencl.dispatch.configure`), so cached
  kernels honour later configuration changes.
* **Common-subexpression elimination** — pure ``ir.Expr`` subtrees are
  hashed per masked region at codegen time and repeated occurrences
  (e.g. a loop condition's ``x*x + y*y`` reused in its body) become
  single-assignment temporaries, invalidated on assignments to their
  dependencies and conservatively on any store to an array.

Op accounting mirrors ``_FnCompiler.block`` exactly (same per-block
batching, the same ``+1`` / ``+2`` control-flow charges, masked where
the scalar path is conditional), so the folded warp maxima — and hence
every simulated nanosecond — are identical to the scalar engines';
tests assert this.  Both passes above are charging-equivalent by
construction: charges derive from static IR costs, never from the
numpy expressions actually emitted.

Kernels the tier still refuses (reason strings surface as
``dispatch.fallback.<reason>`` trace counters): ``get_work_dim``
(``work-dim``), non-variable array bases (``array-expr``), variant
array sizes (``array-size``), local arrays declared below the kernel's
top level (``local-array``), barriers under divergent control flow or
early return in a barrier kernel (``barrier``), impure or recursive
user calls (``user-call``), and division or loads inside speculatively
evaluated select / short-circuit operands (``speculative``).

Known semantic deltas of the vector tier (documented, none observable
in race-free kernels): int64 wrap-around instead of Python big ints,
same-address stores from multiple work-items resolve by numpy
fancy-assignment order, and statements between barriers execute in
lock-step across lanes rather than item-by-item.

Everything here is a wall-clock optimisation only; when numpy is not
installed the module degrades to ``AVAILABLE = False`` and the scalar
engine carries all execution.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Optional, Sequence

from ..errors import KirRuntimeError
from . import ir
from .interp import c_idiv, c_imod
from .pycodegen import (
    _Emitter,
    _MAX_DIMS,
    _WI_VARS,
    _kind,
    _local_decls,
    _pad3,
    _static_cost,
    _stmt_cost,
    _used_workitem_vars,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

AVAILABLE = _np is not None

#: Masked-loop iteration budget per loop entry.  A loop still live past
#: this many iterations raises :class:`VecIterationCap`; the dispatcher
#: restores written buffers and re-runs on the scalar warp-fold (which
#: will hang or fault exactly as the kernel deserves).
LOOP_ITER_CAP = 65536


class VecIterationCap(Exception):
    """A masked loop exceeded :data:`LOOP_ITER_CAP` iterations."""


#: Live-lane density below which a compactible masked loop compresses
#: to its active lanes.  ``0.0`` disables compaction; ``1.0`` compacts
#: as soon as any lane has exited.  Mutated via
#: :func:`repro.opencl.dispatch.configure`; read at run time by
#: generated kernels, so the setting applies to already-compiled code.
COMPACT_DENSITY = 0.5

#: How many loop rounds pass between density checks (the first round of
#: every compactible loop is always checked, so a loop entered under a
#: sparse mask compacts immediately).
COMPACT_CHECK_EVERY = 8


_NP_DTYPE_OF = {"int": "__np.int64", "float": "__np.float64", "bool": "bool"}

_ZERO = {"int": "0", "float": "0.0", "bool": "False"}

#: math builtin -> numpy-side expression prefix
_NP_MATH = {
    "sqrt": "__np.sqrt",
    "fabs": "__np.abs",
    "exp": "__np.exp",
    "log": "__np.log",
    "sin": "__np.sin",
    "cos": "__np.cos",
    "tan": "__np.tan",
    "atan": "__np.arctan",
    "atan2": "__np.arctan2",
    "pow": "__vpow",
    "floor": "__np.floor",
    "ceil": "__np.ceil",
    "fmin": "__np.minimum",
    "fmax": "__np.maximum",
    "min": "__np.minimum",
    "max": "__np.maximum",
    "abs": "__np.abs",
    "clamp": "__vclamp",
}

_VARIANT_ID_BUILTINS = ("get_global_id", "get_local_id", "get_group_id")


# -- runtime helpers (the generated code's namespace) ----------------------


def _is_arr(x: Any) -> bool:
    return isinstance(x, _np.ndarray)


def _vmask(val: Any, n: int):
    """Normalise an if/loop condition to a full-width boolean mask."""
    if _is_arr(val):
        return val
    if val:
        return _np.ones(n, dtype=bool)
    return _np.zeros(n, dtype=bool)


def _vidiv(a: Any, b: Any, m: Any):
    """C-style integer division, mask-aware for inactive lanes."""
    if not _is_arr(a) and not _is_arr(b):
        return c_idiv(a, b)
    a = _np.asarray(a)
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise KirRuntimeError("integer division by zero")
        b = _np.where(zero, 1, b)
    q = _np.abs(a) // _np.abs(b)
    return _np.where((a < 0) == (b < 0), q, -q)


def _vimod(a: Any, b: Any, m: Any):
    """C-style integer remainder (sign follows the dividend)."""
    if not _is_arr(a) and not _is_arr(b):
        return c_imod(a, b)
    return a - _vidiv(a, b, m) * b


def _vfdiv(a: Any, b: Any, m: Any):
    """Float division, mask-aware for inactive lanes."""
    if not _is_arr(a) and not _is_arr(b):
        if b == 0:
            raise ZeroDivisionError("float division by zero")
        return a / b
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise ZeroDivisionError("float division by zero")
        b = _np.where(zero, 1.0, b)
    return a / b


def _int_like(x: Any) -> bool:
    if _is_arr(x):
        return x.dtype.kind in "bi"
    return isinstance(x, (bool, int, _np.integer))


def _vdiv(a: Any, b: Any, m: Any):
    """Dynamically-typed division (mirrors ``_runtime_div``)."""
    if _int_like(a) and _int_like(b):
        return _vidiv(a, b, m)
    try:
        return _vfdiv(a, b, m)
    except ZeroDivisionError:
        raise KirRuntimeError("float division by zero") from None


def _vmod(a: Any, b: Any, m: Any):
    """Dynamically-typed modulo (mirrors ``_runtime_mod``)."""
    if _int_like(a) and _int_like(b):
        return _vimod(a, b, m)
    return _vfmod(a, b, m)


def _vfmod(a: Any, b: Any, m: Any):
    """Float remainder with C semantics, mask-aware."""
    if not _is_arr(a) and not _is_arr(b):
        return math.fmod(a, b)
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise ValueError("math domain error")
        b = _np.where(zero, 1.0, b)
    return _np.fmod(a, b)


def _vpow(a: Any, b: Any):
    """Vector ``pow`` (always float, like ``math.pow``)."""
    return _np.float_power(a, b)


def _vclamp(x: Any, lo: Any, hi: Any):
    """Vector ``clamp``."""
    return _np.clip(x, lo, hi)


def _vload(arr: Any, idx: Any, m: Any):
    """Gather from a global array; inactive lanes read a safe index."""
    if m is None or not _is_arr(idx):
        return arr[idx]
    return arr[_np.where(m, idx, 0)]


def _vload2(arr: Any, rows: Any, idx: Any, m: Any):
    """Gather each work-item's slot from its private/local-array row."""
    if m is not None and _is_arr(idx):
        idx = _np.where(m, idx, 0)
    return arr[rows, idx]


def _vstore(arr: Any, idx: Any, val: Any, m: Any) -> None:
    """Scatter into a global array with sequential-store semantics."""
    if m is None:
        if _is_arr(idx):
            arr[idx] = val
        elif _is_arr(val):
            arr[idx] = val[-1]  # every item stores here: last one wins
        else:
            arr[idx] = val
        return
    if _is_arr(idx):
        sel = idx[m]
        arr[sel] = val[m] if _is_arr(val) else val
        return
    if bool(m.any()):
        if _is_arr(val):
            active = val[m]
            arr[idx] = active[-1]
        else:
            arr[idx] = val


def _vstore2(arr: Any, rows: Any, idx: Any, val: Any, m: Any) -> None:
    """Scatter into per-item private (or per-group local) array rows."""
    if m is None:
        arr[rows, idx] = val
        return
    r = rows[m] if _is_arr(rows) else rows
    i = idx[m] if _is_arr(idx) else idx
    v = val[m] if _is_arr(val) else val
    arr[r, i] = v


# -- lane compaction runtime ------------------------------------------------


def _should_compact(rounds: int, act: Any) -> bool:
    """Whether a compactible masked loop should (re)compress now.

    Checked at the top of every loop round: fires every
    :data:`COMPACT_CHECK_EVERY` rounds when the live-lane density of
    *act* has dropped below :data:`COMPACT_DENSITY`.  Reads the module
    configuration at call time so
    :func:`repro.opencl.dispatch.configure` affects kernels that were
    compiled (and cached process-wide) earlier.
    """
    if COMPACT_DENSITY <= 0.0:
        return False
    if rounds % COMPACT_CHECK_EVERY:
        return False
    return int(act.sum()) < COMPACT_DENSITY * act.shape[0]


def _vsave(v: Any) -> Any:
    """Snapshot a loop-carried value at the first compaction event.

    Arrays are copied: later rounds scatter into the snapshot in place,
    and the pre-loop value may be aliased by other variables (an
    unmasked ``b = x`` emits a direct rebind), so mutating the original
    object would corrupt them.  Scalars (lanes that never diverged) are
    returned as-is.
    """
    return v.copy() if _is_arr(v) else v


def _vtake(v: Any, sel: Any) -> Any:
    """Gather the *sel* lanes of a per-lane value (no-op on scalars)."""
    return v[sel] if _is_arr(v) else v


def _vput(full: Any, sel: Any, val: Any, width: int) -> Any:
    """Scatter a compacted value back into its full-width snapshot.

    *full* is the (private, see :func:`_vsave`) snapshot at *width*
    lanes, *sel* the absolute indices the compact *val* occupies.  A
    scalar *val* with a scalar snapshot means the variable has only ever
    seen unmasked uniform assignments (a ``for`` induction variable with
    scalar bounds keeps incrementing as a plain int), so the *current*
    value is the full-width value — returning the stale snapshot would
    rewind the variable at the next regather.  A scalar on one side only
    is promoted/broadcast before the scatter.
    """
    if not _is_arr(val) and not _is_arr(full):
        return val
    if not _is_arr(full):
        full = _np.full(width, full)
    full[sel] = val
    return full


class _CompactStats(threading.local):
    """Per-thread compaction accounting (events and compacted rounds)."""

    events = 0
    rounds = 0


_compact_stats = _CompactStats()


def _note_compaction(events: int, rounds: int) -> None:
    """Accumulate compaction stats (called from generated kernels).

    *events* is counted eagerly at each compaction event (so a loop
    that later hits the iteration cap still reports them); *rounds* —
    the number of loop rounds evaluated at compacted width — is
    reported once at loop exit.
    """
    _compact_stats.events += events
    _compact_stats.rounds += rounds


def thread_compact_stats() -> tuple[int, int]:
    """This thread's cumulative ``(events, compacted_rounds)``.

    The dispatcher snapshots this around a vectorised run and counts
    the delta as ``dispatch.compact`` / ``dispatch.compact.rounds``.
    """
    return _compact_stats.events, _compact_stats.rounds


def _namespace_base() -> dict[str, Any]:
    return {
        "__np": _np,
        "__vmask": _vmask,
        "__vidiv": _vidiv,
        "__vimod": _vimod,
        "__vdiv": _vdiv,
        "__vmod": _vmod,
        "__vfdiv": _vfdiv,
        "__vfmod": _vfmod,
        "__vpow": _vpow,
        "__vclamp": _vclamp,
        "__vload": _vload,
        "__vload2": _vload2,
        "__vstore": _vstore,
        "__vstore2": _vstore2,
        "__vnot": None if _np is None else _np.logical_not,
        "__vand": None if _np is None else _np.logical_and,
        "__vor": None if _np is None else _np.logical_or,
        "__vsel": None if _np is None else _np.where,
        "__kre": KirRuntimeError,
        "__CAP": LOOP_ITER_CAP,
        "__vcaperr": VecIterationCap,
        "__vcshould": _should_compact,
        "__vsave": _vsave,
        "__vtake": _vtake,
        "__vput": _vput,
        "__vcstats": _note_compaction,
    }


# -- eligibility -----------------------------------------------------------


def _unsafe_speculative(e: ir.Expr) -> bool:
    """True if evaluating *e* on lanes that would not evaluate it in the
    scalar engine can fault: division/modulo (zero) and array loads
    (out-of-range index).  numpy evaluates both arms of a select and
    both sides of ``&&``/``||``, so such expressions are only safe in
    positions the scalar engine also evaluates unconditionally."""
    return any(
        (isinstance(n, ir.BinOp) and n.op in ("/", "%"))
        or isinstance(n, ir.Index)
        for n in ir.walk_exprs(e)
    )


def _direct(stmts: Sequence[ir.Stmt], kinds) -> bool:
    """True when a statement of *kinds* binds to this loop level (it is
    not nested inside an inner loop)."""
    for st in stmts:
        if isinstance(st, kinds):
            return True
        if isinstance(st, ir.If):
            if _direct(st.then, kinds) or _direct(st.orelse, kinds):
                return True
    return False


def _loop_divergent(body: Sequence[ir.Stmt]) -> bool:
    """True when lanes can leave this loop at different trip counts:
    a ``break``/``continue`` bound to it, or a ``return`` anywhere."""
    if _direct(body, (ir.Break, ir.Continue)):
        return True
    return any(isinstance(s, ir.Return) for s in ir.walk_stmts(body))


def _callee_taints(module: ir.Module, name: str, seen: tuple = ()) -> bool:
    """True when calling *name* can produce per-lane-different values
    even on item-invariant arguments (it reads arrays, uses work-item
    state, or cannot be resolved)."""
    fn = module.functions.get(name)
    if fn is None or name in seen:
        return True
    for st in ir.walk_stmts(fn.body):
        for e in ir.walk_exprs(st):
            if isinstance(e, ir.Index):
                return True
            if isinstance(e, ir.Call):
                if e.name in ir.WORKITEM_BUILTINS:
                    return True
                if e.name not in _NP_MATH and _callee_taints(
                    module, e.name, seen + (name,)
                ):
                    return True
    return False


def _make_expr_variant(module: ir.Module, variant: set[str]):
    """Build the "can this expression differ between lanes" predicate
    over the evolving *variant* set."""

    def expr_variant(e: Optional[ir.Expr]) -> bool:
        if e is None:
            return False
        for node in ir.walk_exprs(e):
            if isinstance(node, ir.Var) and node.name in variant:
                return True
            if isinstance(node, ir.Index):
                return True
            if isinstance(node, ir.Call):
                if node.name in _VARIANT_ID_BUILTINS:
                    return True
                if (
                    node.name not in ir.WORKITEM_BUILTINS
                    and node.name not in _NP_MATH
                    and _callee_taints(module, node.name)
                ):
                    return True
        return False

    return expr_variant


def _masked_for(st: ir.For, expr_variant) -> bool:
    """Whether a ``for`` loop needs iterative masked evaluation (as
    opposed to a plain uniform Python loop)."""
    return (
        not isinstance(st.step, ir.Const)
        or _loop_divergent(st.body)
        or any(
            isinstance(s, ir.Assign) and s.name == st.var
            for s in ir.walk_stmts(st.body)
        )
        or expr_variant(st.start)
        or expr_variant(st.stop)
        or expr_variant(st.step)
    )


def _masked_while(st: ir.While, expr_variant) -> bool:
    """Whether a ``while`` loop needs iterative masked evaluation."""
    return _loop_divergent(st.body) or expr_variant(st.cond)


def _variant_vars(
    module: ir.Module, fn: ir.Function, seeds: Sequence[str] = ()
) -> set[str]:
    """Scalar variables whose value can differ between work-items.

    Seeds: work-item ids and array loads are variant; everything
    derived from them (or assigned under a condition or inside a
    masked loop, which masking turns into an array) becomes variant.
    *seeds* pre-marks names (used for inline sites, where a callee
    parameter bound to a variant argument is variant).  Fixpoint over
    the body.
    """
    variant: set[str] = set(seeds)
    expr_variant = _make_expr_variant(module, variant)

    changed = True
    while changed:
        changed = False

        def visit(stmts: Sequence[ir.Stmt], conditional: bool) -> None:
            nonlocal changed
            for st in stmts:
                if isinstance(st, ir.Decl):
                    if isinstance(st.type, ir.ArrayType):
                        continue
                    if (conditional or expr_variant(st.init)) and (
                        st.name not in variant
                    ):
                        variant.add(st.name)
                        changed = True
                elif isinstance(st, ir.Assign):
                    if (conditional or expr_variant(st.value)) and (
                        st.name not in variant
                    ):
                        variant.add(st.name)
                        changed = True
                elif isinstance(st, ir.If):
                    visit(st.then, True)
                    visit(st.orelse, True)
                elif isinstance(st, ir.For):
                    masked = _masked_for(st, expr_variant)
                    if masked and st.var not in variant:
                        variant.add(st.var)
                        changed = True
                    visit(st.body, conditional or masked)
                elif isinstance(st, ir.While):
                    visit(
                        st.body,
                        conditional or _masked_while(st, expr_variant),
                    )

        visit(fn.body, False)
    return variant


def _barriers_phase_safe(
    stmts: Sequence[ir.Stmt], uniform: bool, expr_variant
) -> bool:
    """Every barrier sits in dispatch-uniform control flow: at the top
    level, or inside loops whose trip count is identical for all lanes.
    Barriers under ``if`` are rejected outright (the scalar engine
    diagnoses real divergence at runtime; demoting keeps that
    behaviour)."""
    for st in stmts:
        if isinstance(st, ir.Barrier):
            if not uniform:
                return False
        elif isinstance(st, ir.If):
            if not _barriers_phase_safe(st.then, False, expr_variant):
                return False
            if not _barriers_phase_safe(st.orelse, False, expr_variant):
                return False
        elif isinstance(st, ir.For):
            inner = uniform and not _masked_for(st, expr_variant)
            if not _barriers_phase_safe(st.body, inner, expr_variant):
                return False
        elif isinstance(st, ir.While):
            inner = uniform and not _masked_while(st, expr_variant)
            if not _barriers_phase_safe(st.body, inner, expr_variant):
                return False
    return True


def _call_reason(
    module: ir.Module, call: ir.Call, stack: tuple
) -> Optional[str]:
    """Inlinability of one user-function call site (None when OK)."""
    target = module.functions.get(call.name)
    if target is None or target.is_kernel or call.name in stack:
        return "user-call"
    if len(target.params) != len(call.args):
        return "user-call"
    for p, a in zip(target.params, call.args):
        if isinstance(p.type, ir.ArrayType) and not isinstance(a, ir.Var):
            return "user-call"
    for st in ir.walk_stmts(target.body):
        if isinstance(st, (ir.Store, ir.Barrier)):
            return "user-call"
        if isinstance(st, ir.Decl) and isinstance(st.type, ir.ArrayType):
            return "user-call"
    return _body_reason(module, target.body, stack + (call.name,))


def _body_reason(
    module: ir.Module, body: Sequence[ir.Stmt], stack: tuple
) -> Optional[str]:
    """Statement/expression-level vectorisation blockers in *body*
    (including transitively inlined callees).  None when clean."""
    for st in ir.walk_stmts(body):
        if isinstance(st, ir.Store) and not isinstance(st.base, ir.Var):
            return "array-expr"
        for e in ir.walk_exprs(st):
            if isinstance(e, ir.Index) and not isinstance(e.base, ir.Var):
                return "array-expr"
            if isinstance(e, ir.Call):
                if e.name == "get_work_dim":
                    return "work-dim"
                if e.name in ir.WORKITEM_BUILTINS:
                    if not e.args or not isinstance(e.args[0], ir.Const):
                        return "work-dim"
                    continue
                if e.name in _NP_MATH:
                    continue
                reason = _call_reason(module, e, stack)
                if reason:
                    return reason
            if isinstance(e, ir.Select) and (
                _unsafe_speculative(e.if_true)
                or _unsafe_speculative(e.if_false)
            ):
                return "speculative"
            if isinstance(e, ir.BinOp):
                if e.op in ("&&", "||") and _unsafe_speculative(e.right):
                    return "speculative"
    return None


def eligibility(module: ir.Module, fn: ir.Function) -> Optional[str]:
    """Why *fn* cannot run on the vectorised tier, or None if it can.

    The reason string becomes the ``dispatch.fallback.<reason>`` trace
    counter suffix when a dispatch is demoted to a scalar tier.
    """
    if not AVAILABLE:
        return "no-numpy"
    variant = _variant_vars(module, fn)
    expr_variant = _make_expr_variant(module, variant)

    def invariant(e: Optional[ir.Expr]) -> bool:
        if e is None:
            return False
        return not expr_variant(e) and not any(
            isinstance(n, ir.Call) and n.name == "get_work_dim"
            for n in ir.walk_exprs(e)
        )

    top_locals = {
        st.name
        for st in fn.body
        if isinstance(st, ir.Decl)
        and isinstance(st.type, ir.ArrayType)
        and st.type.space == ir.LOCAL
    }
    for st in ir.walk_stmts(fn.body):
        if isinstance(st, ir.Decl) and isinstance(st.type, ir.ArrayType):
            if st.size is None or not invariant(st.size):
                return "array-size"
            if st.type.space == ir.LOCAL and st.name not in top_locals:
                return "local-array"
    if ir.has_barrier(fn):
        if any(isinstance(s, ir.Return) for s in ir.walk_stmts(fn.body)):
            return "barrier"
        if not _barriers_phase_safe(fn.body, True, expr_variant):
            return "barrier"
    return _body_reason(module, fn.body, (fn.name,))


# -- codegen ---------------------------------------------------------------


class _VecCompiler:
    """Compiles one eligible kernel body to masked numpy statements."""

    def __init__(
        self,
        module: ir.Module,
        fn: ir.Function,
        em: _Emitter,
        variant: set[str],
    ) -> None:
        self.module = module
        self.fn = fn
        self.em = em
        #: stack of boolean-mask variable names; empty = all lanes
        self.masks: list[str] = []
        #: enclosing masked loops: {'depth', 'act'}
        self.loops: list[dict] = []
        #: rename scopes for inlined callees (innermost last)
        self.scopes: list[dict[str, str]] = []
        #: per-scope variant-variable sets (kernel's own at index 0)
        self.variants: list[set[str]] = [variant]
        #: resolved 2-D array name -> row-index variable
        self.rowed: dict[str, str] = {}
        #: return contexts: {'depth', 'ret'} (kernel level at index 0
        #: when the kernel body contains Return)
        self.inline_ctx: list[dict] = []
        self.inline_stack: list[str] = []
        #: True once any masked loop was emitted (the iteration cap can
        #: fire at runtime, so dispatch snapshots written buffers)
        self.has_masked_loops = False
        #: stack of width expressions; compactible masked loops push
        #: their current-width variable so inner mask materialisation
        #: (``__vmask`` / ``ones``) matches the compacted lane count
        self.widths: list[str] = ["__n"]
        #: per-lane work-item index arrays emitted by the prologue
        #: (``__lin`` always, plus any ``__g*``/``__l*``/``__grp*`` and
        #: ``__grow``); compaction gathers them so absolute-index
        #: semantics survive at compacted width
        self.lane_arrays: list[str] = ["__lin"]
        #: CSE availability table: structural key -> (temp, deps, load)
        self.cse_table: dict = {}
        #: keys added per lexical scope (popped when leaving a
        #: conditionally-executed region, so a temp assigned under a
        #: runtime-skippable branch is never reused outside it)
        self.cse_scopes: list[set] = [set()]
        #: static count of eliminated re-evaluations (reuse sites)
        self.cse_hits = 0
        self.tmp = 0

    def var(self, name: str) -> str:
        """Resolve *name* through the inline rename scopes."""
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return f"v_{name}"

    def fresh_mask(self) -> str:
        self.tmp += 1
        return f"__m{self.tmp}"

    def fresh(self, prefix: str) -> str:
        self.tmp += 1
        return f"__{prefix}{self.tmp}"

    @property
    def mask(self) -> Optional[str]:
        return self.masks[-1] if self.masks else None

    def _m(self) -> str:
        return self.mask or "None"

    def _expr_variant(self, e: Optional[ir.Expr]) -> bool:
        return _make_expr_variant(self.module, self.variants[-1])(e)

    def add_ops(self, n: int) -> None:
        if self.mask is None:
            self.em.emit(f"__ops += {n}")
        else:
            # bool * int broadcast beats boolean fancy indexing by an
            # order of magnitude and is density-independent.
            self.em.emit(f"__ops += {self.mask} * {n}")

    def _width(self) -> str:
        """The lane-count expression masks materialise at (the full
        ``__n``, or the innermost compacted loop's width variable)."""
        return self.widths[-1]

    # -- common-subexpression elimination -------------------------------

    def _cse_clear(self) -> None:
        """Drop every available expression (region boundary)."""
        self.cse_table.clear()

    def _cse_push(self) -> None:
        self.cse_scopes.append(set())

    def _cse_pop(self) -> None:
        """Leave a conditionally-executed region: its temps may not
        have been assigned at runtime, so they are not reusable."""
        for key in self.cse_scopes.pop():
            self.cse_table.pop(key, None)

    def _cse_kill(self, name: str) -> None:
        """Invalidate entries depending on *name* (it was reassigned)."""
        if not self.cse_table:
            return
        dead = [
            k for k, (_, deps, _) in self.cse_table.items() if name in deps
        ]
        for k in dead:
            del self.cse_table[k]

    def _cse_kill_loads(self) -> None:
        """Invalidate every entry containing an array load.  Any store
        may alias any array (two parameters can name the same buffer),
        so stores are treated as clobbering all of them."""
        if not self.cse_table:
            return
        dead = [k for k, (_, _, load) in self.cse_table.items() if load]
        for k in dead:
            del self.cse_table[k]

    def _cse_key(self, e: ir.Expr):
        """Structural availability key for *e*, or None when the
        expression is not cacheable (user calls, whose inlining emits
        statements).  Variable names are resolved through the inline
        scopes; mask-dependent forms (division helpers, loads) embed
        the current mask name so a reuse under a different mask misses.
        """
        if isinstance(e, ir.Const):
            return ("c", type(e.value).__name__, e.value)
        if isinstance(e, ir.Var):
            return ("v", self.var(e.name))
        if isinstance(e, ir.UnOp):
            k = self._cse_key(e.operand)
            return None if k is None else ("u", e.op, k)
        if isinstance(e, ir.BinOp):
            lk = self._cse_key(e.left)
            rk = self._cse_key(e.right)
            if lk is None or rk is None:
                return None
            if e.op in ("/", "%"):
                kinds = (_kind(e.left), _kind(e.right))
                return ("d", e.op, kinds, self._m(), lk, rk)
            return ("b", e.op, lk, rk)
        if isinstance(e, ir.Cast):
            k = self._cse_key(e.operand)
            return None if k is None else ("t", e.target.kind, k)
        if isinstance(e, ir.Select):
            ks = tuple(
                self._cse_key(x) for x in (e.cond, e.if_true, e.if_false)
            )
            return None if None in ks else ("s",) + ks
        if isinstance(e, ir.Index):
            if not isinstance(e.base, ir.Var):
                return None
            ik = self._cse_key(e.index)
            if ik is None:
                return None
            return ("l", self.var(e.base.name), self._m(), ik)
        if isinstance(e, ir.Call):
            if e.name in ir.WORKITEM_BUILTINS:
                return ("v", self._call(e))
            if e.name in _NP_MATH:
                ks = tuple(self._cse_key(a) for a in e.args)
                return None if None in ks else ("m", e.name, ks)
        return None

    def _cse_deps(self, e: ir.Expr) -> tuple[frozenset, bool]:
        """(resolved names the cached value depends on, contains-load)."""
        deps: set[str] = set()
        load = False
        masked = False
        for node in ir.walk_exprs(e):
            if isinstance(node, ir.Var):
                deps.add(self.var(node.name))
            elif isinstance(node, ir.Index):
                load = True
                masked = True
            elif isinstance(node, ir.BinOp) and node.op in ("/", "%"):
                masked = True
        if masked and self.mask is not None:
            # Mask-aware helpers bake the mask's value in; killing on
            # mask reassignment (break/continue/return subtraction,
            # per-round act updates) keeps reuse exact.
            deps.add(self.mask)
        return frozenset(deps), load

    # -- expressions ----------------------------------------------------

    def expr(self, e: ir.Expr) -> str:
        """Emit *e*, reusing a previously computed temp when an
        identical pure subexpression is still available."""
        if isinstance(e, (ir.Const, ir.Var)):
            return self._expr_raw(e)
        if isinstance(e, ir.Call) and e.name in ir.WORKITEM_BUILTINS:
            return self._expr_raw(e)
        key = self._cse_key(e)
        if key is None:
            return self._expr_raw(e)
        hit = self.cse_table.get(key)
        if hit is not None:
            self.cse_hits += 1
            return hit[0]
        code = self._expr_raw(e)
        tmp = self.fresh("c")
        self.em.emit(f"{tmp} = {code}")
        deps, load = self._cse_deps(e)
        self.cse_table[key] = (tmp, deps, load)
        self.cse_scopes[-1].add(key)
        return tmp

    def _expr_raw(self, e: ir.Expr) -> str:
        if isinstance(e, ir.Const):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, ir.Var):
            return self.var(e.name)
        if isinstance(e, ir.BinOp):
            return self._binop(e)
        if isinstance(e, ir.UnOp):
            inner = self.expr(e.operand)
            if e.op == "-":
                return f"(-{inner})"
            if e.op == "!":
                return f"__vnot({inner})"
            return f"(~{inner})"
        if isinstance(e, ir.Index):
            assert isinstance(e.base, ir.Var)
            base = self.var(e.base.name)
            idx = self.expr(e.index)
            row = self.rowed.get(base)
            if row is not None:
                return f"__vload2({base}, {row}, {idx}, {self._m()})"
            return f"__vload({base}, {idx}, {self._m()})"
        if isinstance(e, ir.Cast):
            inner = self.expr(e.operand)
            fn = {"int": "__vint", "float": "__vfloat", "bool": "__vbool"}[
                e.target.kind
            ]
            return f"{fn}({inner})"
        if isinstance(e, ir.Select):
            c = self.expr(e.cond)
            t = self.expr(e.if_true)
            f = self.expr(e.if_false)
            return f"__vsel({c}, {t}, {f})"
        if isinstance(e, ir.Call):
            return self._call(e)
        raise KirRuntimeError(f"vec codegen: unknown expr {type(e).__name__}")

    def _binop(self, e: ir.BinOp) -> str:
        lk = _kind(e.left)
        rk = _kind(e.right)
        left = self.expr(e.left)
        right = self.expr(e.right)
        op = e.op
        if op == "/":
            if lk == ir.INT and rk == ir.INT:
                return f"__vidiv({left}, {right}, {self._m()})"
            if ir.FLOAT in (lk, rk):
                return f"__vfdiv({left}, {right}, {self._m()})"
            return f"__vdiv({left}, {right}, {self._m()})"
        if op == "%":
            if lk == ir.INT and rk == ir.INT:
                return f"__vimod({left}, {right}, {self._m()})"
            if ir.FLOAT in (lk, rk):
                return f"__vfmod({left}, {right}, {self._m()})"
            return f"__vmod({left}, {right}, {self._m()})"
        if op == "&&":
            return f"__vand({left}, {right})"
        if op == "||":
            return f"__vor({left}, {right})"
        return f"({left} {op} {right})"

    def _call(self, e: ir.Call) -> str:
        if e.name in ir.WORKITEM_BUILTINS:
            d = int(e.args[0].value)  # type: ignore[attr-defined]
            if not 0 <= d < _MAX_DIMS:
                return "0" if e.name.endswith("_id") else "1"
            return f"{_WI_VARS[e.name]}{d}"
        if e.name in _NP_MATH:
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{_NP_MATH[e.name]}({args})"
        return self._inline_call(e)

    def _inline_call(self, e: ir.Call) -> str:
        """Inline a pure user-function call under the current mask.

        Ops match the scalar engine exactly: argument expressions are
        charged by the caller's statement cost (``_stmt_cost`` walks
        into call arguments), parameter binding is free, the callee
        body is charged by the shared :meth:`block`, and each
        ``return`` is charged like any other statement."""
        callee = self.module.functions[e.name]
        k = self.fresh("i")
        scope: dict[str, str] = {}
        seeds: list[str] = []
        for p, a in zip(callee.params, e.args):
            if isinstance(p.type, ir.ArrayType):
                assert isinstance(a, ir.Var)
                scope[p.name] = self.var(a.name)
            else:
                tmp = f"{k}a_{p.name}"
                self.em.emit(f"{tmp} = {self.expr(a)}")
                scope[p.name] = tmp
                if self._expr_variant(a):
                    seeds.append(p.name)
        for st in ir.walk_stmts(callee.body):
            if isinstance(st, ir.Decl) and st.name not in scope:
                scope[st.name] = f"{k}v_{st.name}"
            elif isinstance(st, ir.For) and st.var not in scope:
                scope[st.var] = f"{k}v_{st.var}"
        ret: Optional[str] = None
        if isinstance(callee.ret_type, ir.ScalarType):
            ret = f"{k}r"
            self.em.emit(f"{ret} = {_ZERO[callee.ret_type.kind]}")
        has_ret = any(
            isinstance(s, ir.Return) for s in ir.walk_stmts(callee.body)
        )
        self.inline_stack.append(e.name)
        self.scopes.append(scope)
        self.variants.append(_variant_vars(self.module, callee, seeds))
        if has_ret:
            live = self.fresh_mask()
            cur = self.mask
            if cur is None:
                self.em.emit(f"{live} = __np.ones({self._width()}, dtype=bool)")
            else:
                self.em.emit(f"{live} = {cur}")
            self.masks.append(live)
            self.inline_ctx.append({"depth": len(self.masks) - 1, "ret": ret})
            self.block(callee.body)
            self.inline_ctx.pop()
            self.masks.pop()
        else:
            self.block(callee.body)
        self.variants.pop()
        self.scopes.pop()
        self.inline_stack.pop()
        return ret if ret is not None else "0"

    # -- statements -----------------------------------------------------

    def block(self, stmts: Sequence[ir.Stmt]) -> None:
        """Mirror of ``_FnCompiler.block``'s per-run op batching."""
        pending = 0

        def flush() -> None:
            nonlocal pending
            if pending:
                self.add_ops(pending)
                pending = 0

        for st in stmts:
            if isinstance(st, (ir.Decl, ir.Assign, ir.Store, ir.ExprStmt)):
                pending += _stmt_cost(st)
                self.simple_stmt(st)
            elif isinstance(st, ir.Return):
                pending += _stmt_cost(st)
                flush()
                self.return_stmt(st)
            else:
                flush()
                self.control_stmt(st)
        flush()

    def simple_stmt(self, st: ir.Stmt) -> None:
        em = self.em
        if isinstance(st, ir.Decl):
            if isinstance(st.type, ir.ArrayType):
                assert st.size is not None
                size = self.expr(st.size)
                dtype = _NP_DTYPE_OF[st.type.element.kind]
                name = self.var(st.name)
                if st.type.space == ir.LOCAL:
                    em.emit(
                        f"{name} = "
                        f"__np.zeros((__ngroups, {size}), dtype={dtype})"
                    )
                    self.rowed[name] = "__grow"
                else:
                    em.emit(
                        f"{name} = "
                        f"__np.zeros((__n, {size}), dtype={dtype})"
                    )
                    self.rowed[name] = "__lin"
            elif st.init is not None:
                self._assign(st.name, self.expr(st.init), declares=True)
            else:
                em.emit(f"{self.var(st.name)} = {_ZERO[st.type.kind]}")
                self._cse_kill(self.var(st.name))
        elif isinstance(st, ir.Assign):
            self._assign(st.name, self.expr(st.value))
        elif isinstance(st, ir.Store):
            assert isinstance(st.base, ir.Var)
            base = self.var(st.base.name)
            idx = self.expr(st.index)
            val = self.expr(st.value)
            row = self.rowed.get(base)
            if row is not None:
                em.emit(
                    f"__vstore2({base}, {row}, {idx}, {val}, {self._m()})"
                )
            else:
                em.emit(f"__vstore({base}, {idx}, {val}, {self._m()})")
            self._cse_kill_loads()
        elif isinstance(st, ir.ExprStmt):
            em.emit(f"_ = {self.expr(st.expr)}")
        else:  # pragma: no cover - guarded by block()
            raise KirRuntimeError(f"not simple: {type(st).__name__}")

    def _assign(self, name: str, value: str, declares: bool = False) -> None:
        target = self.var(name)
        if self.mask is None or declares:
            # A declaration is scoped to its branch: later lanes never
            # observe it, so the unmasked full-width value is correct.
            self.em.emit(f"{target} = {value}")
        else:
            self.em.emit(
                f"{target} = __np.where({self.mask}, {value}, {target})"
            )
        self._cse_kill(target)

    def _kill_masks(self, names: Sequence[str], cap: str) -> None:
        seen: set[str] = set()
        for v in names:
            if v not in seen:
                self.em.emit(f"{v} = {v} & ~{cap}")
                self._cse_kill(v)
                seen.add(v)

    def return_stmt(self, st: ir.Return) -> None:
        ctx = self.inline_ctx[-1]
        cur = self.mask
        assert cur is not None  # a live mask is pushed whenever Return occurs
        if ctx["ret"] is not None and st.value is not None:
            val = self.expr(st.value)
            self.em.emit(
                f"{ctx['ret']} = __np.where({cur}, {val}, {ctx['ret']})"
            )
        cap = self.fresh("t")
        self.em.emit(f"{cap} = {cur}")
        names = list(self.masks[ctx["depth"]:])
        names += [
            lp["act"] for lp in self.loops if lp["depth"] >= ctx["depth"]
        ]
        self._kill_masks(names, cap)

    def break_stmt(self) -> None:
        lp = self.loops[-1]
        cur = self.mask
        assert cur is not None
        cap = self.fresh("t")
        self.em.emit(f"{cap} = {cur}")
        self._kill_masks(list(self.masks[lp["depth"]:]) + [lp["act"]], cap)

    def continue_stmt(self) -> None:
        lp = self.loops[-1]
        cur = self.mask
        assert cur is not None
        cap = self.fresh("t")
        self.em.emit(f"{cap} = {cur}")
        self._kill_masks(list(self.masks[lp["depth"]:]), cap)

    def control_stmt(self, st: ir.Stmt) -> None:
        em = self.em
        if isinstance(st, ir.If):
            self.add_ops(_static_cost(st.cond) + 1)
            raw = self.fresh_mask()
            em.emit(f"{raw} = __vmask({self.expr(st.cond)}, {self._width()})")
            then_mask = raw if self.mask is None else self.fresh_mask()
            if self.mask is not None:
                em.emit(f"{then_mask} = {raw} & {self.mask}")
            if st.then:
                em.emit(f"if {then_mask}.any():")
                em.indent += 1
                self.masks.append(then_mask)
                self._cse_push()
                self.block(st.then)
                self._cse_pop()
                self.masks.pop()
                em.indent -= 1
            if st.orelse:
                else_mask = self.fresh_mask()
                if self.mask is None:
                    em.emit(f"{else_mask} = ~{raw}")
                else:
                    em.emit(f"{else_mask} = ~{raw} & {self.mask}")
                em.emit(f"if {else_mask}.any():")
                em.indent += 1
                self.masks.append(else_mask)
                self._cse_push()
                self.block(st.orelse)
                self._cse_pop()
                self.masks.pop()
                em.indent -= 1
        elif isinstance(st, ir.For):
            if _masked_for(st, self._expr_variant):
                self._masked_for_stmt(st)
            else:
                self._uniform_for_stmt(st)
        elif isinstance(st, ir.While):
            if _masked_while(st, self._expr_variant):
                self._masked_while_stmt(st)
            else:
                self._uniform_while_stmt(st)
        elif isinstance(st, ir.Break):
            self.break_stmt()
        elif isinstance(st, ir.Continue):
            self.continue_stmt()
        elif isinstance(st, ir.Barrier):
            # Full-width execution is already statement-synchronous:
            # every lane completes the previous phase before the next
            # statement runs, so the barrier needs no code (it also
            # charges no ops in the scalar engines).
            pass
        else:  # pragma: no cover - guarded by eligibility()
            raise KirRuntimeError(
                f"vec codegen: unsupported {type(st).__name__}"
            )

    def _loop_setup_ops(self, st: ir.For) -> None:
        setup = (
            _static_cost(st.start)
            + _static_cost(st.stop)
            + _static_cost(st.step)
        )
        if setup:
            self.add_ops(setup)

    def _uniform_for_stmt(self, st: ir.For) -> None:
        em = self.em
        self._loop_setup_ops(st)
        start = self.expr(st.start)
        stop = self.expr(st.stop)
        step = self.expr(st.step)
        em.emit(
            f"for {self.var(st.var)} in range({start}, {stop}, {step}):"
        )
        em.indent += 1
        # Entries from before the loop could be stale by iteration 2
        # (their deps may be assigned later in the body); entries made
        # inside are undefined after a zero-trip loop.  Clear at both
        # boundaries, keeping only within-body reuse.
        self._cse_clear()
        self.add_ops(2)
        self.block(st.body)
        self._cse_clear()
        em.indent -= 1

    # -- lane compaction ------------------------------------------------

    def _compaction_plan(self, st) -> Optional[dict]:
        """Build the gather/scatter plan for a masked loop, or None
        when the loop cannot be compacted.

        A loop is compactible unless its body contains ``return``: a
        return must subtract lanes from masks of the *enclosing* width
        (the kernel's ``__live`` or an enclosing callee's live mask),
        which do not exist at compacted width.  ``break``/``continue``
        always bind to masks created inside the region, so they are
        safe.

        The gather set is every per-lane value the region can read or
        write between rounds: loop-carried variant variables (region
        reads/writes, minus names declared inside the region and inner
        loop variables, which are rebound before use), the op vector,
        and the prologue's work-item index arrays — ``__lin`` stays in
        *absolute* lane indices after gathering, so private-array rows
        and store targets keep full-width addressing.  Values never
        assigned in the region are restored by reference on exit;
        assigned ones are snapshotted (copied) at the first event and
        scattered back through it.
        """
        body = st.body
        if any(isinstance(s, ir.Return) for s in ir.walk_stmts(body)):
            return None
        reads: set[str] = set()
        writes: set[str] = set()
        local: set[str] = set()
        exprs: list[ir.Expr] = []
        if isinstance(st, ir.While):
            exprs.append(st.cond)
        else:
            writes.add(st.var)
        for s in ir.walk_stmts(body):
            if isinstance(s, ir.Decl):
                local.add(s.name)
            elif isinstance(s, ir.Assign):
                writes.add(s.name)
            elif isinstance(s, ir.For):
                local.add(s.var)
            exprs.extend(ir.walk_exprs(s))
        for e in exprs:
            for node in ir.walk_exprs(e):
                if isinstance(node, ir.Var):
                    reads.add(node.name)
        variant = self.variants[-1]
        ro = list(self.lane_arrays)
        rw = ["__ops"]
        for name in sorted(reads | writes):
            if name in local or name not in variant:
                continue
            (rw if name in writes else ro).append(self.var(name))
        return {"ro": ro, "rw": rw}

    def _compact_frame(self, plan: dict) -> dict:
        """Allocate the runtime bookkeeping variables for one
        compactible loop and emit their initialisation."""
        em = self.em
        fr = {
            "ew": self.fresh("w"),    # entry width (scatter target)
            "cw": self.fresh("w"),    # current width
            "sel": self.fresh("s"),   # absolute indices, None until
            "ck": self.fresh("k"),    # rounds since entry (check gate)
            "cr": self.fresh("k"),    # rounds run at compacted width
            "ro": [(n, self.fresh("s")) for n in plan["ro"]],
            "rw": [(n, self.fresh("s")) for n in plan["rw"]],
        }
        em.emit(f"{fr['ew']} = {self._width()}")
        em.emit(f"{fr['cw']} = {fr['ew']}")
        em.emit(f"{fr['sel']} = None")
        em.emit(f"{fr['ck']} = 0")
        em.emit(f"{fr['cr']} = 0")
        return fr

    def _compact_check(self, fr: dict, act: str) -> None:
        """Emit the per-round density check and compaction event.

        Runs at the top of a round, before the condition/charge, so
        everything the round touches is already at the new width.  A
        first event snapshots each read-write value (:func:`_vsave`)
        and records the live lanes' absolute indices; a re-compaction
        scatters current values through the old selection before
        composing it with the new ``flatnonzero`` (lanes that died
        between events hold their final values in the compact arrays).
        """
        em = self.em
        p = self.fresh("p")
        em.emit(f"if __vcshould({fr['ck']}, {act}):")
        em.indent += 1
        em.emit("__vcstats(1, 0)")
        em.emit(f"{p} = __np.flatnonzero({act})")
        em.emit(f"if {fr['sel']} is None:")
        em.indent += 1
        for name, sv in fr["ro"]:
            em.emit(f"{sv} = {name}")
        for name, sv in fr["rw"]:
            em.emit(f"{sv} = __vsave({name})")
        em.emit(f"{fr['sel']} = {p}")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        for name, sv in fr["rw"]:
            em.emit(f"{sv} = __vput({sv}, {fr['sel']}, {name}, {fr['ew']})")
        em.emit(f"{fr['sel']} = {fr['sel']}[{p}]")
        em.indent -= 1
        for name, sv in fr["ro"] + fr["rw"]:
            em.emit(f"{name} = __vtake({sv}, {fr['sel']})")
        em.emit(f"{act} = {act}[{p}]")
        em.emit(f"{fr['cw']} = {p}.shape[0]")
        em.indent -= 1
        em.emit(f"{fr['ck']} += 1")
        em.emit(f"if {fr['sel']} is not None: {fr['cr']} += 1")

    def _compact_exit(self, fr: dict) -> None:
        """Emit the loop-exit scatter: read-write values go back
        through the snapshot at entry width, read-only ones are
        restored by reference (they were never written)."""
        em = self.em
        em.emit(f"if {fr['sel']} is not None:")
        em.indent += 1
        for name, sv in fr["rw"]:
            em.emit(f"{name} = __vput({sv}, {fr['sel']}, {name}, {fr['ew']})")
        for name, sv in fr["ro"]:
            em.emit(f"{name} = {sv}")
        em.emit(f"__vcstats(0, {fr['cr']})")
        em.indent -= 1

    def _enter_loop_body(self, body: Sequence[ir.Stmt], act: str) -> None:
        """Push the loop body mask (a per-iteration copy when the body
        contains ``continue``, so continue can subtract lanes from the
        rest of the iteration without ending their loop)."""
        if _direct(body, ir.Continue):
            body_mask = self.fresh_mask()
            self.em.emit(f"{body_mask} = {act}")
        else:
            body_mask = act
        self.loops.append({"depth": len(self.masks), "act": act})
        self.masks.append(body_mask)
        self.block(body)
        self.masks.pop()
        self.loops.pop()

    def _masked_while_stmt(self, st: ir.While) -> None:
        em = self.em
        self.has_masked_loops = True
        act = self.fresh_mask()
        outer = self.mask
        if outer is None:
            em.emit(f"{act} = __np.ones({self._width()}, dtype=bool)")
        else:
            em.emit(f"{act} = {outer}")
        it = self.fresh("t")
        em.emit(f"{it} = 0")
        plan = self._compaction_plan(st)
        fr = self._compact_frame(plan) if plan is not None else None
        cost = _static_cost(st.cond) + 1
        em.emit("while True:")
        em.indent += 1
        # Region boundary for CSE: a temp assigned in round i must not
        # be reused in round i+1 (its deps move, and compaction may
        # change the lane width between rounds).
        self._cse_clear()
        if fr is not None:
            self._compact_check(fr, act)
            self.widths.append(fr["cw"])
        # Every still-active lane performs the check (and pays for it,
        # including the final failing one — exactly the scalar charge).
        em.emit(f"__ops += {act} * {cost}")
        self.masks.append(act)
        cond = self.expr(st.cond)
        self.masks.pop()
        em.emit(f"{act} = {act} & __vmask({cond}, {self._width()})")
        em.emit(f"if not {act}.any(): break")
        em.emit(f"{it} += 1")
        em.emit(f"if {it} > __CAP: raise __vcaperr()")
        self._enter_loop_body(st.body, act)
        if fr is not None:
            self.widths.pop()
        em.indent -= 1
        if fr is not None:
            self._compact_exit(fr)
        self._cse_clear()

    def _masked_for_stmt(self, st: ir.For) -> None:
        em = self.em
        self.has_masked_loops = True
        self._loop_setup_ops(st)
        var = self.var(st.var)
        stop_v = self.fresh("t")
        step_v = self.fresh("t")
        em.emit(f"{var} = {self.expr(st.start)}")
        em.emit(f"{stop_v} = {self.expr(st.stop)}")
        em.emit(f"{step_v} = {self.expr(st.step)}")
        if isinstance(st.step, ir.Const):
            cmp_op = "<" if st.step.value > 0 else ">"
            in_range = f"({var} {cmp_op} {stop_v})"
        else:
            in_range = (
                f"__vsel({step_v} > 0, {var} < {stop_v}, {var} > {stop_v})"
            )
        plan = self._compaction_plan(st)
        fr = None
        if plan is not None:
            # The bound/step temps are loop-carried per-lane state too
            # (never reassigned, so restore-by-reference suffices).
            plan["ro"] = plan["ro"] + [stop_v, step_v]
            fr = self._compact_frame(plan)
        act = self.fresh_mask()
        outer = self.mask
        if outer is None:
            em.emit(f"{act} = __vmask({in_range}, {self._width()})")
        else:
            em.emit(f"{act} = {outer} & __vmask({in_range}, {self._width()})")
        it = self.fresh("t")
        em.emit(f"{it} = 0")
        em.emit(f"while {act}.any():")
        em.indent += 1
        self._cse_clear()
        if fr is not None:
            self._compact_check(fr, act)
            self.widths.append(fr["cw"])
        # The scalar range loop charges +2 per entered iteration; the
        # failing range check is free.
        em.emit(f"__ops += {act} * 2")
        self._enter_loop_body(st.body, act)
        em.emit(f"{var} = {var} + {step_v}")
        em.emit(f"{act} = {act} & __vmask({in_range}, {self._width()})")
        if fr is not None:
            self.widths.pop()
        em.emit(f"{it} += 1")
        em.emit(f"if {it} > __CAP: raise __vcaperr()")
        em.indent -= 1
        if fr is not None:
            self._compact_exit(fr)
        self._cse_clear()

    def _uniform_while_stmt(self, st: ir.While) -> None:
        """A ``while`` whose condition is item-invariant and whose body
        cannot diverge runs as a plain Python loop: the condition is a
        host scalar and every lane shares the trip count."""
        em = self.em
        cost = _static_cost(st.cond) + 1
        em.emit("while True:")
        em.indent += 1
        # Same staleness/zero-trip reasoning as _uniform_for_stmt (the
        # condition always runs once, but reuse across the back edge
        # would read values from the previous iteration).
        self._cse_clear()
        self.add_ops(cost)
        em.emit(f"if not ({self.expr(st.cond)}): break")
        self.block(st.body)
        em.indent -= 1
        self._cse_clear()


def _vint(x: Any):
    return x.astype(_np.int64) if _is_arr(x) else int(x)


def _vfloat(x: Any):
    return x.astype(_np.float64) if _is_arr(x) else float(x)


def _vbool(x: Any):
    return x.astype(bool) if _is_arr(x) else bool(x)


def _gen_vec_kernel(
    module: ir.Module, fn: ir.Function, em: _Emitter
) -> _VecCompiler:
    used = _used_workitem_vars(fn)
    params = [f"v_{p.name}" for p in fn.params]
    has_locals = bool(_local_decls(fn))
    em.emit(f"def __vec_{fn.name}(__args, __gsz, __lsz):")
    em.indent += 1
    if params:
        em.emit(f"({', '.join(params)},) = __args")
    for d in range(_MAX_DIMS):
        em.emit(f"__G{d} = __gsz[{d}]")
        em.emit(f"__L{d} = __lsz[{d}]")
        em.emit(f"__N{d} = __G{d} // __L{d}")
    em.emit("__n = __G0 * __G1 * __G2")
    em.emit("__lin = __np.arange(__n)")
    id_used = {d for (name, d) in used if name in (
        "get_global_id", "get_local_id", "get_group_id")}
    if has_locals:
        id_used |= {0, 1, 2}
    for d in sorted(id_used):
        if d == 0:
            em.emit("__g0 = __lin % __G0")
        elif d == 1:
            em.emit("__g1 = (__lin // __G0) % __G1")
        else:
            em.emit("__g2 = __lin // (__G0 * __G1)")
    for name, d in sorted(used):
        if name == "get_local_id":
            em.emit(f"__l{d} = __g{d} % __L{d}")
        elif name == "get_group_id":
            em.emit(f"__grp{d} = __g{d} // __L{d}")
    if has_locals:
        # Per-item row into the (num_groups, size) local-memory
        # buffers: the group's flat index in the scalar engine's
        # group-major visit order.
        em.emit("__ngroups = __N0 * __N1 * __N2")
        em.emit(
            "__grow = (__g2 // __L2 * __N1 + __g1 // __L1) * __N0 "
            "+ __g0 // __L0"
        )
    em.emit("__ops = __np.zeros(__n, dtype=__np.int64)")
    comp = _VecCompiler(module, fn, em, _variant_vars(module, fn))
    for d in sorted(id_used):
        comp.lane_arrays.append(f"__g{d}")
    for name, d in sorted(used):
        if name == "get_local_id":
            comp.lane_arrays.append(f"__l{d}")
        elif name == "get_group_id":
            comp.lane_arrays.append(f"__grp{d}")
    if has_locals:
        comp.lane_arrays.append("__grow")
    if any(isinstance(s, ir.Return) for s in ir.walk_stmts(fn.body)):
        # Early return subtracts lanes from this kernel-wide live mask.
        em.emit("__live = __np.ones(__n, dtype=bool)")
        comp.masks.append("__live")
        comp.inline_ctx.append({"depth": 0, "ret": None})
    comp.block(fn.body)
    em.emit("return __ops")
    em.indent -= 1
    em.emit("")
    return comp


#: (gsz, lsz) -> linear-to-group-major scatter index for
#: :func:`fold_group_warps`.  Iterative workloads (the LUD pipeline,
#: repeated docrank launches) dispatch the same NDRange shape hundreds
#: of times; the index math is the dominant fold cost, so it is built
#: once per shape.  Bounded: wiped wholesale when it grows past 64
#: shapes (real workloads use a handful).
_fold_perm_cache: dict = {}


def _fold_perm(g: tuple, l: tuple, nitems: int) -> Any:
    """Scatter index mapping linear item order to group-major order."""
    key = (g, l)
    perm = _fold_perm_cache.get(key)
    if perm is None:
        n0, n1 = g[0] // l[0], g[1] // l[1]
        gitems = l[0] * l[1] * l[2]
        lin = _np.arange(nitems)
        x = lin % g[0]
        y = (lin // g[0]) % g[1]
        z = lin // (g[0] * g[1])
        grp = (z // l[2] * n1 + y // l[1]) * n0 + x // l[0]
        intra = ((z % l[2]) * l[1] + y % l[1]) * l[0] + x % l[0]
        perm = grp * gitems + intra
        if len(_fold_perm_cache) >= 64:
            _fold_perm_cache.clear()
        _fold_perm_cache[key] = perm
    return perm


def fold_group_warps(
    ops: Any, gsz: Sequence[int], lsz: Sequence[int], simd: int
) -> list[list[int]]:
    """Reduce a per-item op vector to per-group warp maxima.

    Reproduces ``costmodel._group_warp_costs`` exactly: items are
    regrouped from linear (dim0-fastest) order into intra-group arrival
    order, chunked into warps of *simd*, and reduced by max.  The
    short-warp tail pads with zeros, which cannot change a maximum of
    non-negative op counts.
    """
    g = _pad3(gsz)
    l = _pad3(lsz)
    n0, n1, n2 = g[0] // l[0], g[1] // l[1], g[2] // l[2]
    ngroups = n0 * n1 * n2
    gitems = l[0] * l[1] * l[2]
    if l[1] == 1 and l[2] == 1:
        # Groups never span dim1/dim2: linear order is already
        # group-major intra-group order.
        arranged = ops
    else:
        arranged = _np.empty_like(ops)
        arranged[_fold_perm(g, l, ops.shape[0])] = ops
    nwarps = -(-gitems // simd)
    if gitems % simd:
        padded = _np.zeros((ngroups, nwarps * simd), dtype=ops.dtype)
        padded[:, :gitems] = arranged.reshape(ngroups, gitems)
        arranged = padded
    else:
        arranged = arranged.reshape(ngroups, nwarps * simd)
    return arranged.reshape(ngroups, nwarps, simd).max(axis=2).tolist()


class VecKernel:
    """Callable vectorised form of one kernel."""

    def __init__(
        self,
        fn: ir.Function,
        run_fn: Any,
        group_major: bool = False,
        has_masked_loops: bool = False,
        cse_hits: int = 0,
    ) -> None:
        self.fn = fn
        self.name = fn.name
        self._run = run_fn
        #: group-mode kernels are priced from item ops listed in the
        #: scalar engine's group-major visit order; reproduce that
        #: ordering quirk bit-for-bit (see :meth:`run_group_warps`)
        self.group_major = group_major
        #: True when the kernel contains loops whose runtime iteration
        #: count is lane-dependent (the :data:`LOOP_ITER_CAP` can fire)
        self.has_masked_loops = has_masked_loops
        #: static count of subexpression re-evaluations eliminated at
        #: codegen (reported per dispatch as ``dispatch.cse.hits``)
        self.cse_hits = cse_hits

    def run_group_warps(
        self,
        args: Sequence[Any],
        gsz: Sequence[int],
        lsz: Sequence[int],
        simd: int,
    ) -> list[list[int]]:
        """Execute the NDRange on numpy arrays; returns per-group warp
        op maxima.  Array arguments must be numpy views of the buffers
        (:meth:`repro.opencl.memory.Buffer.np_view`)."""
        g = _pad3(gsz)
        l = _pad3(lsz)
        # Masked-off lanes may compute garbage that is discarded; only
        # the mask-aware helpers turn *active* faults into errors.
        with _np.errstate(all="ignore"):
            ops = self._run(tuple(args), g, l)
        if self.group_major and (l[1] != 1 or l[2] != 1):
            # The scalar group engine emits item ops in group-major
            # order and prices them as if linear; mimic by scattering
            # to group-major before the (identical) fold.
            arranged = _np.empty_like(ops)
            arranged[_fold_perm(g, l, ops.shape[0])] = ops
            ops = arranged
        return fold_group_warps(ops, g, l, simd)


def vectorize_kernel_info(
    module: ir.Module, fn: ir.Function
) -> tuple[Optional["VecKernel"], Optional[str]]:
    """Compile *fn* to a :class:`VecKernel`.

    Returns ``(kernel, None)`` on success or ``(None, reason)`` where
    *reason* is the :func:`eligibility` string (or ``codegen-error``
    for an unexpected compilation failure — vectorisation is purely an
    optimisation, so the scalar engine silently carries execution).
    """
    if not AVAILABLE:
        return None, "no-numpy"
    try:
        reason = eligibility(module, fn)
        if reason is not None:
            return None, reason
        em = _Emitter()
        comp = _gen_vec_kernel(module, fn, em)
        namespace = _namespace_base()
        namespace["__vint"] = _vint
        namespace["__vfloat"] = _vfloat
        namespace["__vbool"] = _vbool
        code = compile(em.source(), f"<kirvec:{fn.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - our own generated code
        vk = VecKernel(
            fn,
            namespace[f"__vec_{fn.name}"],
            group_major=ir.has_barrier(fn) or bool(_local_decls(fn)),
            has_masked_loops=comp.has_masked_loops,
            cse_hits=comp.cse_hits,
        )
        return vk, None
    except Exception:
        return None, "codegen-error"


def vectorize_kernel(
    module: ir.Module, fn: ir.Function
) -> Optional[VecKernel]:
    """Compile *fn* to a :class:`VecKernel`, or None if ineligible."""
    return vectorize_kernel_info(module, fn)[0]
