"""Vectorised batch execution of kernels (numpy backend).

The scalar engine (:mod:`repro.kir.pycodegen`) executes an NDRange one
Python work-item at a time.  This module instead compiles a kernel into
a ``__vec_<name>(args, gsz, lsz)`` function that executes the whole
NDRange as numpy array operations, one array lane per work-item, and
returns the per-item dynamic op-count *vector*, which
:func:`fold_group_warps` reduces to the per-group warp maxima the cost
model consumes.

Three escalating capabilities make almost every kernel eligible:

* **Masked straight-line / structured code** — ``if``/``else`` becomes
  boolean masks, counted ``for`` loops with item-invariant bounds stay
  plain Python loops.
* **Iterative masked evaluation** — ``while`` loops, ``for`` loops with
  item-dependent bounds, ``break``, ``continue`` and early ``return``
  keep a per-lane *active mask*; the loop body re-executes under the
  mask until it empties.  ``break``/``continue``/``return`` subtract
  lanes from the enclosing masks.  A runaway loop (more than
  :data:`LOOP_ITER_CAP` iterations) raises :class:`VecIterationCap` and
  the dispatcher falls back to the scalar warp-fold.
* **Pure user-function inlining** — calls to side-effect-free
  kernel-language helpers are inlined at codegen time (with per-site
  renaming), charging exactly the ops the scalar engine charges.
* **Cooperative barrier phases** — group-mode kernels (barriers /
  ``__local`` arrays) execute with local memory materialised as
  ``(num_groups, size)`` numpy buffers.  Every statement already runs
  in lock-step across all lanes, so ``barrier()`` itself emits nothing;
  eligibility restricts barriers to dispatch-uniform control flow so
  the scalar engine would never diagnose divergence either.

Op accounting mirrors ``_FnCompiler.block`` exactly (same per-block
batching, the same ``+1`` / ``+2`` control-flow charges, masked where
the scalar path is conditional), so the folded warp maxima — and hence
every simulated nanosecond — are identical to the scalar engines';
tests assert this.

Kernels the tier still refuses (reason strings surface as
``dispatch.fallback.<reason>`` trace counters): ``get_work_dim``
(``work-dim``), non-variable array bases (``array-expr``), variant
array sizes (``array-size``), local arrays declared below the kernel's
top level (``local-array``), barriers under divergent control flow or
early return in a barrier kernel (``barrier``), impure or recursive
user calls (``user-call``), and division or loads inside speculatively
evaluated select / short-circuit operands (``speculative``).

Known semantic deltas of the vector tier (documented, none observable
in race-free kernels): int64 wrap-around instead of Python big ints,
same-address stores from multiple work-items resolve by numpy
fancy-assignment order, and statements between barriers execute in
lock-step across lanes rather than item-by-item.

Everything here is a wall-clock optimisation only; when numpy is not
installed the module degrades to ``AVAILABLE = False`` and the scalar
engine carries all execution.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

from ..errors import KirRuntimeError
from . import ir
from .interp import c_idiv, c_imod
from .pycodegen import (
    _Emitter,
    _MAX_DIMS,
    _WI_VARS,
    _kind,
    _local_decls,
    _pad3,
    _static_cost,
    _stmt_cost,
    _used_workitem_vars,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

AVAILABLE = _np is not None

#: Masked-loop iteration budget per loop entry.  A loop still live past
#: this many iterations raises :class:`VecIterationCap`; the dispatcher
#: restores written buffers and re-runs on the scalar warp-fold (which
#: will hang or fault exactly as the kernel deserves).
LOOP_ITER_CAP = 65536


class VecIterationCap(Exception):
    """A masked loop exceeded :data:`LOOP_ITER_CAP` iterations."""


_NP_DTYPE_OF = {"int": "__np.int64", "float": "__np.float64", "bool": "bool"}

_ZERO = {"int": "0", "float": "0.0", "bool": "False"}

#: math builtin -> numpy-side expression prefix
_NP_MATH = {
    "sqrt": "__np.sqrt",
    "fabs": "__np.abs",
    "exp": "__np.exp",
    "log": "__np.log",
    "sin": "__np.sin",
    "cos": "__np.cos",
    "tan": "__np.tan",
    "atan": "__np.arctan",
    "atan2": "__np.arctan2",
    "pow": "__vpow",
    "floor": "__np.floor",
    "ceil": "__np.ceil",
    "fmin": "__np.minimum",
    "fmax": "__np.maximum",
    "min": "__np.minimum",
    "max": "__np.maximum",
    "abs": "__np.abs",
    "clamp": "__vclamp",
}

_VARIANT_ID_BUILTINS = ("get_global_id", "get_local_id", "get_group_id")


# -- runtime helpers (the generated code's namespace) ----------------------


def _is_arr(x: Any) -> bool:
    return isinstance(x, _np.ndarray)


def _vmask(val: Any, n: int):
    """Normalise an if/loop condition to a full-width boolean mask."""
    if _is_arr(val):
        return val
    if val:
        return _np.ones(n, dtype=bool)
    return _np.zeros(n, dtype=bool)


def _vidiv(a: Any, b: Any, m: Any):
    """C-style integer division, mask-aware for inactive lanes."""
    if not _is_arr(a) and not _is_arr(b):
        return c_idiv(a, b)
    a = _np.asarray(a)
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise KirRuntimeError("integer division by zero")
        b = _np.where(zero, 1, b)
    q = _np.abs(a) // _np.abs(b)
    return _np.where((a < 0) == (b < 0), q, -q)


def _vimod(a: Any, b: Any, m: Any):
    """C-style integer remainder (sign follows the dividend)."""
    if not _is_arr(a) and not _is_arr(b):
        return c_imod(a, b)
    return a - _vidiv(a, b, m) * b


def _vfdiv(a: Any, b: Any, m: Any):
    """Float division, mask-aware for inactive lanes."""
    if not _is_arr(a) and not _is_arr(b):
        if b == 0:
            raise ZeroDivisionError("float division by zero")
        return a / b
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise ZeroDivisionError("float division by zero")
        b = _np.where(zero, 1.0, b)
    return a / b


def _int_like(x: Any) -> bool:
    if _is_arr(x):
        return x.dtype.kind in "bi"
    return isinstance(x, (bool, int, _np.integer))


def _vdiv(a: Any, b: Any, m: Any):
    """Dynamically-typed division (mirrors ``_runtime_div``)."""
    if _int_like(a) and _int_like(b):
        return _vidiv(a, b, m)
    try:
        return _vfdiv(a, b, m)
    except ZeroDivisionError:
        raise KirRuntimeError("float division by zero") from None


def _vmod(a: Any, b: Any, m: Any):
    """Dynamically-typed modulo (mirrors ``_runtime_mod``)."""
    if _int_like(a) and _int_like(b):
        return _vimod(a, b, m)
    return _vfmod(a, b, m)


def _vfmod(a: Any, b: Any, m: Any):
    """Float remainder with C semantics, mask-aware."""
    if not _is_arr(a) and not _is_arr(b):
        return math.fmod(a, b)
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise ValueError("math domain error")
        b = _np.where(zero, 1.0, b)
    return _np.fmod(a, b)


def _vpow(a: Any, b: Any):
    """Vector ``pow`` (always float, like ``math.pow``)."""
    return _np.float_power(a, b)


def _vclamp(x: Any, lo: Any, hi: Any):
    """Vector ``clamp``."""
    return _np.clip(x, lo, hi)


def _vload(arr: Any, idx: Any, m: Any):
    """Gather from a global array; inactive lanes read a safe index."""
    if m is None or not _is_arr(idx):
        return arr[idx]
    return arr[_np.where(m, idx, 0)]


def _vload2(arr: Any, rows: Any, idx: Any, m: Any):
    """Gather each work-item's slot from its private/local-array row."""
    if m is not None and _is_arr(idx):
        idx = _np.where(m, idx, 0)
    return arr[rows, idx]


def _vstore(arr: Any, idx: Any, val: Any, m: Any) -> None:
    """Scatter into a global array with sequential-store semantics."""
    if m is None:
        if _is_arr(idx):
            arr[idx] = val
        elif _is_arr(val):
            arr[idx] = val[-1]  # every item stores here: last one wins
        else:
            arr[idx] = val
        return
    if _is_arr(idx):
        sel = idx[m]
        arr[sel] = val[m] if _is_arr(val) else val
        return
    if bool(m.any()):
        if _is_arr(val):
            active = val[m]
            arr[idx] = active[-1]
        else:
            arr[idx] = val


def _vstore2(arr: Any, rows: Any, idx: Any, val: Any, m: Any) -> None:
    """Scatter into per-item private (or per-group local) array rows."""
    if m is None:
        arr[rows, idx] = val
        return
    r = rows[m] if _is_arr(rows) else rows
    i = idx[m] if _is_arr(idx) else idx
    v = val[m] if _is_arr(val) else val
    arr[r, i] = v


def _namespace_base() -> dict[str, Any]:
    return {
        "__np": _np,
        "__vmask": _vmask,
        "__vidiv": _vidiv,
        "__vimod": _vimod,
        "__vdiv": _vdiv,
        "__vmod": _vmod,
        "__vfdiv": _vfdiv,
        "__vfmod": _vfmod,
        "__vpow": _vpow,
        "__vclamp": _vclamp,
        "__vload": _vload,
        "__vload2": _vload2,
        "__vstore": _vstore,
        "__vstore2": _vstore2,
        "__vnot": None if _np is None else _np.logical_not,
        "__vand": None if _np is None else _np.logical_and,
        "__vor": None if _np is None else _np.logical_or,
        "__vsel": None if _np is None else _np.where,
        "__kre": KirRuntimeError,
        "__CAP": LOOP_ITER_CAP,
        "__vcaperr": VecIterationCap,
    }


# -- eligibility -----------------------------------------------------------


def _unsafe_speculative(e: ir.Expr) -> bool:
    """True if evaluating *e* on lanes that would not evaluate it in the
    scalar engine can fault: division/modulo (zero) and array loads
    (out-of-range index).  numpy evaluates both arms of a select and
    both sides of ``&&``/``||``, so such expressions are only safe in
    positions the scalar engine also evaluates unconditionally."""
    return any(
        (isinstance(n, ir.BinOp) and n.op in ("/", "%"))
        or isinstance(n, ir.Index)
        for n in ir.walk_exprs(e)
    )


def _direct(stmts: Sequence[ir.Stmt], kinds) -> bool:
    """True when a statement of *kinds* binds to this loop level (it is
    not nested inside an inner loop)."""
    for st in stmts:
        if isinstance(st, kinds):
            return True
        if isinstance(st, ir.If):
            if _direct(st.then, kinds) or _direct(st.orelse, kinds):
                return True
    return False


def _loop_divergent(body: Sequence[ir.Stmt]) -> bool:
    """True when lanes can leave this loop at different trip counts:
    a ``break``/``continue`` bound to it, or a ``return`` anywhere."""
    if _direct(body, (ir.Break, ir.Continue)):
        return True
    return any(isinstance(s, ir.Return) for s in ir.walk_stmts(body))


def _callee_taints(module: ir.Module, name: str, seen: tuple = ()) -> bool:
    """True when calling *name* can produce per-lane-different values
    even on item-invariant arguments (it reads arrays, uses work-item
    state, or cannot be resolved)."""
    fn = module.functions.get(name)
    if fn is None or name in seen:
        return True
    for st in ir.walk_stmts(fn.body):
        for e in ir.walk_exprs(st):
            if isinstance(e, ir.Index):
                return True
            if isinstance(e, ir.Call):
                if e.name in ir.WORKITEM_BUILTINS:
                    return True
                if e.name not in _NP_MATH and _callee_taints(
                    module, e.name, seen + (name,)
                ):
                    return True
    return False


def _make_expr_variant(module: ir.Module, variant: set[str]):
    """Build the "can this expression differ between lanes" predicate
    over the evolving *variant* set."""

    def expr_variant(e: Optional[ir.Expr]) -> bool:
        if e is None:
            return False
        for node in ir.walk_exprs(e):
            if isinstance(node, ir.Var) and node.name in variant:
                return True
            if isinstance(node, ir.Index):
                return True
            if isinstance(node, ir.Call):
                if node.name in _VARIANT_ID_BUILTINS:
                    return True
                if (
                    node.name not in ir.WORKITEM_BUILTINS
                    and node.name not in _NP_MATH
                    and _callee_taints(module, node.name)
                ):
                    return True
        return False

    return expr_variant


def _masked_for(st: ir.For, expr_variant) -> bool:
    """Whether a ``for`` loop needs iterative masked evaluation (as
    opposed to a plain uniform Python loop)."""
    return (
        not isinstance(st.step, ir.Const)
        or _loop_divergent(st.body)
        or any(
            isinstance(s, ir.Assign) and s.name == st.var
            for s in ir.walk_stmts(st.body)
        )
        or expr_variant(st.start)
        or expr_variant(st.stop)
        or expr_variant(st.step)
    )


def _masked_while(st: ir.While, expr_variant) -> bool:
    """Whether a ``while`` loop needs iterative masked evaluation."""
    return _loop_divergent(st.body) or expr_variant(st.cond)


def _variant_vars(
    module: ir.Module, fn: ir.Function, seeds: Sequence[str] = ()
) -> set[str]:
    """Scalar variables whose value can differ between work-items.

    Seeds: work-item ids and array loads are variant; everything
    derived from them (or assigned under a condition or inside a
    masked loop, which masking turns into an array) becomes variant.
    *seeds* pre-marks names (used for inline sites, where a callee
    parameter bound to a variant argument is variant).  Fixpoint over
    the body.
    """
    variant: set[str] = set(seeds)
    expr_variant = _make_expr_variant(module, variant)

    changed = True
    while changed:
        changed = False

        def visit(stmts: Sequence[ir.Stmt], conditional: bool) -> None:
            nonlocal changed
            for st in stmts:
                if isinstance(st, ir.Decl):
                    if isinstance(st.type, ir.ArrayType):
                        continue
                    if (conditional or expr_variant(st.init)) and (
                        st.name not in variant
                    ):
                        variant.add(st.name)
                        changed = True
                elif isinstance(st, ir.Assign):
                    if (conditional or expr_variant(st.value)) and (
                        st.name not in variant
                    ):
                        variant.add(st.name)
                        changed = True
                elif isinstance(st, ir.If):
                    visit(st.then, True)
                    visit(st.orelse, True)
                elif isinstance(st, ir.For):
                    masked = _masked_for(st, expr_variant)
                    if masked and st.var not in variant:
                        variant.add(st.var)
                        changed = True
                    visit(st.body, conditional or masked)
                elif isinstance(st, ir.While):
                    visit(
                        st.body,
                        conditional or _masked_while(st, expr_variant),
                    )

        visit(fn.body, False)
    return variant


def _barriers_phase_safe(
    stmts: Sequence[ir.Stmt], uniform: bool, expr_variant
) -> bool:
    """Every barrier sits in dispatch-uniform control flow: at the top
    level, or inside loops whose trip count is identical for all lanes.
    Barriers under ``if`` are rejected outright (the scalar engine
    diagnoses real divergence at runtime; demoting keeps that
    behaviour)."""
    for st in stmts:
        if isinstance(st, ir.Barrier):
            if not uniform:
                return False
        elif isinstance(st, ir.If):
            if not _barriers_phase_safe(st.then, False, expr_variant):
                return False
            if not _barriers_phase_safe(st.orelse, False, expr_variant):
                return False
        elif isinstance(st, ir.For):
            inner = uniform and not _masked_for(st, expr_variant)
            if not _barriers_phase_safe(st.body, inner, expr_variant):
                return False
        elif isinstance(st, ir.While):
            inner = uniform and not _masked_while(st, expr_variant)
            if not _barriers_phase_safe(st.body, inner, expr_variant):
                return False
    return True


def _call_reason(
    module: ir.Module, call: ir.Call, stack: tuple
) -> Optional[str]:
    """Inlinability of one user-function call site (None when OK)."""
    target = module.functions.get(call.name)
    if target is None or target.is_kernel or call.name in stack:
        return "user-call"
    if len(target.params) != len(call.args):
        return "user-call"
    for p, a in zip(target.params, call.args):
        if isinstance(p.type, ir.ArrayType) and not isinstance(a, ir.Var):
            return "user-call"
    for st in ir.walk_stmts(target.body):
        if isinstance(st, (ir.Store, ir.Barrier)):
            return "user-call"
        if isinstance(st, ir.Decl) and isinstance(st.type, ir.ArrayType):
            return "user-call"
    return _body_reason(module, target.body, stack + (call.name,))


def _body_reason(
    module: ir.Module, body: Sequence[ir.Stmt], stack: tuple
) -> Optional[str]:
    """Statement/expression-level vectorisation blockers in *body*
    (including transitively inlined callees).  None when clean."""
    for st in ir.walk_stmts(body):
        if isinstance(st, ir.Store) and not isinstance(st.base, ir.Var):
            return "array-expr"
        for e in ir.walk_exprs(st):
            if isinstance(e, ir.Index) and not isinstance(e.base, ir.Var):
                return "array-expr"
            if isinstance(e, ir.Call):
                if e.name == "get_work_dim":
                    return "work-dim"
                if e.name in ir.WORKITEM_BUILTINS:
                    if not e.args or not isinstance(e.args[0], ir.Const):
                        return "work-dim"
                    continue
                if e.name in _NP_MATH:
                    continue
                reason = _call_reason(module, e, stack)
                if reason:
                    return reason
            if isinstance(e, ir.Select) and (
                _unsafe_speculative(e.if_true)
                or _unsafe_speculative(e.if_false)
            ):
                return "speculative"
            if isinstance(e, ir.BinOp):
                if e.op in ("&&", "||") and _unsafe_speculative(e.right):
                    return "speculative"
    return None


def eligibility(module: ir.Module, fn: ir.Function) -> Optional[str]:
    """Why *fn* cannot run on the vectorised tier, or None if it can.

    The reason string becomes the ``dispatch.fallback.<reason>`` trace
    counter suffix when a dispatch is demoted to a scalar tier.
    """
    if not AVAILABLE:
        return "no-numpy"
    variant = _variant_vars(module, fn)
    expr_variant = _make_expr_variant(module, variant)

    def invariant(e: Optional[ir.Expr]) -> bool:
        if e is None:
            return False
        return not expr_variant(e) and not any(
            isinstance(n, ir.Call) and n.name == "get_work_dim"
            for n in ir.walk_exprs(e)
        )

    top_locals = {
        st.name
        for st in fn.body
        if isinstance(st, ir.Decl)
        and isinstance(st.type, ir.ArrayType)
        and st.type.space == ir.LOCAL
    }
    for st in ir.walk_stmts(fn.body):
        if isinstance(st, ir.Decl) and isinstance(st.type, ir.ArrayType):
            if st.size is None or not invariant(st.size):
                return "array-size"
            if st.type.space == ir.LOCAL and st.name not in top_locals:
                return "local-array"
    if ir.has_barrier(fn):
        if any(isinstance(s, ir.Return) for s in ir.walk_stmts(fn.body)):
            return "barrier"
        if not _barriers_phase_safe(fn.body, True, expr_variant):
            return "barrier"
    return _body_reason(module, fn.body, (fn.name,))


# -- codegen ---------------------------------------------------------------


class _VecCompiler:
    """Compiles one eligible kernel body to masked numpy statements."""

    def __init__(
        self,
        module: ir.Module,
        fn: ir.Function,
        em: _Emitter,
        variant: set[str],
    ) -> None:
        self.module = module
        self.fn = fn
        self.em = em
        #: stack of boolean-mask variable names; empty = all lanes
        self.masks: list[str] = []
        #: enclosing masked loops: {'depth', 'act'}
        self.loops: list[dict] = []
        #: rename scopes for inlined callees (innermost last)
        self.scopes: list[dict[str, str]] = []
        #: per-scope variant-variable sets (kernel's own at index 0)
        self.variants: list[set[str]] = [variant]
        #: resolved 2-D array name -> row-index variable
        self.rowed: dict[str, str] = {}
        #: return contexts: {'depth', 'ret'} (kernel level at index 0
        #: when the kernel body contains Return)
        self.inline_ctx: list[dict] = []
        self.inline_stack: list[str] = []
        #: True once any masked loop was emitted (the iteration cap can
        #: fire at runtime, so dispatch snapshots written buffers)
        self.has_masked_loops = False
        self.tmp = 0

    def var(self, name: str) -> str:
        """Resolve *name* through the inline rename scopes."""
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return f"v_{name}"

    def fresh_mask(self) -> str:
        self.tmp += 1
        return f"__m{self.tmp}"

    def fresh(self, prefix: str) -> str:
        self.tmp += 1
        return f"__{prefix}{self.tmp}"

    @property
    def mask(self) -> Optional[str]:
        return self.masks[-1] if self.masks else None

    def _m(self) -> str:
        return self.mask or "None"

    def _expr_variant(self, e: Optional[ir.Expr]) -> bool:
        return _make_expr_variant(self.module, self.variants[-1])(e)

    def add_ops(self, n: int) -> None:
        if self.mask is None:
            self.em.emit(f"__ops += {n}")
        else:
            # bool * int broadcast beats boolean fancy indexing by an
            # order of magnitude and is density-independent.
            self.em.emit(f"__ops += {self.mask} * {n}")

    # -- expressions ----------------------------------------------------

    def expr(self, e: ir.Expr) -> str:
        if isinstance(e, ir.Const):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, ir.Var):
            return self.var(e.name)
        if isinstance(e, ir.BinOp):
            return self._binop(e)
        if isinstance(e, ir.UnOp):
            inner = self.expr(e.operand)
            if e.op == "-":
                return f"(-{inner})"
            if e.op == "!":
                return f"__vnot({inner})"
            return f"(~{inner})"
        if isinstance(e, ir.Index):
            assert isinstance(e.base, ir.Var)
            base = self.var(e.base.name)
            idx = self.expr(e.index)
            row = self.rowed.get(base)
            if row is not None:
                return f"__vload2({base}, {row}, {idx}, {self._m()})"
            return f"__vload({base}, {idx}, {self._m()})"
        if isinstance(e, ir.Cast):
            inner = self.expr(e.operand)
            fn = {"int": "__vint", "float": "__vfloat", "bool": "__vbool"}[
                e.target.kind
            ]
            return f"{fn}({inner})"
        if isinstance(e, ir.Select):
            c = self.expr(e.cond)
            t = self.expr(e.if_true)
            f = self.expr(e.if_false)
            return f"__vsel({c}, {t}, {f})"
        if isinstance(e, ir.Call):
            return self._call(e)
        raise KirRuntimeError(f"vec codegen: unknown expr {type(e).__name__}")

    def _binop(self, e: ir.BinOp) -> str:
        lk = _kind(e.left)
        rk = _kind(e.right)
        left = self.expr(e.left)
        right = self.expr(e.right)
        op = e.op
        if op == "/":
            if lk == ir.INT and rk == ir.INT:
                return f"__vidiv({left}, {right}, {self._m()})"
            if ir.FLOAT in (lk, rk):
                return f"__vfdiv({left}, {right}, {self._m()})"
            return f"__vdiv({left}, {right}, {self._m()})"
        if op == "%":
            if lk == ir.INT and rk == ir.INT:
                return f"__vimod({left}, {right}, {self._m()})"
            if ir.FLOAT in (lk, rk):
                return f"__vfmod({left}, {right}, {self._m()})"
            return f"__vmod({left}, {right}, {self._m()})"
        if op == "&&":
            return f"__vand({left}, {right})"
        if op == "||":
            return f"__vor({left}, {right})"
        return f"({left} {op} {right})"

    def _call(self, e: ir.Call) -> str:
        if e.name in ir.WORKITEM_BUILTINS:
            d = int(e.args[0].value)  # type: ignore[attr-defined]
            if not 0 <= d < _MAX_DIMS:
                return "0" if e.name.endswith("_id") else "1"
            return f"{_WI_VARS[e.name]}{d}"
        if e.name in _NP_MATH:
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{_NP_MATH[e.name]}({args})"
        return self._inline_call(e)

    def _inline_call(self, e: ir.Call) -> str:
        """Inline a pure user-function call under the current mask.

        Ops match the scalar engine exactly: argument expressions are
        charged by the caller's statement cost (``_stmt_cost`` walks
        into call arguments), parameter binding is free, the callee
        body is charged by the shared :meth:`block`, and each
        ``return`` is charged like any other statement."""
        callee = self.module.functions[e.name]
        k = self.fresh("i")
        scope: dict[str, str] = {}
        seeds: list[str] = []
        for p, a in zip(callee.params, e.args):
            if isinstance(p.type, ir.ArrayType):
                assert isinstance(a, ir.Var)
                scope[p.name] = self.var(a.name)
            else:
                tmp = f"{k}a_{p.name}"
                self.em.emit(f"{tmp} = {self.expr(a)}")
                scope[p.name] = tmp
                if self._expr_variant(a):
                    seeds.append(p.name)
        for st in ir.walk_stmts(callee.body):
            if isinstance(st, ir.Decl) and st.name not in scope:
                scope[st.name] = f"{k}v_{st.name}"
            elif isinstance(st, ir.For) and st.var not in scope:
                scope[st.var] = f"{k}v_{st.var}"
        ret: Optional[str] = None
        if isinstance(callee.ret_type, ir.ScalarType):
            ret = f"{k}r"
            self.em.emit(f"{ret} = {_ZERO[callee.ret_type.kind]}")
        has_ret = any(
            isinstance(s, ir.Return) for s in ir.walk_stmts(callee.body)
        )
        self.inline_stack.append(e.name)
        self.scopes.append(scope)
        self.variants.append(_variant_vars(self.module, callee, seeds))
        if has_ret:
            live = self.fresh_mask()
            cur = self.mask
            if cur is None:
                self.em.emit(f"{live} = __np.ones(__n, dtype=bool)")
            else:
                self.em.emit(f"{live} = {cur}")
            self.masks.append(live)
            self.inline_ctx.append({"depth": len(self.masks) - 1, "ret": ret})
            self.block(callee.body)
            self.inline_ctx.pop()
            self.masks.pop()
        else:
            self.block(callee.body)
        self.variants.pop()
        self.scopes.pop()
        self.inline_stack.pop()
        return ret if ret is not None else "0"

    # -- statements -----------------------------------------------------

    def block(self, stmts: Sequence[ir.Stmt]) -> None:
        """Mirror of ``_FnCompiler.block``'s per-run op batching."""
        pending = 0

        def flush() -> None:
            nonlocal pending
            if pending:
                self.add_ops(pending)
                pending = 0

        for st in stmts:
            if isinstance(st, (ir.Decl, ir.Assign, ir.Store, ir.ExprStmt)):
                pending += _stmt_cost(st)
                self.simple_stmt(st)
            elif isinstance(st, ir.Return):
                pending += _stmt_cost(st)
                flush()
                self.return_stmt(st)
            else:
                flush()
                self.control_stmt(st)
        flush()

    def simple_stmt(self, st: ir.Stmt) -> None:
        em = self.em
        if isinstance(st, ir.Decl):
            if isinstance(st.type, ir.ArrayType):
                assert st.size is not None
                size = self.expr(st.size)
                dtype = _NP_DTYPE_OF[st.type.element.kind]
                name = self.var(st.name)
                if st.type.space == ir.LOCAL:
                    em.emit(
                        f"{name} = "
                        f"__np.zeros((__ngroups, {size}), dtype={dtype})"
                    )
                    self.rowed[name] = "__grow"
                else:
                    em.emit(
                        f"{name} = "
                        f"__np.zeros((__n, {size}), dtype={dtype})"
                    )
                    self.rowed[name] = "__lin"
            elif st.init is not None:
                self._assign(st.name, self.expr(st.init), declares=True)
            else:
                em.emit(f"{self.var(st.name)} = {_ZERO[st.type.kind]}")
        elif isinstance(st, ir.Assign):
            self._assign(st.name, self.expr(st.value))
        elif isinstance(st, ir.Store):
            assert isinstance(st.base, ir.Var)
            base = self.var(st.base.name)
            idx = self.expr(st.index)
            val = self.expr(st.value)
            row = self.rowed.get(base)
            if row is not None:
                em.emit(
                    f"__vstore2({base}, {row}, {idx}, {val}, {self._m()})"
                )
            else:
                em.emit(f"__vstore({base}, {idx}, {val}, {self._m()})")
        elif isinstance(st, ir.ExprStmt):
            em.emit(f"_ = {self.expr(st.expr)}")
        else:  # pragma: no cover - guarded by block()
            raise KirRuntimeError(f"not simple: {type(st).__name__}")

    def _assign(self, name: str, value: str, declares: bool = False) -> None:
        target = self.var(name)
        if self.mask is None or declares:
            # A declaration is scoped to its branch: later lanes never
            # observe it, so the unmasked full-width value is correct.
            self.em.emit(f"{target} = {value}")
        else:
            self.em.emit(
                f"{target} = __np.where({self.mask}, {value}, {target})"
            )

    def _kill_masks(self, names: Sequence[str], cap: str) -> None:
        seen: set[str] = set()
        for v in names:
            if v not in seen:
                self.em.emit(f"{v} = {v} & ~{cap}")
                seen.add(v)

    def return_stmt(self, st: ir.Return) -> None:
        ctx = self.inline_ctx[-1]
        cur = self.mask
        assert cur is not None  # a live mask is pushed whenever Return occurs
        if ctx["ret"] is not None and st.value is not None:
            val = self.expr(st.value)
            self.em.emit(
                f"{ctx['ret']} = __np.where({cur}, {val}, {ctx['ret']})"
            )
        cap = self.fresh("t")
        self.em.emit(f"{cap} = {cur}")
        names = list(self.masks[ctx["depth"]:])
        names += [
            lp["act"] for lp in self.loops if lp["depth"] >= ctx["depth"]
        ]
        self._kill_masks(names, cap)

    def break_stmt(self) -> None:
        lp = self.loops[-1]
        cur = self.mask
        assert cur is not None
        cap = self.fresh("t")
        self.em.emit(f"{cap} = {cur}")
        self._kill_masks(list(self.masks[lp["depth"]:]) + [lp["act"]], cap)

    def continue_stmt(self) -> None:
        lp = self.loops[-1]
        cur = self.mask
        assert cur is not None
        cap = self.fresh("t")
        self.em.emit(f"{cap} = {cur}")
        self._kill_masks(list(self.masks[lp["depth"]:]), cap)

    def control_stmt(self, st: ir.Stmt) -> None:
        em = self.em
        if isinstance(st, ir.If):
            self.add_ops(_static_cost(st.cond) + 1)
            raw = self.fresh_mask()
            em.emit(f"{raw} = __vmask({self.expr(st.cond)}, __n)")
            then_mask = raw if self.mask is None else self.fresh_mask()
            if self.mask is not None:
                em.emit(f"{then_mask} = {raw} & {self.mask}")
            if st.then:
                em.emit(f"if {then_mask}.any():")
                em.indent += 1
                self.masks.append(then_mask)
                self.block(st.then)
                self.masks.pop()
                em.indent -= 1
            if st.orelse:
                else_mask = self.fresh_mask()
                if self.mask is None:
                    em.emit(f"{else_mask} = ~{raw}")
                else:
                    em.emit(f"{else_mask} = ~{raw} & {self.mask}")
                em.emit(f"if {else_mask}.any():")
                em.indent += 1
                self.masks.append(else_mask)
                self.block(st.orelse)
                self.masks.pop()
                em.indent -= 1
        elif isinstance(st, ir.For):
            if _masked_for(st, self._expr_variant):
                self._masked_for_stmt(st)
            else:
                self._uniform_for_stmt(st)
        elif isinstance(st, ir.While):
            if _masked_while(st, self._expr_variant):
                self._masked_while_stmt(st)
            else:
                self._uniform_while_stmt(st)
        elif isinstance(st, ir.Break):
            self.break_stmt()
        elif isinstance(st, ir.Continue):
            self.continue_stmt()
        elif isinstance(st, ir.Barrier):
            # Full-width execution is already statement-synchronous:
            # every lane completes the previous phase before the next
            # statement runs, so the barrier needs no code (it also
            # charges no ops in the scalar engines).
            pass
        else:  # pragma: no cover - guarded by eligibility()
            raise KirRuntimeError(
                f"vec codegen: unsupported {type(st).__name__}"
            )

    def _loop_setup_ops(self, st: ir.For) -> None:
        setup = (
            _static_cost(st.start)
            + _static_cost(st.stop)
            + _static_cost(st.step)
        )
        if setup:
            self.add_ops(setup)

    def _uniform_for_stmt(self, st: ir.For) -> None:
        em = self.em
        self._loop_setup_ops(st)
        start = self.expr(st.start)
        stop = self.expr(st.stop)
        step = self.expr(st.step)
        em.emit(
            f"for {self.var(st.var)} in range({start}, {stop}, {step}):"
        )
        em.indent += 1
        self.add_ops(2)
        self.block(st.body)
        em.indent -= 1

    def _enter_loop_body(self, body: Sequence[ir.Stmt], act: str) -> None:
        """Push the loop body mask (a per-iteration copy when the body
        contains ``continue``, so continue can subtract lanes from the
        rest of the iteration without ending their loop)."""
        if _direct(body, ir.Continue):
            body_mask = self.fresh_mask()
            self.em.emit(f"{body_mask} = {act}")
        else:
            body_mask = act
        self.loops.append({"depth": len(self.masks), "act": act})
        self.masks.append(body_mask)
        self.block(body)
        self.masks.pop()
        self.loops.pop()

    def _masked_while_stmt(self, st: ir.While) -> None:
        em = self.em
        self.has_masked_loops = True
        act = self.fresh_mask()
        outer = self.mask
        if outer is None:
            em.emit(f"{act} = __np.ones(__n, dtype=bool)")
        else:
            em.emit(f"{act} = {outer}")
        it = self.fresh("t")
        em.emit(f"{it} = 0")
        cost = _static_cost(st.cond) + 1
        em.emit("while True:")
        em.indent += 1
        # Every still-active lane performs the check (and pays for it,
        # including the final failing one — exactly the scalar charge).
        em.emit(f"__ops += {act} * {cost}")
        self.masks.append(act)
        cond = self.expr(st.cond)
        self.masks.pop()
        em.emit(f"{act} = {act} & __vmask({cond}, __n)")
        em.emit(f"if not {act}.any(): break")
        em.emit(f"{it} += 1")
        em.emit(f"if {it} > __CAP: raise __vcaperr()")
        self._enter_loop_body(st.body, act)
        em.indent -= 1

    def _masked_for_stmt(self, st: ir.For) -> None:
        em = self.em
        self.has_masked_loops = True
        self._loop_setup_ops(st)
        var = self.var(st.var)
        stop_v = self.fresh("t")
        step_v = self.fresh("t")
        em.emit(f"{var} = {self.expr(st.start)}")
        em.emit(f"{stop_v} = {self.expr(st.stop)}")
        em.emit(f"{step_v} = {self.expr(st.step)}")
        if isinstance(st.step, ir.Const):
            cmp_op = "<" if st.step.value > 0 else ">"
            in_range = f"({var} {cmp_op} {stop_v})"
        else:
            in_range = (
                f"__vsel({step_v} > 0, {var} < {stop_v}, {var} > {stop_v})"
            )
        act = self.fresh_mask()
        outer = self.mask
        if outer is None:
            em.emit(f"{act} = __vmask({in_range}, __n)")
        else:
            em.emit(f"{act} = {outer} & __vmask({in_range}, __n)")
        it = self.fresh("t")
        em.emit(f"{it} = 0")
        em.emit(f"while {act}.any():")
        em.indent += 1
        # The scalar range loop charges +2 per entered iteration; the
        # failing range check is free.
        em.emit(f"__ops += {act} * 2")
        self._enter_loop_body(st.body, act)
        em.emit(f"{var} = {var} + {step_v}")
        em.emit(f"{act} = {act} & __vmask({in_range}, __n)")
        em.emit(f"{it} += 1")
        em.emit(f"if {it} > __CAP: raise __vcaperr()")
        em.indent -= 1

    def _uniform_while_stmt(self, st: ir.While) -> None:
        """A ``while`` whose condition is item-invariant and whose body
        cannot diverge runs as a plain Python loop: the condition is a
        host scalar and every lane shares the trip count."""
        em = self.em
        cost = _static_cost(st.cond) + 1
        em.emit("while True:")
        em.indent += 1
        self.add_ops(cost)
        em.emit(f"if not ({self.expr(st.cond)}): break")
        self.block(st.body)
        em.indent -= 1


def _vint(x: Any):
    return x.astype(_np.int64) if _is_arr(x) else int(x)


def _vfloat(x: Any):
    return x.astype(_np.float64) if _is_arr(x) else float(x)


def _vbool(x: Any):
    return x.astype(bool) if _is_arr(x) else bool(x)


def _gen_vec_kernel(
    module: ir.Module, fn: ir.Function, em: _Emitter
) -> _VecCompiler:
    used = _used_workitem_vars(fn)
    params = [f"v_{p.name}" for p in fn.params]
    has_locals = bool(_local_decls(fn))
    em.emit(f"def __vec_{fn.name}(__args, __gsz, __lsz):")
    em.indent += 1
    if params:
        em.emit(f"({', '.join(params)},) = __args")
    for d in range(_MAX_DIMS):
        em.emit(f"__G{d} = __gsz[{d}]")
        em.emit(f"__L{d} = __lsz[{d}]")
        em.emit(f"__N{d} = __G{d} // __L{d}")
    em.emit("__n = __G0 * __G1 * __G2")
    em.emit("__lin = __np.arange(__n)")
    id_used = {d for (name, d) in used if name in (
        "get_global_id", "get_local_id", "get_group_id")}
    if has_locals:
        id_used |= {0, 1, 2}
    for d in sorted(id_used):
        if d == 0:
            em.emit("__g0 = __lin % __G0")
        elif d == 1:
            em.emit("__g1 = (__lin // __G0) % __G1")
        else:
            em.emit("__g2 = __lin // (__G0 * __G1)")
    for name, d in sorted(used):
        if name == "get_local_id":
            em.emit(f"__l{d} = __g{d} % __L{d}")
        elif name == "get_group_id":
            em.emit(f"__grp{d} = __g{d} // __L{d}")
    if has_locals:
        # Per-item row into the (num_groups, size) local-memory
        # buffers: the group's flat index in the scalar engine's
        # group-major visit order.
        em.emit("__ngroups = __N0 * __N1 * __N2")
        em.emit(
            "__grow = (__g2 // __L2 * __N1 + __g1 // __L1) * __N0 "
            "+ __g0 // __L0"
        )
    em.emit("__ops = __np.zeros(__n, dtype=__np.int64)")
    comp = _VecCompiler(module, fn, em, _variant_vars(module, fn))
    if any(isinstance(s, ir.Return) for s in ir.walk_stmts(fn.body)):
        # Early return subtracts lanes from this kernel-wide live mask.
        em.emit("__live = __np.ones(__n, dtype=bool)")
        comp.masks.append("__live")
        comp.inline_ctx.append({"depth": 0, "ret": None})
    comp.block(fn.body)
    em.emit("return __ops")
    em.indent -= 1
    em.emit("")
    return comp


#: (gsz, lsz) -> linear-to-group-major scatter index for
#: :func:`fold_group_warps`.  Iterative workloads (the LUD pipeline,
#: repeated docrank launches) dispatch the same NDRange shape hundreds
#: of times; the index math is the dominant fold cost, so it is built
#: once per shape.  Bounded: wiped wholesale when it grows past 64
#: shapes (real workloads use a handful).
_fold_perm_cache: dict = {}


def _fold_perm(g: tuple, l: tuple, nitems: int) -> Any:
    """Scatter index mapping linear item order to group-major order."""
    key = (g, l)
    perm = _fold_perm_cache.get(key)
    if perm is None:
        n0, n1 = g[0] // l[0], g[1] // l[1]
        gitems = l[0] * l[1] * l[2]
        lin = _np.arange(nitems)
        x = lin % g[0]
        y = (lin // g[0]) % g[1]
        z = lin // (g[0] * g[1])
        grp = (z // l[2] * n1 + y // l[1]) * n0 + x // l[0]
        intra = ((z % l[2]) * l[1] + y % l[1]) * l[0] + x % l[0]
        perm = grp * gitems + intra
        if len(_fold_perm_cache) >= 64:
            _fold_perm_cache.clear()
        _fold_perm_cache[key] = perm
    return perm


def fold_group_warps(
    ops: Any, gsz: Sequence[int], lsz: Sequence[int], simd: int
) -> list[list[int]]:
    """Reduce a per-item op vector to per-group warp maxima.

    Reproduces ``costmodel._group_warp_costs`` exactly: items are
    regrouped from linear (dim0-fastest) order into intra-group arrival
    order, chunked into warps of *simd*, and reduced by max.  The
    short-warp tail pads with zeros, which cannot change a maximum of
    non-negative op counts.
    """
    g = _pad3(gsz)
    l = _pad3(lsz)
    n0, n1, n2 = g[0] // l[0], g[1] // l[1], g[2] // l[2]
    ngroups = n0 * n1 * n2
    gitems = l[0] * l[1] * l[2]
    if l[1] == 1 and l[2] == 1:
        # Groups never span dim1/dim2: linear order is already
        # group-major intra-group order.
        arranged = ops
    else:
        arranged = _np.empty_like(ops)
        arranged[_fold_perm(g, l, ops.shape[0])] = ops
    nwarps = -(-gitems // simd)
    if gitems % simd:
        padded = _np.zeros((ngroups, nwarps * simd), dtype=ops.dtype)
        padded[:, :gitems] = arranged.reshape(ngroups, gitems)
        arranged = padded
    else:
        arranged = arranged.reshape(ngroups, nwarps * simd)
    return arranged.reshape(ngroups, nwarps, simd).max(axis=2).tolist()


class VecKernel:
    """Callable vectorised form of one kernel."""

    def __init__(
        self,
        fn: ir.Function,
        run_fn: Any,
        group_major: bool = False,
        has_masked_loops: bool = False,
    ) -> None:
        self.fn = fn
        self.name = fn.name
        self._run = run_fn
        #: group-mode kernels are priced from item ops listed in the
        #: scalar engine's group-major visit order; reproduce that
        #: ordering quirk bit-for-bit (see :meth:`run_group_warps`)
        self.group_major = group_major
        #: True when the kernel contains loops whose runtime iteration
        #: count is lane-dependent (the :data:`LOOP_ITER_CAP` can fire)
        self.has_masked_loops = has_masked_loops

    def run_group_warps(
        self,
        args: Sequence[Any],
        gsz: Sequence[int],
        lsz: Sequence[int],
        simd: int,
    ) -> list[list[int]]:
        """Execute the NDRange on numpy arrays; returns per-group warp
        op maxima.  Array arguments must be numpy views of the buffers
        (:meth:`repro.opencl.memory.Buffer.np_view`)."""
        g = _pad3(gsz)
        l = _pad3(lsz)
        # Masked-off lanes may compute garbage that is discarded; only
        # the mask-aware helpers turn *active* faults into errors.
        with _np.errstate(all="ignore"):
            ops = self._run(tuple(args), g, l)
        if self.group_major and (l[1] != 1 or l[2] != 1):
            # The scalar group engine emits item ops in group-major
            # order and prices them as if linear; mimic by scattering
            # to group-major before the (identical) fold.
            arranged = _np.empty_like(ops)
            arranged[_fold_perm(g, l, ops.shape[0])] = ops
            ops = arranged
        return fold_group_warps(ops, g, l, simd)


def vectorize_kernel_info(
    module: ir.Module, fn: ir.Function
) -> tuple[Optional["VecKernel"], Optional[str]]:
    """Compile *fn* to a :class:`VecKernel`.

    Returns ``(kernel, None)`` on success or ``(None, reason)`` where
    *reason* is the :func:`eligibility` string (or ``codegen-error``
    for an unexpected compilation failure — vectorisation is purely an
    optimisation, so the scalar engine silently carries execution).
    """
    if not AVAILABLE:
        return None, "no-numpy"
    try:
        reason = eligibility(module, fn)
        if reason is not None:
            return None, reason
        em = _Emitter()
        comp = _gen_vec_kernel(module, fn, em)
        namespace = _namespace_base()
        namespace["__vint"] = _vint
        namespace["__vfloat"] = _vfloat
        namespace["__vbool"] = _vbool
        code = compile(em.source(), f"<kirvec:{fn.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - our own generated code
        vk = VecKernel(
            fn,
            namespace[f"__vec_{fn.name}"],
            group_major=ir.has_barrier(fn) or bool(_local_decls(fn)),
            has_masked_loops=comp.has_masked_loops,
        )
        return vk, None
    except Exception:
        return None, "codegen-error"


def vectorize_kernel(
    module: ir.Module, fn: ir.Function
) -> Optional[VecKernel]:
    """Compile *fn* to a :class:`VecKernel`, or None if ineligible."""
    return vectorize_kernel_info(module, fn)[0]
