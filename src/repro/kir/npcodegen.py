"""Vectorised batch execution of range-mode kernels (numpy backend).

The scalar engine (:mod:`repro.kir.pycodegen`) executes an NDRange one
Python work-item at a time.  For kernels whose control flow is the same
for every work-item — straight-line code, ``if``/``else`` (handled with
boolean masks), counted ``for`` loops with item-invariant bounds — the
whole NDRange can instead execute as a handful of numpy array
operations, with one array lane per work-item.  This module compiles
such kernels into a ``__vec_<name>(args, gsz, lsz)`` function returning
the per-item dynamic op-count *vector*, which :func:`fold_group_warps`
reduces to the per-group warp maxima the cost model consumes.

Op accounting mirrors ``_FnCompiler.block`` exactly (same per-block
batching, the same ``+1`` / ``+2`` control-flow charges, masked where
the scalar path is conditional), so the folded warp maxima — and hence
every simulated nanosecond — are identical to the interpreter's
per-item reduction; tests assert this.

Eligibility is conservative: kernels containing ``while`` / early
``return`` / ``break`` / ``continue`` / barriers / local memory / user
function calls, ``for`` loops with item-dependent bounds, or division
inside short-circuit or select operands (numpy evaluates both sides)
fall back to the scalar paths.  Known semantic deltas of the vector
tier (documented, none observable in race-free kernels): int64
wrap-around instead of Python big ints, and same-address stores from
multiple work-items resolve by numpy fancy-assignment order.

Everything here is a wall-clock optimisation only; when numpy is not
installed the module degrades to ``AVAILABLE = False`` and the scalar
engine carries all execution.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

from ..errors import KirRuntimeError
from . import ir
from .interp import c_idiv, c_imod
from .pycodegen import (
    _Emitter,
    _MAX_DIMS,
    _WI_VARS,
    _kind,
    _pad3,
    _static_cost,
    _stmt_cost,
    _used_workitem_vars,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

AVAILABLE = _np is not None

_NP_DTYPE_OF = {"int": "__np.int64", "float": "__np.float64", "bool": "bool"}

_ZERO = {"int": "0", "float": "0.0", "bool": "False"}

#: math builtin -> numpy-side expression prefix
_NP_MATH = {
    "sqrt": "__np.sqrt",
    "fabs": "__np.abs",
    "exp": "__np.exp",
    "log": "__np.log",
    "sin": "__np.sin",
    "cos": "__np.cos",
    "tan": "__np.tan",
    "atan": "__np.arctan",
    "atan2": "__np.arctan2",
    "pow": "__vpow",
    "floor": "__np.floor",
    "ceil": "__np.ceil",
    "fmin": "__np.minimum",
    "fmax": "__np.maximum",
    "min": "__np.minimum",
    "max": "__np.maximum",
    "abs": "__np.abs",
    "clamp": "__vclamp",
}


# -- runtime helpers (the generated code's namespace) ----------------------


def _is_arr(x: Any) -> bool:
    return isinstance(x, _np.ndarray)


def _vmask(val: Any, n: int):
    """Normalise an if-condition to a full-width boolean mask."""
    if _is_arr(val):
        return val
    if val:
        return _np.ones(n, dtype=bool)
    return _np.zeros(n, dtype=bool)


def _vidiv(a: Any, b: Any, m: Any):
    """C-style integer division, mask-aware for inactive lanes."""
    if not _is_arr(a) and not _is_arr(b):
        return c_idiv(a, b)
    a = _np.asarray(a)
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise KirRuntimeError("integer division by zero")
        b = _np.where(zero, 1, b)
    q = _np.abs(a) // _np.abs(b)
    return _np.where((a < 0) == (b < 0), q, -q)


def _vimod(a: Any, b: Any, m: Any):
    """C-style integer remainder (sign follows the dividend)."""
    if not _is_arr(a) and not _is_arr(b):
        return c_imod(a, b)
    return a - _vidiv(a, b, m) * b


def _vfdiv(a: Any, b: Any, m: Any):
    if not _is_arr(a) and not _is_arr(b):
        if b == 0:
            raise ZeroDivisionError("float division by zero")
        return a / b
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise ZeroDivisionError("float division by zero")
        b = _np.where(zero, 1.0, b)
    return a / b


def _int_like(x: Any) -> bool:
    if _is_arr(x):
        return x.dtype.kind in "bi"
    return isinstance(x, (bool, int, _np.integer))


def _vdiv(a: Any, b: Any, m: Any):
    """Dynamically-typed division (mirrors ``_runtime_div``)."""
    if _int_like(a) and _int_like(b):
        return _vidiv(a, b, m)
    try:
        return _vfdiv(a, b, m)
    except ZeroDivisionError:
        raise KirRuntimeError("float division by zero") from None


def _vmod(a: Any, b: Any, m: Any):
    """Dynamically-typed modulo (mirrors ``_runtime_mod``)."""
    if _int_like(a) and _int_like(b):
        return _vimod(a, b, m)
    return _vfmod(a, b, m)


def _vfmod(a: Any, b: Any, m: Any):
    if not _is_arr(a) and not _is_arr(b):
        return math.fmod(a, b)
    b = _np.asarray(b)
    zero = b == 0
    if zero.any():
        if m is None or bool((zero & m).any()):
            raise ValueError("math domain error")
        b = _np.where(zero, 1.0, b)
    return _np.fmod(a, b)


def _vpow(a: Any, b: Any):
    # math.pow always returns a float; float_power matches that.
    return _np.float_power(a, b)


def _vclamp(x: Any, lo: Any, hi: Any):
    return _np.clip(x, lo, hi)


def _vload(arr: Any, idx: Any, m: Any):
    """Gather from a global array; inactive lanes read a safe index."""
    if m is None or not _is_arr(idx):
        return arr[idx]
    return arr[_np.where(m, idx, 0)]


def _vload2(arr: Any, rows: Any, idx: Any, m: Any):
    """Gather each work-item's slot from its private-array row."""
    if m is not None and _is_arr(idx):
        idx = _np.where(m, idx, 0)
    return arr[rows, idx]


def _vstore(arr: Any, idx: Any, val: Any, m: Any) -> None:
    """Scatter into a global array with sequential-store semantics."""
    if m is None:
        if _is_arr(idx):
            arr[idx] = val
        elif _is_arr(val):
            arr[idx] = val[-1]  # every item stores here: last one wins
        else:
            arr[idx] = val
        return
    if _is_arr(idx):
        sel = idx[m]
        arr[sel] = val[m] if _is_arr(val) else val
        return
    if bool(m.any()):
        if _is_arr(val):
            active = val[m]
            arr[idx] = active[-1]
        else:
            arr[idx] = val


def _vstore2(arr: Any, rows: Any, idx: Any, val: Any, m: Any) -> None:
    """Scatter into per-item private-array rows."""
    if m is None:
        arr[rows, idx] = val
        return
    r = rows[m]
    i = idx[m] if _is_arr(idx) else idx
    v = val[m] if _is_arr(val) else val
    arr[r, i] = v


def _namespace_base() -> dict[str, Any]:
    return {
        "__np": _np,
        "__vmask": _vmask,
        "__vidiv": _vidiv,
        "__vimod": _vimod,
        "__vdiv": _vdiv,
        "__vmod": _vmod,
        "__vfdiv": _vfdiv,
        "__vfmod": _vfmod,
        "__vpow": _vpow,
        "__vclamp": _vclamp,
        "__vload": _vload,
        "__vload2": _vload2,
        "__vstore": _vstore,
        "__vstore2": _vstore2,
        "__vnot": None if _np is None else _np.logical_not,
        "__vand": None if _np is None else _np.logical_and,
        "__vor": None if _np is None else _np.logical_or,
        "__vsel": None if _np is None else _np.where,
        "__kre": KirRuntimeError,
    }


# -- eligibility -----------------------------------------------------------


def _unsafe_speculative(e: ir.Expr) -> bool:
    """True if evaluating *e* on lanes that would not evaluate it in the
    scalar engine can fault: division/modulo (zero) and array loads
    (out-of-range index).  numpy evaluates both arms of a select and
    both sides of ``&&``/``||``, so such expressions are only safe in
    positions the scalar engine also evaluates unconditionally."""
    return any(
        (isinstance(n, ir.BinOp) and n.op in ("/", "%"))
        or isinstance(n, ir.Index)
        for n in ir.walk_exprs(e)
    )


def _variant_vars(fn: ir.Function) -> set[str]:
    """Scalar variables whose value can differ between work-items.

    Seeds: work-item ids and array loads are variant; everything
    derived from them (or assigned under a condition, which masking
    turns into an array) becomes variant.  Fixpoint over the body.
    """
    variant: set[str] = set()

    def expr_variant(e: Optional[ir.Expr]) -> bool:
        if e is None:
            return False
        for node in ir.walk_exprs(e):
            if isinstance(node, ir.Var) and node.name in variant:
                return True
            if isinstance(node, ir.Index):
                return True
            if isinstance(node, ir.Call) and node.name in (
                "get_global_id",
                "get_local_id",
                "get_group_id",
            ):
                return True
        return False

    changed = True
    while changed:
        changed = False

        def visit(stmts: Sequence[ir.Stmt], conditional: bool) -> None:
            nonlocal changed
            for st in stmts:
                if isinstance(st, ir.Decl):
                    if isinstance(st.type, ir.ArrayType):
                        continue
                    if (conditional or expr_variant(st.init)) and (
                        st.name not in variant
                    ):
                        variant.add(st.name)
                        changed = True
                elif isinstance(st, ir.Assign):
                    if (conditional or expr_variant(st.value)) and (
                        st.name not in variant
                    ):
                        variant.add(st.name)
                        changed = True
                elif isinstance(st, ir.If):
                    visit(st.then, True)
                    visit(st.orelse, True)
                elif isinstance(st, (ir.For, ir.While)):
                    visit(st.body, conditional)

        visit(fn.body, False)
    return variant


def _eligible(module: ir.Module, fn: ir.Function) -> bool:
    variant = _variant_vars(fn)

    def invariant(e: Optional[ir.Expr]) -> bool:
        if e is None:
            return True
        for node in ir.walk_exprs(e):
            if isinstance(node, ir.Var) and node.name in variant:
                return False
            if isinstance(node, ir.Index):
                return False
            if isinstance(node, ir.Call) and node.name in (
                "get_global_id",
                "get_local_id",
                "get_group_id",
                "get_work_dim",
            ):
                return False
        return True

    for st in ir.walk_stmts(fn.body):
        if isinstance(
            st, (ir.While, ir.Return, ir.Break, ir.Continue, ir.Barrier)
        ):
            return False
        if isinstance(st, ir.Decl) and isinstance(st.type, ir.ArrayType):
            if st.type.space == ir.LOCAL:
                return False
            if st.size is None or not invariant(st.size):
                return False
        if isinstance(st, ir.For):
            if not isinstance(st.step, ir.Const):
                return False
            if any(
                isinstance(s, ir.Assign) and s.name == st.var
                for s in ir.walk_stmts(st.body)
            ):
                return False
            if not (
                invariant(st.start)
                and invariant(st.stop)
                and invariant(st.step)
            ):
                return False
        if isinstance(st, ir.Store) and not isinstance(st.base, ir.Var):
            return False
        for e in ir.walk_exprs(st):
            if isinstance(e, ir.Index) and not isinstance(e.base, ir.Var):
                return False
            if isinstance(e, ir.Call):
                if e.name == "get_work_dim":
                    return False
                if e.name in ir.WORKITEM_BUILTINS:
                    if not e.args or not isinstance(e.args[0], ir.Const):
                        return False
                    continue
                if e.name not in _NP_MATH:
                    return False  # user function call
            if isinstance(e, ir.Select) and (
                _unsafe_speculative(e.if_true)
                or _unsafe_speculative(e.if_false)
            ):
                return False
            if isinstance(e, ir.BinOp):
                if e.op in ("&&", "||") and _unsafe_speculative(e.right):
                    return False
    return True


# -- codegen ---------------------------------------------------------------


class _VecCompiler:
    """Compiles one eligible kernel body to masked numpy statements."""

    def __init__(
        self, module: ir.Module, fn: ir.Function, em: _Emitter
    ) -> None:
        self.module = module
        self.fn = fn
        self.em = em
        self.masks: list[str] = []
        self.private: set[str] = set()
        self.tmp = 0

    @staticmethod
    def var(name: str) -> str:
        return f"v_{name}"

    def fresh_mask(self) -> str:
        self.tmp += 1
        return f"__m{self.tmp}"

    @property
    def mask(self) -> Optional[str]:
        return self.masks[-1] if self.masks else None

    def _m(self) -> str:
        return self.mask or "None"

    def add_ops(self, n: int) -> None:
        if self.mask is None:
            self.em.emit(f"__ops += {n}")
        else:
            self.em.emit(f"__ops[{self.mask}] += {n}")

    # -- expressions ----------------------------------------------------

    def expr(self, e: ir.Expr) -> str:
        if isinstance(e, ir.Const):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, ir.Var):
            return self.var(e.name)
        if isinstance(e, ir.BinOp):
            return self._binop(e)
        if isinstance(e, ir.UnOp):
            inner = self.expr(e.operand)
            if e.op == "-":
                return f"(-{inner})"
            if e.op == "!":
                return f"__vnot({inner})"
            return f"(~{inner})"
        if isinstance(e, ir.Index):
            assert isinstance(e.base, ir.Var)
            idx = self.expr(e.index)
            if e.base.name in self.private:
                return (
                    f"__vload2({self.var(e.base.name)}, __lin, {idx}, "
                    f"{self._m()})"
                )
            return f"__vload({self.var(e.base.name)}, {idx}, {self._m()})"
        if isinstance(e, ir.Cast):
            inner = self.expr(e.operand)
            fn = {"int": "__vint", "float": "__vfloat", "bool": "__vbool"}[
                e.target.kind
            ]
            return f"{fn}({inner})"
        if isinstance(e, ir.Select):
            c = self.expr(e.cond)
            t = self.expr(e.if_true)
            f = self.expr(e.if_false)
            return f"__vsel({c}, {t}, {f})"
        if isinstance(e, ir.Call):
            return self._call(e)
        raise KirRuntimeError(f"vec codegen: unknown expr {type(e).__name__}")

    def _binop(self, e: ir.BinOp) -> str:
        lk = _kind(e.left)
        rk = _kind(e.right)
        left = self.expr(e.left)
        right = self.expr(e.right)
        op = e.op
        if op == "/":
            if lk == ir.INT and rk == ir.INT:
                return f"__vidiv({left}, {right}, {self._m()})"
            if ir.FLOAT in (lk, rk):
                return f"__vfdiv({left}, {right}, {self._m()})"
            return f"__vdiv({left}, {right}, {self._m()})"
        if op == "%":
            if lk == ir.INT and rk == ir.INT:
                return f"__vimod({left}, {right}, {self._m()})"
            if ir.FLOAT in (lk, rk):
                return f"__vfmod({left}, {right}, {self._m()})"
            return f"__vmod({left}, {right}, {self._m()})"
        if op == "&&":
            return f"__vand({left}, {right})"
        if op == "||":
            return f"__vor({left}, {right})"
        return f"({left} {op} {right})"

    def _call(self, e: ir.Call) -> str:
        if e.name in ir.WORKITEM_BUILTINS:
            d = int(e.args[0].value)  # type: ignore[attr-defined]
            if not 0 <= d < _MAX_DIMS:
                return "0" if e.name.endswith("_id") else "1"
            return f"{_WI_VARS[e.name]}{d}"
        args = ", ".join(self.expr(a) for a in e.args)
        return f"{_NP_MATH[e.name]}({args})"

    # -- statements -----------------------------------------------------

    def block(self, stmts: Sequence[ir.Stmt]) -> None:
        """Mirror of ``_FnCompiler.block``'s per-run op batching."""
        pending = 0

        def flush() -> None:
            nonlocal pending
            if pending:
                self.add_ops(pending)
                pending = 0

        for st in stmts:
            if isinstance(st, (ir.Decl, ir.Assign, ir.Store, ir.ExprStmt)):
                pending += _stmt_cost(st)
                self.simple_stmt(st)
            else:
                flush()
                self.control_stmt(st)
        flush()

    def simple_stmt(self, st: ir.Stmt) -> None:
        em = self.em
        if isinstance(st, ir.Decl):
            if isinstance(st.type, ir.ArrayType):
                assert st.size is not None
                size = self.expr(st.size)
                dtype = _NP_DTYPE_OF[st.type.element.kind]
                em.emit(
                    f"{self.var(st.name)} = "
                    f"__np.zeros((__n, {size}), dtype={dtype})"
                )
                self.private.add(st.name)
            elif st.init is not None:
                self._assign(st.name, self.expr(st.init), declares=True)
            else:
                em.emit(f"{self.var(st.name)} = {_ZERO[st.type.kind]}")
        elif isinstance(st, ir.Assign):
            self._assign(st.name, self.expr(st.value))
        elif isinstance(st, ir.Store):
            assert isinstance(st.base, ir.Var)
            idx = self.expr(st.index)
            val = self.expr(st.value)
            if st.base.name in self.private:
                em.emit(
                    f"__vstore2({self.var(st.base.name)}, __lin, {idx}, "
                    f"{val}, {self._m()})"
                )
            else:
                em.emit(
                    f"__vstore({self.var(st.base.name)}, {idx}, {val}, "
                    f"{self._m()})"
                )
        elif isinstance(st, ir.ExprStmt):
            em.emit(f"_ = {self.expr(st.expr)}")
        else:  # pragma: no cover - guarded by block()
            raise KirRuntimeError(f"not simple: {type(st).__name__}")

    def _assign(self, name: str, value: str, declares: bool = False) -> None:
        target = self.var(name)
        if self.mask is None or declares:
            # A declaration is scoped to its branch: later lanes never
            # observe it, so the unmasked full-width value is correct.
            self.em.emit(f"{target} = {value}")
        else:
            self.em.emit(
                f"{target} = __np.where({self.mask}, {value}, {target})"
            )

    def control_stmt(self, st: ir.Stmt) -> None:
        em = self.em
        if isinstance(st, ir.If):
            self.add_ops(_static_cost(st.cond) + 1)
            raw = self.fresh_mask()
            em.emit(f"{raw} = __vmask({self.expr(st.cond)}, __n)")
            then_mask = raw if self.mask is None else self.fresh_mask()
            if self.mask is not None:
                em.emit(f"{then_mask} = {raw} & {self.mask}")
            if st.then:
                em.emit(f"if {then_mask}.any():")
                em.indent += 1
                self.masks.append(then_mask)
                self.block(st.then)
                self.masks.pop()
                em.indent -= 1
            if st.orelse:
                else_mask = self.fresh_mask()
                if self.mask is None:
                    em.emit(f"{else_mask} = ~{raw}")
                else:
                    em.emit(f"{else_mask} = ~{raw} & {self.mask}")
                em.emit(f"if {else_mask}.any():")
                em.indent += 1
                self.masks.append(else_mask)
                self.block(st.orelse)
                self.masks.pop()
                em.indent -= 1
        elif isinstance(st, ir.For):
            setup = (
                _static_cost(st.start)
                + _static_cost(st.stop)
                + _static_cost(st.step)
            )
            if setup:
                self.add_ops(setup)
            start = self.expr(st.start)
            stop = self.expr(st.stop)
            step = self.expr(st.step)
            em.emit(
                f"for {self.var(st.var)} in range({start}, {stop}, {step}):"
            )
            em.indent += 1
            self.add_ops(2)
            self.block(st.body)
            em.indent -= 1
        else:  # pragma: no cover - guarded by _eligible
            raise KirRuntimeError(
                f"vec codegen: unsupported {type(st).__name__}"
            )


def _vint(x: Any):
    return x.astype(_np.int64) if _is_arr(x) else int(x)


def _vfloat(x: Any):
    return x.astype(_np.float64) if _is_arr(x) else float(x)


def _vbool(x: Any):
    return x.astype(bool) if _is_arr(x) else bool(x)


def _gen_vec_kernel(module: ir.Module, fn: ir.Function, em: _Emitter) -> None:
    used = _used_workitem_vars(fn)
    params = [f"v_{p.name}" for p in fn.params]
    em.emit(f"def __vec_{fn.name}(__args, __gsz, __lsz):")
    em.indent += 1
    if params:
        em.emit(f"({', '.join(params)},) = __args")
    for d in range(_MAX_DIMS):
        em.emit(f"__G{d} = __gsz[{d}]")
        em.emit(f"__L{d} = __lsz[{d}]")
        em.emit(f"__N{d} = __G{d} // __L{d}")
    em.emit("__n = __G0 * __G1 * __G2")
    em.emit("__lin = __np.arange(__n)")
    id_used = {d for (name, d) in used if name == "get_global_id"}
    id_used |= {d for (name, d) in used if name in (
        "get_local_id", "get_group_id")}
    for d in sorted(id_used):
        if d == 0:
            em.emit("__g0 = __lin % __G0")
        elif d == 1:
            em.emit("__g1 = (__lin // __G0) % __G1")
        else:
            em.emit("__g2 = __lin // (__G0 * __G1)")
    for name, d in sorted(used):
        if name == "get_local_id":
            em.emit(f"__l{d} = __g{d} % __L{d}")
        elif name == "get_group_id":
            em.emit(f"__grp{d} = __g{d} // __L{d}")
    em.emit("__ops = __np.zeros(__n, dtype=__np.int64)")
    comp = _VecCompiler(module, fn, em)
    comp.block(fn.body)
    em.emit("return __ops")
    em.indent -= 1
    em.emit("")


#: (gsz, lsz) -> linear-to-group-major scatter index for
#: :func:`fold_group_warps`.  Iterative workloads (the LUD pipeline,
#: repeated docrank launches) dispatch the same NDRange shape hundreds
#: of times; the index math is the dominant fold cost, so it is built
#: once per shape.  Bounded: wiped wholesale when it grows past 64
#: shapes (real workloads use a handful).
_fold_perm_cache: dict = {}


def _fold_perm(g: tuple, l: tuple, nitems: int) -> Any:
    key = (g, l)
    perm = _fold_perm_cache.get(key)
    if perm is None:
        n0, n1 = g[0] // l[0], g[1] // l[1]
        gitems = l[0] * l[1] * l[2]
        lin = _np.arange(nitems)
        x = lin % g[0]
        y = (lin // g[0]) % g[1]
        z = lin // (g[0] * g[1])
        grp = (z // l[2] * n1 + y // l[1]) * n0 + x // l[0]
        intra = ((z % l[2]) * l[1] + y % l[1]) * l[0] + x % l[0]
        perm = grp * gitems + intra
        if len(_fold_perm_cache) >= 64:
            _fold_perm_cache.clear()
        _fold_perm_cache[key] = perm
    return perm


def fold_group_warps(
    ops: Any, gsz: Sequence[int], lsz: Sequence[int], simd: int
) -> list[list[int]]:
    """Reduce a per-item op vector to per-group warp maxima.

    Reproduces ``costmodel._group_warp_costs`` exactly: items are
    regrouped from linear (dim0-fastest) order into intra-group arrival
    order, chunked into warps of *simd*, and reduced by max.  The
    short-warp tail pads with zeros, which cannot change a maximum of
    non-negative op counts.
    """
    g = _pad3(gsz)
    l = _pad3(lsz)
    n0, n1, n2 = g[0] // l[0], g[1] // l[1], g[2] // l[2]
    ngroups = n0 * n1 * n2
    gitems = l[0] * l[1] * l[2]
    if l[1] == 1 and l[2] == 1:
        # Groups never span dim1/dim2: linear order is already
        # group-major intra-group order.
        arranged = ops
    else:
        arranged = _np.empty_like(ops)
        arranged[_fold_perm(g, l, ops.shape[0])] = ops
    nwarps = -(-gitems // simd)
    if gitems % simd:
        padded = _np.zeros((ngroups, nwarps * simd), dtype=ops.dtype)
        padded[:, :gitems] = arranged.reshape(ngroups, gitems)
        arranged = padded
    else:
        arranged = arranged.reshape(ngroups, nwarps * simd)
    return arranged.reshape(ngroups, nwarps, simd).max(axis=2).tolist()


class VecKernel:
    """Callable vectorised form of one range-mode kernel."""

    def __init__(self, fn: ir.Function, run_fn: Any) -> None:
        self.fn = fn
        self.name = fn.name
        self._run = run_fn

    def run_group_warps(
        self,
        args: Sequence[Any],
        gsz: Sequence[int],
        lsz: Sequence[int],
        simd: int,
    ) -> list[list[int]]:
        """Execute the NDRange on numpy arrays; returns per-group warp
        op maxima.  Array arguments must be numpy views of the buffers
        (:meth:`repro.opencl.memory.Buffer.np_view`)."""
        g = _pad3(gsz)
        l = _pad3(lsz)
        # Masked-off lanes may compute garbage that is discarded; only
        # the mask-aware helpers turn *active* faults into errors.
        with _np.errstate(all="ignore"):
            ops = self._run(tuple(args), g, l)
        return fold_group_warps(ops, g, l, simd)


def vectorize_kernel(
    module: ir.Module, fn: ir.Function
) -> Optional[VecKernel]:
    """Compile *fn* to a :class:`VecKernel`, or None if ineligible."""
    if not AVAILABLE:
        return None
    try:
        if not _eligible(module, fn):
            return None
        em = _Emitter()
        _gen_vec_kernel(module, fn, em)
        namespace = _namespace_base()
        namespace["__vint"] = _vint
        namespace["__vfloat"] = _vfloat
        namespace["__vbool"] = _vbool
        code = compile(em.source(), f"<kirvec:{fn.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - our own generated code
        return VecKernel(fn, namespace[f"__vec_{fn.name}"])
    except Exception:
        # Vectorisation is purely an optimisation: any unexpected shape
        # falls back to the scalar engine rather than failing the build.
        return None
