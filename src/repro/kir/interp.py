"""Reference interpreter for kernel IR.

This is the slow, exact engine: it walks the IR tree per work-item,
counting every operation.  The fast path is :mod:`repro.kir.pycodegen`;
tests cross-check the two.  The interpreter is also the engine used to
run work-items of kernels that contain barriers inside the generator
scheduler of :mod:`repro.opencl.device` when codegen is disabled.

Semantics
---------
* ``int`` division and modulo follow C (truncation toward zero).
* Out-of-bounds array access raises :class:`KirRuntimeError` (a real GPU
  would silently corrupt memory; we prefer loud failure).
* Barriers are implemented by yielding from the execution generator;
  the caller resumes every work-item of a group in lock-step.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Optional, Sequence

from ..errors import KirRuntimeError
from . import ir


def c_idiv(a: int, b: int) -> int:
    """C-style integer division (truncate toward zero)."""
    if b == 0:
        raise KirRuntimeError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def c_imod(a: int, b: int) -> int:
    """C-style integer remainder (sign follows the dividend)."""
    return a - c_idiv(a, b) * b


class WorkItem:
    """Identity of one work-item inside an NDRange dispatch."""

    __slots__ = ("gid", "lid", "group", "gsize", "lsize", "ngroups", "dim")

    def __init__(
        self,
        gid: Sequence[int],
        lid: Sequence[int],
        group: Sequence[int],
        gsize: Sequence[int],
        lsize: Sequence[int],
    ) -> None:
        self.gid = tuple(gid)
        self.lid = tuple(lid)
        self.group = tuple(group)
        self.gsize = tuple(gsize)
        self.lsize = tuple(lsize)
        self.ngroups = tuple(g // l for g, l in zip(gsize, lsize))
        self.dim = len(self.gsize)


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


_MATH_IMPL = {
    "sqrt": math.sqrt,
    "fabs": abs,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "atan2": math.atan2,
    "pow": math.pow,
    "floor": lambda x: float(math.floor(x)),
    "ceil": lambda x: float(math.ceil(x)),
    "fmin": min,
    "fmax": max,
    "min": min,
    "max": max,
    "abs": abs,
    "clamp": lambda x, lo, hi: min(max(x, lo), hi),
}


class Interpreter:
    """Tree-walking evaluator for a :class:`~repro.kir.ir.Module`.

    The ``ops`` attribute accumulates the number of primitive operations
    executed; the cost model prices kernels from these counts.
    """

    def __init__(self, module: ir.Module) -> None:
        self.module = module
        self.ops = 0

    # -- host entry points ---------------------------------------------

    def call(self, name: str, args: Sequence[Any]) -> Any:
        """Call a non-kernel function as host code and return its value."""
        fn = self.module.functions.get(name)
        if fn is None:
            raise KirRuntimeError(f"no function {name!r}")
        if fn.is_kernel:
            raise KirRuntimeError(f"{name!r} is a kernel; use run_workitem")
        return self._call_function(fn, list(args))

    def run_workitem(
        self, kernel: ir.Function, args: Sequence[Any], wi: WorkItem,
        local_mem: Optional[dict[str, list]] = None,
    ) -> Iterator[None]:
        """Run one work-item of *kernel* as a generator.

        The generator yields once per barrier; the caller drives all items
        of a work-group in lock-step.  ``local_mem`` maps the names of
        ``local`` arrays (shared across the group) to their backing lists.
        """
        env: dict[str, Any] = dict(zip(kernel.param_names(), args))
        if local_mem:
            env.update(local_mem)
        try:
            yield from self._exec_block(kernel.body, env, wi, local_mem or {})
        except _Return:
            pass

    # -- function calls --------------------------------------------------

    def _call_function(self, fn: ir.Function, args: list[Any]) -> Any:
        if len(args) != len(fn.params):
            raise KirRuntimeError(
                f"{fn.name}: expected {len(fn.params)} args, got {len(args)}"
            )
        env = dict(zip(fn.param_names(), args))
        gen = self._exec_block(fn.body, env, None, {})
        try:
            for _ in gen:
                raise KirRuntimeError(f"{fn.name}: barrier in helper function")
        except _Return as r:
            return r.value
        return None

    # -- statements --------------------------------------------------------

    def _exec_block(
        self, stmts: list[ir.Stmt], env: dict, wi: Optional[WorkItem],
        local_mem: dict,
    ) -> Iterator[None]:
        for st in stmts:
            yield from self._exec_stmt(st, env, wi, local_mem)

    def _exec_stmt(
        self, st: ir.Stmt, env: dict, wi: Optional[WorkItem], local_mem: dict
    ) -> Iterator[None]:
        if isinstance(st, ir.Decl):
            self.ops += 1
            if isinstance(st.type, ir.ArrayType):
                if st.type.space == ir.LOCAL:
                    # Allocated by the group driver; just bind the name.
                    if st.name not in env:
                        size = self._eval(st.size, env, wi)
                        arr = self._new_array(st.type.element, size)
                        env[st.name] = arr
                        local_mem[st.name] = arr
                else:
                    size = self._eval(st.size, env, wi)
                    env[st.name] = self._new_array(st.type.element, size)
            else:
                env[st.name] = (
                    self._eval(st.init, env, wi)
                    if st.init is not None
                    else _zero(st.type)
                )
        elif isinstance(st, ir.Assign):
            self.ops += 1
            env[st.name] = self._eval(st.value, env, wi)
        elif isinstance(st, ir.Store):
            self.ops += 1
            arr = self._eval(st.base, env, wi)
            idx = self._eval(st.index, env, wi)
            val = self._eval(st.value, env, wi)
            try:
                if idx < 0:
                    raise IndexError
                arr[idx] = val
            except IndexError:
                raise KirRuntimeError(
                    f"store index {idx} out of range (len {len(arr)})"
                ) from None
        elif isinstance(st, ir.If):
            if self._eval(st.cond, env, wi):
                yield from self._exec_block(st.then, env, wi, local_mem)
            else:
                yield from self._exec_block(st.orelse, env, wi, local_mem)
        elif isinstance(st, ir.For):
            i = self._eval(st.start, env, wi)
            stop = self._eval(st.stop, env, wi)
            step = self._eval(st.step, env, wi)
            if step == 0:
                raise KirRuntimeError("for loop with zero step")
            outer = st.var in env
            saved = env.get(st.var)
            while (i < stop) if step > 0 else (i > stop):
                self.ops += 2
                env[st.var] = i
                try:
                    yield from self._exec_block(st.body, env, wi, local_mem)
                except _Break:
                    break
                except _Continue:
                    pass
                i = env[st.var] + step
            if outer:
                env[st.var] = saved
            else:
                env.pop(st.var, None)
        elif isinstance(st, ir.While):
            while True:
                self.ops += 1
                if not self._eval(st.cond, env, wi):
                    break
                try:
                    yield from self._exec_block(st.body, env, wi, local_mem)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(st, ir.Break):
            raise _Break()
        elif isinstance(st, ir.Continue):
            raise _Continue()
        elif isinstance(st, ir.Return):
            value = (
                self._eval(st.value, env, wi) if st.value is not None else None
            )
            raise _Return(value)
        elif isinstance(st, ir.ExprStmt):
            self._eval(st.expr, env, wi)
        elif isinstance(st, ir.Barrier):
            yield
        else:
            raise KirRuntimeError(f"unknown statement {type(st).__name__}")

    # -- expressions -------------------------------------------------------

    def _eval(self, e: ir.Expr, env: dict, wi: Optional[WorkItem]) -> Any:
        if isinstance(e, ir.Const):
            return e.value
        if isinstance(e, ir.Var):
            try:
                return env[e.name]
            except KeyError:
                raise KirRuntimeError(f"unbound variable {e.name!r}") from None
        self.ops += 1
        if isinstance(e, ir.BinOp):
            op = e.op
            if op == "&&":
                return bool(self._eval(e.left, env, wi)) and bool(
                    self._eval(e.right, env, wi)
                )
            if op == "||":
                return bool(self._eval(e.left, env, wi)) or bool(
                    self._eval(e.right, env, wi)
                )
            lv = self._eval(e.left, env, wi)
            rv = self._eval(e.right, env, wi)
            return _binop(op, lv, rv)
        if isinstance(e, ir.UnOp):
            v = self._eval(e.operand, env, wi)
            if e.op == "-":
                return -v
            if e.op == "!":
                return not v
            if e.op == "~":
                return ~v
            raise KirRuntimeError(f"bad unary op {e.op!r}")
        if isinstance(e, ir.Index):
            arr = self._eval(e.base, env, wi)
            idx = self._eval(e.index, env, wi)
            try:
                if idx < 0:
                    raise IndexError
                return arr[idx]
            except IndexError:
                raise KirRuntimeError(
                    f"load index {idx} out of range (len {len(arr)})"
                ) from None
        if isinstance(e, ir.Cast):
            v = self._eval(e.operand, env, wi)
            if e.target.kind == ir.INT:
                return int(v)
            if e.target.kind == ir.FLOAT:
                return float(v)
            return bool(v)
        if isinstance(e, ir.Select):
            if self._eval(e.cond, env, wi):
                return self._eval(e.if_true, env, wi)
            return self._eval(e.if_false, env, wi)
        if isinstance(e, ir.Call):
            return self._call(e, env, wi)
        raise KirRuntimeError(f"unknown expression {type(e).__name__}")

    def _call(self, e: ir.Call, env: dict, wi: Optional[WorkItem]) -> Any:
        name = e.name
        if name in ir.WORKITEM_BUILTINS:
            if wi is None:
                raise KirRuntimeError(f"{name} called outside a kernel")
            if name == "get_work_dim":
                return wi.dim
            d = self._eval(e.args[0], env, wi)
            if not 0 <= d < wi.dim:
                return 0 if name.startswith("get_global_id") else 1
            return {
                "get_global_id": wi.gid,
                "get_local_id": wi.lid,
                "get_group_id": wi.group,
                "get_global_size": wi.gsize,
                "get_local_size": wi.lsize,
                "get_num_groups": wi.ngroups,
            }[name][d]
        args = [self._eval(a, env, wi) for a in e.args]
        if name in _MATH_IMPL:
            try:
                return _MATH_IMPL[name](*args)
            except ValueError as exc:
                raise KirRuntimeError(f"{name}: {exc}") from None
        fn = self.module.functions.get(name)
        if fn is None:
            raise KirRuntimeError(f"call to unknown function {name!r}")
        return self._call_function(fn, args)

    @staticmethod
    def _new_array(element: ir.ScalarType, size: Any) -> list:
        if not isinstance(size, int) or size < 0:
            raise KirRuntimeError(f"bad array size {size!r}")
        return [_zero(element)] * size


def _zero(typ: ir.Type) -> Any:
    if isinstance(typ, ir.ScalarType):
        if typ.kind == ir.INT:
            return 0
        if typ.kind == ir.FLOAT:
            return 0.0
        return False
    return None


def _binop(op: str, lv: Any, rv: Any) -> Any:
    both_int = isinstance(lv, int) and isinstance(rv, int) and not (
        isinstance(lv, bool) or isinstance(rv, bool)
    )
    if op == "+":
        return lv + rv
    if op == "-":
        return lv - rv
    if op == "*":
        return lv * rv
    if op == "/":
        if both_int:
            return c_idiv(lv, rv)
        if rv == 0:
            raise KirRuntimeError("float division by zero")
        return lv / rv
    if op == "%":
        if both_int:
            return c_imod(lv, rv)
        return math.fmod(lv, rv)
    if op == "==":
        return lv == rv
    if op == "!=":
        return lv != rv
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    if op == "&":
        return lv & rv
    if op == "|":
        return lv | rv
    if op == "^":
        return lv ^ rv
    if op == "<<":
        return lv << rv
    if op == ">>":
        return lv >> rv
    raise KirRuntimeError(f"bad binary op {op!r}")
