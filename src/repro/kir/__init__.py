"""Kernel IR: the shared executable representation for device kernels.

Every front end (kernel-C, the Ensemble compiler's kernel extraction,
the OpenACC pragma compiler) lowers to this IR; the OpenCL substrate's
devices execute it via :func:`compile_module` (fast path) or
:class:`Interpreter` (instrumented reference engine).
"""

from .ir import (  # noqa: F401
    ADDRESS_SPACES,
    ARITH_OPS,
    BOOL,
    BOOL_T,
    COMPARE_OPS,
    CONSTANT,
    FLOAT,
    FLOAT_T,
    GLOBAL,
    INT,
    INT_T,
    LOCAL,
    LOGIC_OPS,
    MATH_BUILTINS,
    PRIVATE,
    SCALAR_TYPES,
    VOID,
    WORKITEM_BUILTINS,
    ArrayType,
    Assign,
    Barrier,
    BinOp,
    Break,
    Call,
    Cast,
    Const,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    For,
    Function,
    If,
    Index,
    Module,
    Param,
    Return,
    ScalarType,
    Select,
    Stmt,
    Store,
    Type,
    UnOp,
    Var,
    While,
    has_barrier,
    read_arrays,
    scalar,
    walk_exprs,
    walk_stmts,
    written_arrays,
)
from .interp import Interpreter, WorkItem, c_idiv, c_imod  # noqa: F401
from .pycodegen import CompiledModule, KernelRunner, compile_module  # noqa: F401
from .unparse import unparse_function, unparse_module  # noqa: F401
from .validate import validate  # noqa: F401
