"""Fast execution engine: compile kernel IR to Python source.

The OpenCL substrate's devices execute kernels through this module.  For
each IR module we generate one Python source text containing:

* ``f_<name>`` for every helper/host function.  Convention: the first
  parameter is the running op counter; the function returns
  ``(value, ops)`` so dynamic operation counts flow back to the caller.
* ``__item_<kernel>`` + ``__run_<kernel>`` for kernels without barriers
  or local memory ("range mode"): the runner iterates the NDRange and
  returns a list of per-work-item op counts (the cost model prices warps
  from these).
* ``__wi_<kernel>`` + ``__locals_<kernel>`` for kernels with barriers or
  local memory ("group mode"): a per-work-item *generator* that yields at
  every barrier, plus an allocator for the group's local arrays.  The
  device drives all items of a group in lock-step.

Operation counts are aggregated per straight-line block (one ``__ops +=
N`` per run of simple statements), so they match the reference
interpreter closely but not exactly; tests assert results are identical
and op counts agree within a small tolerance.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Optional, Sequence

from ..errors import KirError, KirRuntimeError
from . import ir
from .interp import c_idiv, c_imod

_MAX_DIMS = 3


def _runtime_div(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        return c_idiv(a, b)
    if b == 0:
        raise KirRuntimeError("float division by zero")
    return a / b


def _runtime_mod(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        return c_imod(a, b)
    return math.fmod(a, b)


def _checked_load(arr: Sequence, idx: int) -> Any:
    if idx < 0 or idx >= len(arr):
        raise KirRuntimeError(f"load index {idx} out of range (len {len(arr)})")
    return arr[idx]


_GLOBALS_BASE: dict[str, Any] = {
    "__idiv": c_idiv,
    "__imod": c_imod,
    "__div": _runtime_div,
    "__mod": _runtime_mod,
    "__fmod": math.fmod,
    "__sqrt": math.sqrt,
    "__exp": math.exp,
    "__log": math.log,
    "__sin": math.sin,
    "__cos": math.cos,
    "__tan": math.tan,
    "__atan": math.atan,
    "__atan2": math.atan2,
    "__pow": math.pow,
    "__floor": lambda x: float(math.floor(x)),
    "__ceil": lambda x: float(math.ceil(x)),
    "__clamp": lambda x, lo, hi: min(max(x, lo), hi),
    "__kre": KirRuntimeError,
}

_MATH_NAME = {
    "sqrt": "__sqrt",
    "fabs": "abs",
    "exp": "__exp",
    "log": "__log",
    "sin": "__sin",
    "cos": "__cos",
    "tan": "__tan",
    "atan": "__atan",
    "atan2": "__atan2",
    "pow": "__pow",
    "floor": "__floor",
    "ceil": "__ceil",
    "fmin": "min",
    "fmax": "max",
    "min": "min",
    "max": "max",
    "abs": "abs",
    "clamp": "__clamp",
}

# Work-item builtin -> variable prefix used in generated code.
_WI_VARS = {
    "get_global_id": "__g",
    "get_local_id": "__l",
    "get_group_id": "__grp",
    "get_global_size": "__G",
    "get_local_size": "__L",
    "get_num_groups": "__N",
}


class _Emitter:
    """Accumulates indented Python source lines."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _static_cost(e: ir.Expr) -> int:
    """Static operation count of evaluating *e* once."""
    return sum(
        1
        for node in ir.walk_exprs(e)
        if not isinstance(node, (ir.Const, ir.Var))
    )


def _stmt_cost(st: ir.Stmt) -> int:
    """Op cost of a simple (non-control-flow) statement."""
    cost = 1  # the statement itself (decl/assign/store)
    for node in ir.walk_exprs(st):
        if not isinstance(node, (ir.Const, ir.Var)):
            cost += 1
    return cost


class _FnCompiler:
    """Compiles one function or kernel body to Python lines."""

    def __init__(
        self,
        module: ir.Module,
        fn: ir.Function,
        em: _Emitter,
        mode: str,
        used_wi: Optional[set[tuple[str, int]]] = None,
    ) -> None:
        self.module = module
        self.fn = fn
        self.em = em
        self.mode = mode  # 'host', 'item', 'group'
        self.used_wi = used_wi or set()
        self.tmp = 0

    # -- naming ----------------------------------------------------------

    @staticmethod
    def var(name: str) -> str:
        return f"v_{name}"

    def fresh(self) -> str:
        self.tmp += 1
        return f"__t{self.tmp}"

    # -- expressions -------------------------------------------------------

    def expr(self, e: ir.Expr) -> str:
        """Emit code for *e*; user calls are lifted to temp statements."""
        if isinstance(e, ir.Const):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, ir.Var):
            return self.var(e.name)
        if isinstance(e, ir.BinOp):
            return self._binop(e)
        if isinstance(e, ir.UnOp):
            inner = self.expr(e.operand)
            if e.op == "-":
                return f"(-{inner})"
            if e.op == "!":
                return f"(not {inner})"
            return f"(~{inner})"
        if isinstance(e, ir.Index):
            base = self.expr(e.base)
            idx = self.expr(e.index)
            return f"{base}[{idx}]"
        if isinstance(e, ir.Cast):
            inner = self.expr(e.operand)
            pyname = {"int": "int", "float": "float", "bool": "bool"}[
                e.target.kind
            ]
            return f"{pyname}({inner})"
        if isinstance(e, ir.Select):
            c = self.expr(e.cond)
            t = self.expr(e.if_true)
            f = self.expr(e.if_false)
            return f"({t} if {c} else {f})"
        if isinstance(e, ir.Call):
            return self._call(e)
        raise KirError(f"codegen: unknown expr {type(e).__name__}")

    def _binop(self, e: ir.BinOp) -> str:
        lk = _kind(e.left)
        rk = _kind(e.right)
        left = self.expr(e.left)
        right = self.expr(e.right)
        op = e.op
        if op == "/":
            if lk == ir.INT and rk == ir.INT:
                return f"__idiv({left}, {right})"
            if ir.FLOAT in (lk, rk):
                return f"({left} / {right})"
            return f"__div({left}, {right})"
        if op == "%":
            if lk == ir.INT and rk == ir.INT:
                return f"__imod({left}, {right})"
            if ir.FLOAT in (lk, rk):
                return f"__fmod({left}, {right})"
            return f"__mod({left}, {right})"
        if op == "&&":
            return f"({left} and {right})"
        if op == "||":
            return f"({left} or {right})"
        return f"({left} {op} {right})"

    def _call(self, e: ir.Call) -> str:
        name = e.name
        if name in ir.WORKITEM_BUILTINS:
            return self._workitem_ref(e)
        args = ", ".join(self.expr(a) for a in e.args)
        if name in _MATH_NAME:
            return f"{_MATH_NAME[name]}({args})"
        target = self.module.functions.get(name)
        if target is None:
            raise KirError(f"codegen: unknown function {name!r}")
        # Lift the call into a statement so the op counter threads through.
        tmp = self.fresh()
        self.em.emit(f"{tmp}, __ops = f_{name}(__ops, {args})")
        return tmp

    def _workitem_ref(self, e: ir.Call) -> str:
        if self.mode == "host":
            raise KirError(f"codegen: {e.name} in host function")
        if e.name == "get_work_dim":
            return "__dim"
        if len(e.args) != 1 or not isinstance(e.args[0], ir.Const):
            raise KirError(
                f"codegen: {e.name} requires a constant dimension argument"
            )
        d = int(e.args[0].value)
        if not 0 <= d < _MAX_DIMS:
            return "0" if e.name.endswith("_id") else "1"
        return f"{_WI_VARS[e.name]}{d}"

    # -- statements --------------------------------------------------------

    def block(self, stmts: list[ir.Stmt]) -> None:
        """Emit *stmts*, batching op-count increments per straight run."""
        pending = 0

        def flush() -> None:
            nonlocal pending
            if pending:
                self.em.emit(f"__ops += {pending}")
                pending = 0

        for st in stmts:
            if isinstance(st, (ir.Decl, ir.Assign, ir.Store, ir.ExprStmt)):
                pending += _stmt_cost(st)
                self.simple_stmt(st)
            elif isinstance(st, ir.Return):
                pending += _stmt_cost(st)
                flush()
                self.return_stmt(st)
            else:
                flush()
                self.control_stmt(st)
        flush()

    def simple_stmt(self, st: ir.Stmt) -> None:
        em = self.em
        if isinstance(st, ir.Decl):
            if isinstance(st.type, ir.ArrayType):
                if st.type.space == ir.LOCAL:
                    # Bound from the group-shared allocation.
                    em.emit(f'{self.var(st.name)} = __locals["{st.name}"]')
                else:
                    assert st.size is not None
                    size = self.expr(st.size)
                    zero = _zero_literal(st.type.element)
                    em.emit(f"{self.var(st.name)} = [{zero}] * ({size})")
            elif st.init is not None:
                em.emit(f"{self.var(st.name)} = {self.expr(st.init)}")
            else:
                em.emit(f"{self.var(st.name)} = {_zero_literal(st.type)}")
        elif isinstance(st, ir.Assign):
            em.emit(f"{self.var(st.name)} = {self.expr(st.value)}")
        elif isinstance(st, ir.Store):
            base = self.expr(st.base)
            idx = self.expr(st.index)
            val = self.expr(st.value)
            em.emit(f"{base}[{idx}] = {val}")
        elif isinstance(st, ir.ExprStmt):
            val = self.expr(st.expr)
            em.emit(f"_ = {val}")
        else:  # pragma: no cover - guarded by block()
            raise KirError(f"not a simple statement: {type(st).__name__}")

    def return_stmt(self, st: ir.Return) -> None:
        if self.mode == "host":
            value = self.expr(st.value) if st.value is not None else "None"
            self.em.emit(f"return ({value}, __ops)")
        else:
            # Kernel early exit: report this item's op count.
            self.em.emit("return __ops")

    def control_stmt(self, st: ir.Stmt) -> None:
        em = self.em
        if isinstance(st, ir.If):
            cost = _static_cost(st.cond) + 1
            em.emit(f"__ops += {cost}")
            em.emit(f"if {self.expr(st.cond)}:")
            em.indent += 1
            self.block(st.then) if st.then else em.emit("pass")
            em.indent -= 1
            if st.orelse:
                em.emit("else:")
                em.indent += 1
                self.block(st.orelse)
                em.indent -= 1
        elif isinstance(st, ir.For):
            self._for_stmt(st)
        elif isinstance(st, ir.While):
            cost = _static_cost(st.cond) + 1
            em.emit("while True:")
            em.indent += 1
            em.emit(f"__ops += {cost}")
            em.emit(f"if not ({self.expr(st.cond)}):")
            em.indent += 1
            em.emit("break")
            em.indent -= 1
            self.block(st.body)
            em.indent -= 1
        elif isinstance(st, ir.Break):
            em.emit("break")
        elif isinstance(st, ir.Continue):
            em.emit("continue")
        elif isinstance(st, ir.Barrier):
            if self.mode != "group":
                raise KirError("codegen: barrier outside group-mode kernel")
            em.emit("yield")
        else:
            raise KirError(f"codegen: unknown statement {type(st).__name__}")

    def _for_stmt(self, st: ir.For) -> None:
        em = self.em
        var = self.var(st.var)
        setup = _static_cost(st.start) + _static_cost(st.stop) + _static_cost(
            st.step
        )
        if setup:
            em.emit(f"__ops += {setup}")
        start = self.expr(st.start)
        stop = self.expr(st.stop)
        step = self.expr(st.step)
        body_writes_var = any(
            isinstance(s, ir.Assign) and s.name == st.var
            for s in ir.walk_stmts(st.body)
        )
        const_step = isinstance(st.step, ir.Const)
        if const_step and not body_writes_var:
            em.emit(f"for {var} in range({start}, {stop}, {step}):")
            em.indent += 1
            em.emit("__ops += 2")
            self.block(st.body)
            em.indent -= 1
        else:
            stop_v = self.fresh()
            step_v = self.fresh()
            em.emit(f"{var} = {start}")
            em.emit(f"{stop_v} = {stop}")
            em.emit(f"{step_v} = {step}")
            if const_step:
                cmp = "<" if st.step.value > 0 else ">"  # type: ignore[attr-defined]
                em.emit(f"while {var} {cmp} {stop_v}:")
            else:
                em.emit(
                    f"while ({var} < {stop_v}) "
                    f"if {step_v} > 0 else ({var} > {stop_v}):"
                )
            em.indent += 1
            em.emit("__ops += 2")
            self.block(st.body)
            em.emit(f"{var} += {step_v}")
            em.indent -= 1


def _kind(e: ir.Expr) -> Optional[str]:
    if isinstance(e.type, ir.ScalarType):
        return e.type.kind
    if isinstance(e, ir.Const):
        if isinstance(e.value, bool):
            return ir.BOOL
        return ir.INT if isinstance(e.value, int) else ir.FLOAT
    return None


def _zero_literal(typ: ir.Type) -> str:
    if isinstance(typ, ir.ScalarType):
        return {"int": "0", "float": "0.0", "bool": "False"}[typ.kind]
    raise KirError("cannot zero-init an array type here")


def _used_workitem_vars(fn: ir.Function) -> set[tuple[str, int]]:
    """Which (builtin, dim) pairs the kernel body references."""
    used: set[tuple[str, int]] = set()
    for st in ir.walk_stmts(fn.body):
        for e in ir.walk_exprs(st):
            if isinstance(e, ir.Call) and e.name in _WI_VARS:
                if e.args and isinstance(e.args[0], ir.Const):
                    d = int(e.args[0].value)
                    if 0 <= d < _MAX_DIMS:
                        used.add((e.name, d))
    return used


def _local_decls(fn: ir.Function) -> list[ir.Decl]:
    return [
        st
        for st in ir.walk_stmts(fn.body)
        if isinstance(st, ir.Decl)
        and isinstance(st.type, ir.ArrayType)
        and st.type.space == ir.LOCAL
    ]


class KernelRunner:
    """Executable form of one compiled kernel."""

    def __init__(
        self,
        fn: ir.Function,
        run_range: Optional[Callable] = None,
        wi_factory: Optional[Callable] = None,
        locals_factory: Optional[Callable] = None,
        run_warps: Optional[Callable] = None,
    ) -> None:
        self.fn = fn
        self.name = fn.name
        self.group_mode = run_range is None
        self.has_barrier = ir.has_barrier(fn)
        self._run_range = run_range
        self._wi_factory = wi_factory
        self._locals_factory = locals_factory
        self._run_warps = run_warps
        #: vectorised batch executor (:mod:`repro.kir.npcodegen`), or
        #: None when numpy is missing or the kernel is not vectorisable
        self.vec = None
        #: why ``vec`` is None (an ``npcodegen.eligibility`` reason
        #: string surfaced as a ``dispatch.fallback.<reason>`` counter)
        self.vec_reason: Optional[str] = None
        #: indices of array params the kernel stores into
        self.written_param_indices: tuple[int, ...] = tuple(
            i
            for i, p in enumerate(fn.params)
            if isinstance(p.type, ir.ArrayType)
            and p.name in ir.written_arrays(fn)
        )

    # -- range mode -------------------------------------------------------

    def run_range(
        self, args: Sequence[Any], gsz: Sequence[int], lsz: Sequence[int]
    ) -> list[int]:
        """Execute the full NDRange; returns per-item op counts in linear
        (row-major, dim0 fastest) order."""
        if self.group_mode:
            return self._run_groups(args, gsz, lsz)
        g = _pad3(gsz)
        l = _pad3(lsz)
        assert self._run_range is not None
        return self._run_range(tuple(args), g, l)

    def run_group_warps(
        self,
        args: Sequence[Any],
        gsz: Sequence[int],
        lsz: Sequence[int],
        simd: int,
    ) -> list[list[int]]:
        """Execute the NDRange, folding per-item op counts into per-group
        warp maxima on the fly (the only granularity the cost model's
        divergence rule consumes).  Range-mode kernels only."""
        assert self._run_warps is not None
        return self._run_warps(tuple(args), _pad3(gsz), _pad3(lsz), simd)

    # -- group mode -------------------------------------------------------

    def _run_groups(
        self, args: Sequence[Any], gsz: Sequence[int], lsz: Sequence[int]
    ) -> list[int]:
        g = _pad3(gsz)
        l = _pad3(lsz)
        ngrp = tuple(a // b for a, b in zip(g, l))
        args_t = tuple(args)
        assert self._wi_factory is not None and self._locals_factory is not None
        wi = self._wi_factory
        mk_locals = self._locals_factory
        item_ops: list[int] = []
        group_items = l[0] * l[1] * l[2]
        # One generator slot per work-item, reused for every group.
        gens: list = [None] * group_items
        drive = (
            self._drive_group if self.has_barrier
            else self._drive_group_nobarrier
        )
        for gz in range(ngrp[2]):
            for gy in range(ngrp[1]):
                for gx in range(ngrp[0]):
                    local_mem = mk_locals(args_t, g, l, ngrp)
                    grp = (gx, gy, gz)
                    slot = 0
                    for lz in range(l[2]):
                        for ly in range(l[1]):
                            for lx in range(l[0]):
                                gid = (
                                    gx * l[0] + lx,
                                    gy * l[1] + ly,
                                    gz * l[2] + lz,
                                )
                                gens[slot] = wi(
                                    args_t,
                                    gid,
                                    (lx, ly, lz),
                                    grp,
                                    g,
                                    l,
                                    ngrp,
                                    local_mem,
                                )
                                slot += 1
                    item_ops.extend(drive(gens, group_items))
        return item_ops

    @staticmethod
    def _drive_group(gens: list, count: int) -> list[int]:
        """Advance all work-item generators in lock-step between barriers."""
        ops = [0] * count
        live: list[int] = list(range(count))
        while live:
            still: list[int] = []
            for i in live:
                try:
                    next(gens[i])
                    still.append(i)
                except StopIteration as stop:
                    ops[i] = stop.value if stop.value is not None else 0
            if still and len(still) != len(live):
                raise KirRuntimeError(
                    "barrier divergence: not all work-items of the group "
                    "reached the barrier"
                )
            live = still
        return ops

    @staticmethod
    def _drive_group_nobarrier(gens: list, count: int) -> list[int]:
        """Run a barrier-free group to completion, one item at a time.

        Local-memory kernels without barriers land here: there is no
        lock-step to maintain, so the per-pass ``live``/``still`` list
        churn of :meth:`_drive_group` is skipped entirely.
        """
        ops = [0] * count
        for i in range(count):
            gen = gens[i]
            try:
                next(gen)  # run the body up to the trailing yield
                next(gen)  # complete
            except StopIteration as stop:
                ops[i] = stop.value if stop.value is not None else 0
                continue
            raise KirRuntimeError(  # pragma: no cover - defensive
                "barrier in a kernel compiled as barrier-free"
            )
        return ops


def _pad3(dims: Sequence[int]) -> tuple[int, int, int]:
    d = list(dims) + [1] * (_MAX_DIMS - len(dims))
    return (d[0], d[1], d[2])


def _vectorize(module: ir.Module, fn: ir.Function):
    """Build the numpy batch executor for *fn*, if possible.

    Returns ``(vec_kernel_or_None, fallback_reason_or_None)``.
    """
    from . import npcodegen

    if not npcodegen.AVAILABLE:
        return None, "no-numpy"
    return npcodegen.vectorize_kernel_info(module, fn)


class CompiledModule:
    """A kir module compiled to Python, ready to execute."""

    def __init__(self, module: ir.Module) -> None:
        self.module = module
        self.source = _generate_source(module)
        self.namespace: dict[str, Any] = dict(_GLOBALS_BASE)
        code = compile(self.source, f"<kir:{id(module)}>", "exec")
        exec(code, self.namespace)  # noqa: S102 - our own generated code
        self._runners: dict[str, KernelRunner] = {}
        for fn in module.kernels():
            if ir.has_barrier(fn) or _local_decls(fn):
                runner = KernelRunner(
                    fn,
                    wi_factory=self.namespace[f"__wi_{fn.name}"],
                    locals_factory=self.namespace[f"__locals_{fn.name}"],
                )
            else:
                runner = KernelRunner(
                    fn,
                    run_range=self.namespace[f"__run_{fn.name}"],
                    run_warps=self.namespace[f"__warps_{fn.name}"],
                )
            runner.vec, runner.vec_reason = _vectorize(module, fn)
            self._runners[fn.name] = runner

    def call(self, name: str, args: Sequence[Any]) -> tuple[Any, int]:
        """Call host function *name*; returns ``(value, op_count)``."""
        fn = self.module.functions.get(name)
        if fn is None:
            raise KirRuntimeError(f"no function {name!r}")
        if fn.is_kernel:
            raise KirRuntimeError(f"{name!r} is a kernel")
        return self.namespace[f"f_{name}"](0, *args)

    def kernel_runner(self, name: str) -> KernelRunner:
        runner = self._runners.get(name)
        if runner is None:
            raise KirRuntimeError(f"no kernel {name!r}")
        return runner


def _generate_source(module: ir.Module) -> str:
    em = _Emitter()
    for fn in module.functions.values():
        if fn.is_kernel:
            _gen_kernel(module, fn, em)
        else:
            _gen_host_fn(module, fn, em)
    return em.source()


def _gen_host_fn(module: ir.Module, fn: ir.Function, em: _Emitter) -> None:
    params = ", ".join(f"v_{p.name}" for p in fn.params)
    sep = ", " if params else ""
    em.emit(f"def f_{fn.name}(__ops{sep}{params}):")
    em.indent += 1
    comp = _FnCompiler(module, fn, em, mode="host")
    comp.block(fn.body)
    em.emit("return (None, __ops)")
    em.indent -= 1
    em.emit("")


def _id_exprs(used: set[tuple[str, int]]) -> dict[tuple[str, int], str]:
    """Expressions (in runner-loop scope) for each used work-item var."""
    out: dict[tuple[str, int], str] = {}
    for name, d in used:
        if name == "get_global_id":
            out[(name, d)] = f"__g{d}"
        elif name == "get_local_id":
            out[(name, d)] = f"__g{d} % __L{d}"
        elif name == "get_group_id":
            out[(name, d)] = f"__g{d} // __L{d}"
        elif name == "get_global_size":
            out[(name, d)] = f"__G{d}"
        elif name == "get_local_size":
            out[(name, d)] = f"__L{d}"
        elif name == "get_num_groups":
            out[(name, d)] = f"__N{d}"
    return out


def _gen_kernel(module: ir.Module, fn: ir.Function, em: _Emitter) -> None:
    if ir.has_barrier(fn) or _local_decls(fn):
        _gen_group_kernel(module, fn, em)
    else:
        _gen_range_kernel(module, fn, em)


def _gen_range_kernel(module: ir.Module, fn: ir.Function, em: _Emitter) -> None:
    used = _used_workitem_vars(fn)
    id_map = _id_exprs(used)
    wi_params = [f"{_WI_VARS[name]}{d}" for (name, d) in sorted(used)]
    params = [f"v_{p.name}" for p in fn.params]
    all_params = ", ".join(params + wi_params)

    em.emit(f"def __item_{fn.name}({all_params}):")
    em.indent += 1
    em.emit("__ops = 0")
    comp = _FnCompiler(module, fn, em, mode="item", used_wi=used)
    comp.block(fn.body)
    em.emit("return __ops")
    em.indent -= 1
    em.emit("")

    em.emit(f"def __run_{fn.name}(__args, __gsz, __lsz):")
    em.indent += 1
    if params:
        em.emit(f"({', '.join(params)},) = __args")
    for d in range(_MAX_DIMS):
        em.emit(f"__G{d} = __gsz[{d}]")
        em.emit(f"__L{d} = __lsz[{d}]")
        em.emit(f"__N{d} = __G{d} // __L{d}")
    em.emit("__item_ops = []")
    em.emit("__ap = __item_ops.append")
    em.emit(f"__it = __item_{fn.name}")
    em.emit("for __g2 in range(__G2):")
    em.indent += 1
    em.emit("for __g1 in range(__G1):")
    em.indent += 1
    em.emit("for __g0 in range(__G0):")
    em.indent += 1
    call_args = ", ".join(params + [id_map[key] for key in sorted(used)])
    em.emit(f"__ap(__it({call_args}))")
    em.indent -= 3
    em.emit("return __item_ops")
    em.indent -= 1
    em.emit("")

    _gen_warps_runner(module, fn, em, used)


def _gen_warps_runner(
    module: ir.Module,
    fn: ir.Function,
    em: _Emitter,
    used: set[tuple[str, int]],
) -> None:
    """The batched fast path for a range-mode kernel.

    ``__warps_<k>(__args, __gsz, __lsz, __simd)`` walks the NDRange in
    the cost model's group/warp order with all index arithmetic hoisted
    into the loop nest, folds per-item op counts into per-warp maxima as
    it goes (the divergence rule never looks below warp granularity)
    and returns one list of warp maxima per work-group — the millions of
    intermediate Python ints of the ``__run_`` path never materialise.
    The kernel body is inlined unless it early-returns, in which case
    the per-item function is called instead.
    """
    params = [f"v_{p.name}" for p in fn.params]
    has_return = any(
        isinstance(st, ir.Return) for st in ir.walk_stmts(fn.body)
    )
    em.emit(f"def __warps_{fn.name}(__args, __gsz, __lsz, __simd):")
    em.indent += 1
    if params:
        em.emit(f"({', '.join(params)},) = __args")
    for d in range(_MAX_DIMS):
        em.emit(f"__G{d} = __gsz[{d}]")
        em.emit(f"__L{d} = __lsz[{d}]")
        em.emit(f"__N{d} = __G{d} // __L{d}")
    if has_return:
        em.emit(f"__it = __item_{fn.name}")
    em.emit("__out = []")
    em.emit("__oap = __out.append")
    for d in (2, 1, 0):
        em.emit(f"for __grp{d} in range(__N{d}):")
        em.indent += 1
        em.emit(f"__b{d} = __grp{d} * __L{d}")
    em.emit("__warps = []")
    em.emit("__wap = __warps.append")
    em.emit("__wmax = 0")
    em.emit("__lane = 0")
    for d in (2, 1, 0):
        em.emit(f"for __l{d} in range(__L{d}):")
        em.indent += 1
        if ("get_global_id", d) in used:
            em.emit(f"__g{d} = __b{d} + __l{d}")
    if has_return:
        # __item_'s work-item parameters are exactly the loop-scope vars.
        call_args = ", ".join(
            params + [f"{_WI_VARS[name]}{d}" for (name, d) in sorted(used)]
        )
        em.emit(f"__ops = __it({call_args})")
    else:
        em.emit("__ops = 0")
        comp = _FnCompiler(module, fn, em, mode="item", used_wi=used)
        comp.block(fn.body)
    em.emit("if __ops > __wmax:")
    em.indent += 1
    em.emit("__wmax = __ops")
    em.indent -= 1
    em.emit("__lane += 1")
    em.emit("if __lane == __simd:")
    em.indent += 1
    em.emit("__wap(__wmax)")
    em.emit("__wmax = 0")
    em.emit("__lane = 0")
    em.indent -= 1
    em.indent -= 3
    em.emit("if __lane:")
    em.indent += 1
    em.emit("__wap(__wmax)")
    em.indent -= 1
    em.emit("__oap(__warps)")
    em.indent -= 3
    em.emit("return __out")
    em.indent -= 1
    em.emit("")


def _gen_group_kernel(module: ir.Module, fn: ir.Function, em: _Emitter) -> None:
    used = _used_workitem_vars(fn)
    params = [f"v_{p.name}" for p in fn.params]

    # Allocator for group-shared local arrays.
    em.emit(f"def __locals_{fn.name}(__args, __gsize, __lsize, __ngrp):")
    em.indent += 1
    if params:
        em.emit(f"({', '.join(params)},) = __args")
    for d in range(_MAX_DIMS):
        em.emit(f"__G{d} = __gsize[{d}]")
        em.emit(f"__L{d} = __lsize[{d}]")
        em.emit(f"__N{d} = __ngrp[{d}]")
    em.emit("__out = {}")
    alloc = _FnCompiler(module, fn, em, mode="group", used_wi=used)
    for decl in _local_decls(fn):
        assert decl.size is not None
        assert isinstance(decl.type, ir.ArrayType)
        size = alloc.expr(decl.size)
        zero = _zero_literal(decl.type.element)
        em.emit(f'__out["{decl.name}"] = [{zero}] * ({size})')
    em.emit("return __out")
    em.indent -= 1
    em.emit("")

    # Per-work-item generator.
    em.emit(
        f"def __wi_{fn.name}(__args, __gid, __lid, __grp, "
        "__gsize, __lsize, __ngrp, __locals):"
    )
    em.indent += 1
    if params:
        em.emit(f"({', '.join(params)},) = __args")
    for d in range(_MAX_DIMS):
        em.emit(f"__g{d} = __gid[{d}]")
        em.emit(f"__l{d} = __lid[{d}]")
        em.emit(f"__grp{d} = __grp[{d}]")
        em.emit(f"__G{d} = __gsize[{d}]")
        em.emit(f"__L{d} = __lsize[{d}]")
        em.emit(f"__N{d} = __ngrp[{d}]")
    em.emit("__ops = 0")
    comp = _FnCompiler(module, fn, em, mode="group", used_wi=used)
    comp.block(fn.body)
    em.emit("yield")  # ensure generator even if body lacks barriers
    em.emit("return __ops")
    em.indent -= 1
    em.emit("")


def compile_module(module: ir.Module) -> CompiledModule:
    """Compile *module* to executable Python (validating it first)."""
    from .validate import validate

    validate(module)
    return CompiledModule(module)
