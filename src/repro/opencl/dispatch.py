"""Execution-tier selection for NDRange dispatches.

Pricing a kernel dispatch needs its per-group warp op maxima; how those
are obtained is purely a host wall-clock concern.  This module picks the
fastest correct tier for each dispatch:

* **vectorised** — the numpy batch executor
  (:mod:`repro.kir.npcodegen`), used for eligible range-mode kernels on
  NDRanges large enough to amortise array setup.  Array arguments are
  the buffers' numpy mirrors, so chained dispatches over the same
  buffers stay in numpy-land with no list conversion in between.
* **scalar warp-fold** — the generated ``__warps_`` runner, which
  iterates items inline with hoisted index arithmetic and folds op
  counts into warp maxima on the fly (no per-item list).
* **legacy** — the original ``__run_`` per-item path, kept as the
  reference; selectable via :func:`set_legacy_execution` so benchmarks
  can measure old vs new on the same workload.

Group-mode kernels (barriers / local memory) always run the lock-step
generator engine and are priced through ``DeviceSpec.kernel_ns``
unchanged.  All tiers produce identical warp maxima (tests assert it),
so simulated nanoseconds never depend on the tier chosen.
"""

from __future__ import annotations

from typing import Sequence

from .. import kir
from .costmodel import DeviceSpec
from .memory import HAVE_NUMPY, Buffer

#: Below this many work-items the scalar warp-fold runner beats the
#: numpy tier on wall-clock (array setup dominates tiny dispatches).
VEC_MIN_ITEMS = 256

_legacy = False


def set_legacy_execution(flag: bool) -> None:
    """Force every dispatch through the original per-item path
    (benchmarking aid; simulated costs are identical either way)."""
    global _legacy
    _legacy = bool(flag)


def use_legacy() -> bool:
    return _legacy


def _listify(raw_args: Sequence) -> list:
    return [a.data if isinstance(a, Buffer) else a for a in raw_args]


def dispatch_kernel_ns(
    runner: "kir.KernelRunner",
    spec: DeviceSpec,
    raw_args: Sequence,
    gsz: Sequence[int],
    lsz: Sequence[int],
) -> float:
    """Execute one NDRange dispatch and return its simulated duration.

    *raw_args* carries :class:`Buffer` objects for array parameters (so
    this helper can choose the storage tier) and plain scalars
    otherwise.
    """
    if runner.group_mode or _legacy:
        item_ops = runner.run_range(_listify(raw_args), gsz, lsz)
        return spec.kernel_ns(item_ops, gsz, lsz)
    nitems = 1
    for s in gsz:
        nitems *= s
    if (
        runner.vec is not None
        and HAVE_NUMPY
        and nitems >= VEC_MIN_ITEMS
    ):
        np_args = [
            a.np_view() if isinstance(a, Buffer) else a for a in raw_args
        ]
        try:
            group_warps = runner.vec.run_group_warps(
                np_args, gsz, lsz, spec.simd_width
            )
        finally:
            # Even a faulting kernel may have partially stored.
            for i in runner.written_param_indices:
                arg = raw_args[i]
                if isinstance(arg, Buffer):
                    arg.mark_np_written()
        return spec.kernel_ns_from_group_warps(group_warps)
    group_warps = runner.run_group_warps(
        _listify(raw_args), gsz, lsz, spec.simd_width
    )
    return spec.kernel_ns_from_group_warps(group_warps)
