"""Execution-tier selection and multi-device splitting for NDRange
dispatches.

Pricing a kernel dispatch needs its per-group warp op maxima; how those
are obtained is purely a host wall-clock concern.  This module picks the
fastest correct tier for each dispatch:

* **vectorised** — the numpy batch executor
  (:mod:`repro.kir.npcodegen`), used for eligible range-mode kernels on
  NDRanges large enough to amortise array setup.  Array arguments are
  the buffers' numpy mirrors, so chained dispatches over the same
  buffers stay in numpy-land with no list conversion in between.
* **scalar warp-fold** — the generated ``__warps_`` runner, which
  iterates items inline with hoisted index arithmetic and folds op
  counts into warp maxima on the fly (no per-item list).
* **legacy** — the original ``__run_`` per-item path, kept as the
  reference; selectable via :func:`set_legacy_execution` so benchmarks
  can measure old vs new on the same workload.

Group-mode kernels (barriers / local memory) are eligible for the
vectorised tier too (barrier-phase execution with local arrays as numpy
buffers); when ineligible they run the lock-step generator engine and
are priced through ``DeviceSpec.kernel_ns`` unchanged.  All tiers
produce identical warp maxima (tests assert it), so simulated
nanoseconds never depend on the tier chosen.

Every demotion from the vectorised tier is counted on the active tracer
as ``dispatch.fallback`` plus ``dispatch.fallback.<reason>`` (reasons:
``while-loop``, ``barrier``, ``user-call``, ``iter-cap``,
``small-ndrange``, ``no-numpy``, … — see
:func:`repro.kir.npcodegen.eligibility`), so BENCH regressions are
diagnosable instead of silent.  Kernels with masked loops carry a
runtime iteration cap; hitting it restores the pre-dispatch buffer
contents and re-runs on the scalar warp-fold (counted as ``iter-cap``).

The vectorised tier's two loop optimisations are observable here too:

* ``dispatch.compact`` / ``dispatch.compact.rounds`` — how many times a
  masked loop compressed itself to its active lanes, and how many loop
  rounds then ran at compacted width (see *Active-lane compaction* in
  :mod:`repro.kir.npcodegen`).  Counted even when the dispatch later
  hits the iteration cap — the events happened.
* ``dispatch.cse.hits`` — codegen-time common-subexpression hits baked
  into the kernel that actually ran (e.g. mandelbrot's ``x*x + y*y``
  escape test shared between loop condition and body), counted per
  successful vectorised dispatch.

:func:`configure` surfaces the compaction policy knobs
(``compact_density``, ``compact_check_every``) without importing the
codegen module; settings apply to already-compiled kernels because the
generated code reads them at run time.

The module also houses the **multi-device split** machinery
(:func:`split_share_counts`, :func:`multi_device_kernel_ns`) used by
:meth:`repro.opencl.context.Context.enqueue_nd_range`: one NDRange is
executed once, then sliced along its outermost dimension at work-group
boundaries, and each device's slice is folded into warp maxima with
*that device's* SIMD width and priced on its own spec — deterministic,
and bit-identical in buffer contents to single-device execution because
only one execution ever happens.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import CLInvalidValue
from .. import kir
from ..kir import npcodegen as _npc
from ..trace import current_tracer
from . import faults as _faults
from . import fusion as _fusion
from .costmodel import DeviceSpec, group_warp_costs
from .memory import HAVE_NUMPY, Buffer

#: Below this many work-items the scalar warp-fold runner beats the
#: numpy tier on wall-clock (array setup dominates tiny dispatches).
VEC_MIN_ITEMS = 256

_legacy = False


def set_legacy_execution(flag: bool) -> None:
    """Force every dispatch through the original per-item path
    (benchmarking aid; simulated costs are identical either way)."""
    global _legacy
    _legacy = bool(flag)


def use_legacy() -> bool:
    """Whether the legacy per-item execution path is forced on."""
    return _legacy


_UNSET = object()


def configure(
    *,
    compact_density: Optional[float] = None,
    compact_check_every: Optional[int] = None,
    faults=_UNSET,
    retry=_UNSET,
    fusion=_UNSET,
) -> dict:
    """Adjust the vectorised tier's lane-compaction policy, install or
    clear the runtime-wide fault plan, and toggle the graph-level
    dispatch optimiser.

    ``compact_density`` is the live-lane fraction below which a masked
    loop gathers itself to its active lanes (``0.0`` disables
    compaction entirely, ``1.0`` compacts as soon as any lane exits);
    ``compact_check_every`` is how many loop rounds pass between density
    checks.  Both apply immediately to already-compiled kernels (the
    generated code reads them at run time), and outputs plus priced
    ledger totals are identical for every setting — only host wall-clock
    changes.

    ``faults`` installs a :class:`repro.opencl.faults.FaultPlan` (or
    ``None`` to disable injection); ``retry`` installs a
    :class:`repro.opencl.faults.RetryPolicy` (or ``None`` to restore
    the default).  Omitting either leaves it unchanged.  See
    docs/RELIABILITY.md for the full semantics.

    ``fusion`` enables (True) or disables (False) the graph-level
    optimiser — producer->consumer kernel fusion plus redundant
    host->device transfer elimination (:mod:`repro.opencl.fusion`).
    Off by default; with it off every golden figure is byte-identical
    to the unoptimised substrate.  See "Graph-level optimisation" in
    docs/ARCHITECTURE.md.  Returns the current settings as a dict.
    """
    if compact_density is not None:
        density = float(compact_density)
        if not 0.0 <= density <= 1.0:
            raise CLInvalidValue(
                f"compact_density must be in [0.0, 1.0], got {compact_density!r}"
            )
        _npc.COMPACT_DENSITY = density
    if compact_check_every is not None:
        every = int(compact_check_every)
        if every < 1:
            raise CLInvalidValue(
                f"compact_check_every must be >= 1, got {compact_check_every!r}"
            )
        _npc.COMPACT_CHECK_EVERY = every
    if faults is not _UNSET:
        if faults is not None and not isinstance(faults, _faults.FaultPlan):
            raise CLInvalidValue(
                f"faults must be a FaultPlan or None, got {type(faults).__name__}"
            )
        _faults.install(faults)
    if retry is not _UNSET:
        if retry is not None and not isinstance(retry, _faults.RetryPolicy):
            raise CLInvalidValue(
                f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
            )
        _faults.set_retry_policy(retry or _faults.RetryPolicy())
    if fusion is not _UNSET:
        _fusion.set_enabled(bool(fusion))
    return {
        "compact_density": _npc.COMPACT_DENSITY,
        "compact_check_every": _npc.COMPACT_CHECK_EVERY,
        "faults": _faults.active_plan(),
        "retry": _faults.retry_policy(),
        "fusion": _fusion.enabled(),
    }


def _listify(raw_args: Sequence) -> list:
    return [a.data if isinstance(a, Buffer) else a for a in raw_args]


def _count_fallback(reason: str) -> None:
    """Record one vectorised-tier demotion on the active tracer."""
    tracer = current_tracer()
    if tracer is not None and tracer.enabled:
        tracer.count("dispatch.fallback", 1)
        tracer.count(f"dispatch.fallback.{reason}", 1)


def _count_compaction(before: tuple) -> None:
    """Record lane-compaction activity since the *before* snapshot
    (:func:`repro.kir.npcodegen.thread_compact_stats`) on the tracer."""
    tracer = current_tracer()
    if tracer is None or not tracer.enabled:
        return
    events, rounds = _npc.thread_compact_stats()
    if events > before[0]:
        tracer.count("dispatch.compact", events - before[0])
    if rounds > before[1]:
        tracer.count("dispatch.compact.rounds", rounds - before[1])


def _count_cse_hits(hits: int) -> None:
    """Record the kernel's codegen-time CSE hits for this dispatch."""
    if hits <= 0:
        return
    tracer = current_tracer()
    if tracer is not None and tracer.enabled:
        tracer.count("dispatch.cse.hits", hits)


def _fallback_reason(runner: "kir.KernelRunner", nitems: int) -> str:
    """Why this dispatch is not taking the vectorised tier."""
    if not HAVE_NUMPY:
        return "no-numpy"
    if runner.vec is None:
        return runner.vec_reason or "ineligible"
    return "small-ndrange"


def _scalar_kernel_ns(
    runner: "kir.KernelRunner",
    spec: DeviceSpec,
    raw_args: Sequence,
    gsz: Sequence[int],
    lsz: Sequence[int],
) -> float:
    """Non-vectorised reference execution (generator engine or
    warp-fold runner, by kernel mode)."""
    if runner.group_mode:
        item_ops = runner.run_range(_listify(raw_args), gsz, lsz)
        return spec.kernel_ns(item_ops, gsz, lsz)
    group_warps = runner.run_group_warps(
        _listify(raw_args), gsz, lsz, spec.simd_width
    )
    return spec.kernel_ns_from_group_warps(group_warps)


def dispatch_kernel_ns(
    runner: "kir.KernelRunner",
    spec: DeviceSpec,
    raw_args: Sequence,
    gsz: Sequence[int],
    lsz: Sequence[int],
) -> float:
    """Execute one NDRange dispatch and return its simulated duration.

    *raw_args* carries :class:`Buffer` objects for array parameters (so
    this helper can choose the storage tier) and plain scalars
    otherwise.
    """
    if _legacy:
        # Reference path for benchmarking; intentionally not counted as
        # a fallback (nothing was demoted — the user asked for it).
        item_ops = runner.run_range(_listify(raw_args), gsz, lsz)
        return spec.kernel_ns(item_ops, gsz, lsz)
    nitems = 1
    for s in gsz:
        nitems *= s
    if runner.vec is None or not HAVE_NUMPY or nitems < VEC_MIN_ITEMS:
        _count_fallback(_fallback_reason(runner, nitems))
        return _scalar_kernel_ns(runner, spec, raw_args, gsz, lsz)
    plan = _faults.active_plan()
    if plan is not None:
        fault = plan.decide("vec", runner.name)
        if fault is not None:
            # Graceful degradation: the scalar tiers produce identical
            # outputs and identical priced nanoseconds, so a vec-tier
            # fault never surfaces to the caller — it just demotes.
            _faults.count_injection(fault)
            _faults.count_failover()
            _count_fallback("fault")
            return _scalar_kernel_ns(runner, spec, raw_args, gsz, lsz)
    np_args = [
        a.np_view() if isinstance(a, Buffer) else a for a in raw_args
    ]
    snaps: list[tuple[Buffer, object]] = []
    if runner.vec.has_masked_loops:
        # A masked loop may hit the iteration cap after partial stores;
        # snapshot written buffers so the scalar rerun starts clean.
        for i in runner.written_param_indices:
            arg = raw_args[i]
            if isinstance(arg, Buffer):
                snaps.append((arg, arg.np_view().copy()))
    compact_before = _npc.thread_compact_stats()
    try:
        try:
            group_warps = runner.vec.run_group_warps(
                np_args, gsz, lsz, spec.simd_width
            )
        finally:
            # Even a faulting kernel may have partially stored.  Count
            # compaction activity here too: events that happened before
            # an iteration-cap abort are still real work.
            _count_compaction(compact_before)
            for i in runner.written_param_indices:
                arg = raw_args[i]
                if isinstance(arg, Buffer):
                    arg.mark_np_written()
    except _npc.VecIterationCap:
        for arg, snap in snaps:
            arg.np_view()[:] = snap
            arg.mark_np_written()
        _count_fallback("iter-cap")
        return _scalar_kernel_ns(runner, spec, raw_args, gsz, lsz)
    _count_cse_hits(runner.vec.cse_hits)
    return spec.kernel_ns_from_group_warps(group_warps)


# -- multi-device splitting -------------------------------------------------


def device_weight(spec: DeviceSpec) -> float:
    """Relative kernel throughput used to apportion work-groups."""
    return spec.lanes * spec.ops_per_ns


def split_share_counts(total: int, weights: Sequence[float]) -> list[int]:
    """Deterministically apportion *total* units over *weights*.

    Largest-remainder assignment: every device gets ``floor(total *
    w/sum)``, leftovers go to the largest fractional remainders (ties
    broken by position).  Shares always sum to *total*; a zero share
    simply leaves that device out of the dispatch.
    """
    if total < 0:
        raise CLInvalidValue("cannot split a negative work amount")
    wsum = float(sum(weights))
    if wsum <= 0:
        raise CLInvalidValue("device weights must be positive")
    shares = [int(total * w / wsum) for w in weights]
    remainders = [
        (total * w / wsum - share, -i)
        for i, (w, share) in enumerate(zip(weights, shares))
    ]
    for _, neg_i in sorted(remainders, reverse=True)[: total - sum(shares)]:
        shares[-neg_i] += 1
    return shares


def multi_device_kernel_ns(
    runner: "kir.KernelRunner",
    specs: Sequence[DeviceSpec],
    shares: Sequence[int],
    raw_args: Sequence,
    gsz: Sequence[int],
    lsz: Sequence[int],
) -> list[Optional[tuple[tuple[int, ...], int, float]]]:
    """Execute one NDRange once and price each device's slice.

    ``shares`` holds the per-spec work-group counts along the outermost
    dimension (see :func:`split_share_counts`).  Returns, aligned with
    *specs*, either ``None`` (zero share) or ``(sub_global_size,
    n_items, ns)`` where *ns* is that device's simulated kernel time
    for its slice — warp maxima folded with its own SIMD width,
    work-groups scheduled over its own compute units.
    """
    item_ops = runner.run_range(_listify(raw_args), gsz, lsz)
    row_items = 1
    for s in gsz[:-1]:
        row_items *= s
    slice_items = row_items * lsz[-1]  # items per outermost work-group row
    out: list[Optional[tuple[tuple[int, ...], int, float]]] = []
    group_base = 0
    for spec, share in zip(specs, shares):
        if share == 0:
            out.append(None)
            continue
        lo = group_base * slice_items
        hi = (group_base + share) * slice_items
        sub_gsz = tuple(gsz[:-1]) + (share * lsz[-1],)
        warps = group_warp_costs(item_ops[lo:hi], sub_gsz, lsz, spec.simd_width)
        ns = spec.kernel_ns_from_group_warps(warps)
        out.append((sub_gsz, hi - lo, ns))
        group_base += share
    return out
