"""Programs: runtime compilation of kernel-C source.

A program is created from source text, built (compiled) per device at
runtime, and then mined for kernel objects — the same lifecycle as
``clCreateProgramWithSource`` / ``clBuildProgram`` / ``clCreateKernel``.
Build failures carry a build log, which the Ensemble language improves
upon by reporting kernel errors at compile time instead (Section 6.1.1);
here the baseline path keeps the delayed-error behaviour.
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional, Sequence

from ..errors import CLBuildProgramFailure, CLInvalidValue
from .. import kcache, kir
from . import faults
from .context import Context
from .platform import Device

_program_ids = itertools.count(1)


class Program:
    """A runtime-compiled program, mirroring ``cl_program``."""

    def __init__(self, context: Context, source: str) -> None:
        if not source.strip():
            raise CLInvalidValue("empty program source")
        self.id = next(_program_ids)
        self.context = context
        self.source = source
        self.build_log = ""
        self.refcount = 1
        self._built: dict[int, kir.CompiledModule] = {}
        self._build_lock = threading.Lock()

    @property
    def is_built(self) -> bool:
        return bool(self._built)

    @classmethod
    def shared(cls, context: Context, source: str, device: Device) -> "Program":
        """Acquire the context's program for *source*, built for *device*.

        Concurrent acquirers (actor threads) share one Program object.
        The first build for a (source, device-spec) pair in the context
        pays the full compile cost; later acquisitions find the program
        binary already registered and pay only a cheap API charge — the
        ``clCreateProgramWithBinary`` fast path of a real runtime.
        """
        with context._registry_lock:
            program = context._program_registry.get(source)
            if program is None:
                program = cls(context, source)
                context._program_registry[source] = program
            else:
                program.retain()
        with program._build_lock:
            if device.id in program._built:
                context.charge(
                    "host",
                    device.spec.api_call_ns,
                    name="load_program_binary",
                    args={"device": device.name},
                )
                return program
        return program.build([device])

    def build(self, devices: Optional[list[Device]] = None) -> "Program":
        """Compile the source for *devices* (default: every context device).

        The first build for a (source, device-spec) pair in this context
        charges the device's one-off compile cost; rebuilding the same
        pair through a different Program object charges only an API call
        ("load_program_binary") and reuses the registered binary.
        Raises :class:`CLBuildProgramFailure` with a build log on error.
        """
        targets = devices if devices is not None else self.context.devices
        for device in targets:
            if not self.context.has_device(device):
                raise CLInvalidValue(
                    f"device {device.name!r} is not in the context"
                )
            with self._build_lock:
                if device.id in self._built:
                    continue
                key = kcache.fingerprint(self.source, device.spec)
                cached = self.context.program_binary(key)
                if cached is not None:
                    self.context.charge(
                        "host",
                        device.spec.api_call_ns,
                        name="load_program_binary",
                        args={"device": device.name},
                    )
                    self._built[device.id] = cached
                    self.build_log = "build succeeded"
                    continue
                self._fault_gate(device)
                try:
                    compiled = device.compile_source(self.source)
                except CLBuildProgramFailure as exc:
                    self.build_log = exc.build_log
                    raise
                self.context.charge(
                    "host",
                    device.spec.compile_ns,
                    name="build_program",
                    args={"device": device.name},
                )
                self.context.store_program_binary(key, compiled)
                self._built[device.id] = compiled
                self.build_log = "build succeeded"
        return self

    def _fault_gate(self, device: Device) -> None:
        """Give the active fault plan its shot at this device's build.

        A faulted compile is charged in full (the compiler ran and
        failed); transients retry per the active policy and exhaustion
        raises :class:`CLBuildProgramFailure` carrying the injected
        fault and a synthetic build log.
        """
        plan = faults.active_plan()
        if plan is None:
            return
        policy = faults.retry_policy()
        attempt = 1
        while True:
            fault = plan.decide("build", device.name)
            if fault is None:
                return
            faults.count_injection(fault)
            self.context.charge(
                "host",
                device.spec.compile_ns,
                name="fault.build",
                args={"device": device.name, "kind": fault.kind},
            )
            if fault.transient and attempt < policy.max_attempts:
                if policy.backoff_ns > 0.0:
                    self.context.charge(
                        "host",
                        policy.backoff_ns * attempt,
                        name="fault.backoff",
                    )
                faults.count_retry()
                attempt += 1
                continue
            log = (
                f"injected {fault.kind} build fault on {device.name} "
                f"(occurrence {fault.occurrence})"
            )
            self.build_log = log
            exc = CLBuildProgramFailure(log, build_log=log)
            exc.fault = fault
            exc.transient = fault.transient
            raise exc

    def retain(self) -> None:
        """Increment the reference count (a shared acquirer)."""
        self.refcount += 1

    def compiled_for(self, device: Device) -> kir.CompiledModule:
        try:
            return self._built[device.id]
        except KeyError:
            raise CLInvalidValue(
                f"program {self.id} not built for device {device.name!r}"
            ) from None

    def create_kernel(self, name: str) -> "Kernel":
        if not self._built:
            raise CLInvalidValue("program must be built before kernel creation")
        module = next(iter(self._built.values())).module
        fn = module.functions.get(name)
        if fn is None or not fn.is_kernel:
            raise CLInvalidValue(f"no kernel {name!r} in program")
        return Kernel(self, fn)

    def kernel_names(self) -> list[str]:
        if not self._built:
            raise CLInvalidValue("program is not built")
        module = next(iter(self._built.values())).module
        return [f.name for f in module.kernels()]

    def release(self) -> None:
        """Drop one reference; the last release frees the build state
        and unregisters the program from the context."""
        if self.refcount > 0:
            self.refcount -= 1
        if self.refcount > 0:
            return
        self._built.clear()
        with self.context._registry_lock:
            if self.context._program_registry.get(self.source) is self:
                del self.context._program_registry[self.source]


class Kernel:
    """An argument-holding kernel object, mirroring ``cl_kernel``."""

    def __init__(self, program: Program, fn: kir.Function) -> None:
        self.program = program
        self.fn = fn
        self.name = fn.name
        self._args: list = [_UNSET] * len(fn.params)
        #: array parameter names the kernel body reads / writes, used by
        #: the out-of-order queue scheduler to infer buffer hazards.
        self._read_params = kir.read_arrays(fn)
        self._written_params = kir.written_arrays(fn)

    @property
    def num_args(self) -> int:
        return len(self.fn.params)

    def set_arg(self, index: int, value) -> None:
        """Bind argument *index*; buffers for array params, scalars else."""
        from .memory import Buffer  # local import to avoid a cycle

        if not 0 <= index < len(self.fn.params):
            raise CLInvalidValue(
                f"kernel {self.name}: argument index {index} out of range"
            )
        param = self.fn.params[index]
        if isinstance(param.type, kir.ArrayType):
            if not isinstance(value, Buffer):
                raise CLInvalidValue(
                    f"kernel {self.name}: argument {param.name!r} needs a Buffer"
                )
            if value.dtype != param.type.element.kind:
                raise CLInvalidValue(
                    f"kernel {self.name}: buffer dtype {value.dtype} != "
                    f"param element {param.type.element.kind}"
                )
        else:
            if isinstance(value, Buffer):
                raise CLInvalidValue(
                    f"kernel {self.name}: argument {param.name!r} is a scalar"
                )
            want = param.type.kind
            ok = (
                (want == "int" and isinstance(value, int)
                 and not isinstance(value, bool))
                or (want == "float" and isinstance(value, (int, float))
                    and not isinstance(value, bool))
                or (want == "bool" and isinstance(value, bool))
            )
            if not ok:
                raise CLInvalidValue(
                    f"kernel {self.name}: argument {param.name!r} expects "
                    f"{want}, got {type(value).__name__}"
                )
            if want == "float":
                value = float(value)
        self._args[index] = value

    def bound_entries(self, context: Context) -> list:
        """Validated argument list with :class:`Buffer` objects left
        as-is, so the dispatch tier can choose each buffer's storage."""
        from ..errors import CLInvalidKernelArgs
        from .memory import Buffer

        out = []
        for i, (param, value) in enumerate(zip(self.fn.params, self._args)):
            if value is _UNSET:
                raise CLInvalidKernelArgs(
                    f"kernel {self.name}: argument {i} ({param.name}) not set"
                )
            if isinstance(value, Buffer):
                value.check_alive()
                if value.context is not context:
                    raise CLInvalidKernelArgs(
                        f"kernel {self.name}: buffer for {param.name!r} "
                        "belongs to a different context"
                    )
            out.append(value)
        return out

    def bound_args(self, context: Context) -> list:
        """Materialise the argument list for dispatch (device storage for
        buffers, raw scalars otherwise)."""
        from .memory import Buffer

        return [
            v.data if isinstance(v, Buffer) else v
            for v in self.bound_entries(context)
        ]

    def buffer_access(
        self, entries: Sequence
    ) -> tuple[list[int], list[int]]:
        """The (read, written) buffer ids among bound *entries*.

        Derived from the kernel body's static array accesses; a buffer
        bound to a parameter the body neither reads nor writes is
        conservatively treated as read (it still orders behind writers).
        """
        from .memory import Buffer

        reads: list[int] = []
        writes: list[int] = []
        for param, value in zip(self.fn.params, entries):
            if not isinstance(value, Buffer):
                continue
            touched = False
            if param.name in self._read_params:
                reads.append(value.id)
                touched = True
            if param.name in self._written_params:
                writes.append(value.id)
                touched = True
            if not touched:
                reads.append(value.id)
        return reads, writes

    def runner(self, device: Device) -> kir.KernelRunner:
        """The executable runner of this kernel compiled for *device*."""
        return self.program.compiled_for(device).kernel_runner(self.name)

    def release(self) -> None:
        self._args = [_UNSET] * len(self.fn.params)

    def __repr__(self) -> str:
        return f"<Kernel {self.name} args={self.num_args}>"


class _Unset:
    def __repr__(self) -> str:  # pragma: no cover
        return "<unset>"


_UNSET = _Unset()
