"""Device memory objects.

Buffers are typed (float / int / bool elements) rather than raw bytes —
a deliberate simplification that keeps the simulated kernels directly
executable — but all paper-relevant behaviour is preserved: buffers
live on the device side of a modelled host link, moving data across it
costs simulated time proportional to the byte size, and host code can
only observe kernel writes after an explicit read-back.

Storage is two-tiered for host-path speed: the canonical Python list
(every legacy consumer reads/writes ``buf.data``) plus a lazily
materialised NumPy mirror used by the vectorised kernel execution path.
Whichever tier was written last is authoritative; the other is synced
on demand.  The tiers are a wall-clock optimisation only — simulated
costs never depend on which tier executed an access.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..errors import CLInvalidValue, CLMemObjectReleased
from .context import Context
from .costmodel import ELEMENT_BYTES

try:  # the vectorised execution tier is optional
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

HAVE_NUMPY = _np is not None

_buffer_ids = itertools.count(1)

# Memory flags (subset of the OpenCL CL_MEM_* flags).
READ_WRITE = "READ_WRITE"
READ_ONLY = "READ_ONLY"
WRITE_ONLY = "WRITE_ONLY"
COPY_HOST_PTR = "COPY_HOST_PTR"

_ZERO = {"float": 0.0, "int": 0, "bool": False}


def np_dtype(dtype: str):
    """NumPy dtype for a buffer element type (requires numpy)."""
    assert _np is not None
    return {"float": _np.float64, "int": _np.int64, "bool": _np.bool_}[dtype]


class Buffer:
    """A device-resident 1-D array of scalars."""

    def __init__(
        self,
        context: Context,
        n_elements: int,
        dtype: str = "float",
        flags: Sequence[str] = (READ_WRITE,),
        host_data: Optional[Sequence] = None,
    ) -> None:
        if dtype not in ELEMENT_BYTES:
            raise CLInvalidValue(f"bad buffer dtype {dtype!r}")
        if n_elements < 0:
            raise CLInvalidValue("buffer size must be non-negative")
        self.id = next(_buffer_ids)
        #: Creation index within the owning context.  Unlike ``id``
        #: (process-global, monotonic), the ordinal restarts at 0 for
        #: every context, which makes it a run-stable identity — the
        #: fault-injection layer keys transfer decisions on it so a
        #: replayed run reproduces the same injections (faults.py).
        self.ordinal = len(context._buffers)
        self.context = context
        self.dtype = dtype
        self.n_elements = n_elements
        self.flags = tuple(flags)
        self.released = False
        self._np = None
        self._np_fresh = False
        self._list_fresh = True
        #: Transfer-elimination marker: ``(residency_epoch, device_id)``
        #: of the last clean transfer that certified host and device
        #: copies equal, or None once a kernel (or device-side copy) has
        #: written the buffer.  Maintained by the queue layer; consulted
        #: only when the graph-level optimiser is enabled.
        self._h2d_clean: Optional[tuple] = None
        if COPY_HOST_PTR in self.flags:
            if host_data is None:
                raise CLInvalidValue("COPY_HOST_PTR without host data")
            if len(host_data) != n_elements:
                raise CLInvalidValue(
                    f"host data length {len(host_data)} != {n_elements}"
                )
            self._list = list(host_data)
        else:
            self._list = [_ZERO[dtype]] * n_elements
        context._buffers.append(self)

    # -- two-tier storage --------------------------------------------------

    @property
    def data(self) -> list:
        """The buffer contents as the canonical Python list.

        Callers may mutate the returned list in place (the substrate
        itself does), so any still-fresh NumPy mirror is conservatively
        invalidated here.  Observing contents is also a flush point for
        the graph-level optimiser: a kernel deferred for fusion must
        execute before its output can be read.
        """
        if self.context._fusion_pending:
            self.context.flush_pending()
        if not self._list_fresh:
            self._list[:] = self._np.tolist()
            self._list_fresh = True
        self._np_fresh = False
        return self._list

    @data.setter
    def data(self, values: list) -> None:
        if self.context._fusion_pending:
            self.context.flush_pending()
        self._list = values
        self._list_fresh = True
        self._np = None
        self._np_fresh = False

    def contents_equal(self, values) -> bool:
        """Whether the buffer currently holds exactly *values*.

        A read-only probe for the transfer-elimination pass: unlike the
        ``data`` property it does not invalidate the NumPy mirror, so
        checking an upload for redundancy never deoptimises a chain of
        vectorised dispatches.
        """
        if not self._list_fresh:
            self._list[:] = self._np.tolist()
            self._list_fresh = True
        if len(values) != len(self._list):
            return False
        return list(values) == self._list

    def np_view(self):
        """The contents as a NumPy array (authoritative until the list
        tier is touched).  Callers that write through the view must call
        :meth:`mark_np_written`."""
        assert _np is not None
        if self.context._fusion_pending:
            self.context.flush_pending()
        if not self._np_fresh:
            self._np = _np.asarray(self._list, dtype=np_dtype(self.dtype))
            self._np_fresh = True
        return self._np

    def mark_np_written(self) -> None:
        """A vectorised kernel stored through the NumPy mirror: the list
        tier is stale until the next ``.data`` access."""
        self._list_fresh = False

    # -- geometry / lifecycle ----------------------------------------------

    @property
    def nbytes(self) -> int:
        return self.n_elements * ELEMENT_BYTES[self.dtype]

    def check_alive(self) -> None:
        if self.released:
            raise CLMemObjectReleased(f"buffer {self.id} was released")

    def release(self) -> None:
        """Return the device memory.  Double release is an error."""
        self.check_alive()
        self.released = True
        self.data = []
        try:
            self.context._buffers.remove(self)
        except ValueError:  # pragma: no cover - defensive
            pass

    def __len__(self) -> int:
        return self.n_elements

    def __repr__(self) -> str:
        state = "released" if self.released else f"{self.n_elements}x{self.dtype}"
        return f"<Buffer {self.id} {state}>"
