"""Device memory objects.

Buffers are typed (float / int / bool elements) rather than raw bytes —
a deliberate simplification that keeps the simulated kernels directly
executable — but all paper-relevant behaviour is preserved: buffers
live on the device side of a modelled host link, moving data across it
costs simulated time proportional to the byte size, and host code can
only observe kernel writes after an explicit read-back.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..errors import CLInvalidValue, CLMemObjectReleased
from .context import Context
from .costmodel import ELEMENT_BYTES

_buffer_ids = itertools.count(1)

# Memory flags (subset of the OpenCL CL_MEM_* flags).
READ_WRITE = "READ_WRITE"
READ_ONLY = "READ_ONLY"
WRITE_ONLY = "WRITE_ONLY"
COPY_HOST_PTR = "COPY_HOST_PTR"

_ZERO = {"float": 0.0, "int": 0, "bool": False}


class Buffer:
    """A device-resident 1-D array of scalars."""

    def __init__(
        self,
        context: Context,
        n_elements: int,
        dtype: str = "float",
        flags: Sequence[str] = (READ_WRITE,),
        host_data: Optional[Sequence] = None,
    ) -> None:
        if dtype not in ELEMENT_BYTES:
            raise CLInvalidValue(f"bad buffer dtype {dtype!r}")
        if n_elements < 0:
            raise CLInvalidValue("buffer size must be non-negative")
        self.id = next(_buffer_ids)
        self.context = context
        self.dtype = dtype
        self.n_elements = n_elements
        self.flags = tuple(flags)
        self.released = False
        if COPY_HOST_PTR in self.flags:
            if host_data is None:
                raise CLInvalidValue("COPY_HOST_PTR without host data")
            if len(host_data) != n_elements:
                raise CLInvalidValue(
                    f"host data length {len(host_data)} != {n_elements}"
                )
            self.data = list(host_data)
        else:
            self.data = [_ZERO[dtype]] * n_elements
        context._buffers.append(self)

    @property
    def nbytes(self) -> int:
        return self.n_elements * ELEMENT_BYTES[self.dtype]

    def check_alive(self) -> None:
        if self.released:
            raise CLMemObjectReleased(f"buffer {self.id} was released")

    def release(self) -> None:
        """Return the device memory.  Double release is an error."""
        self.check_alive()
        self.released = True
        self.data = []
        try:
            self.context._buffers.remove(self)
        except ValueError:  # pragma: no cover - defensive
            pass

    def __len__(self) -> int:
        return self.n_elements

    def __repr__(self) -> str:
        state = "released" if self.released else f"{self.n_elements}x{self.dtype}"
        return f"<Buffer {self.id} {state}>"
