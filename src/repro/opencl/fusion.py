"""Graph-level dispatch optimisation: producer->consumer kernel fusion.

Opt-in via ``repro.opencl.dispatch.configure(fusion=True)`` (default
off — with fusion disabled every priced figure is byte-identical to the
unoptimised substrate).  When enabled, each in-order queue holds the
most recent kernel dispatch *pending* instead of executing it
immediately; when the next kernel arrives on the same queue, this
module decides whether the pair may legally execute as one composed
kernel:

* **legality** — both kernels item-parallel (no barriers / ``__local``
  storage), the producer has no early ``return``, neither kernel binds
  one buffer under two parameters with a write (aliasing), the producer
  writes at least one buffer the consumer reads (there must be a fused
  dataflow edge to justify rewriting the launch), and the NDRanges are
  compatible: either identical rank-1 ranges whose shared written
  buffers are accessed purely at ``get_global_id(0)`` (*equal-range*
  fusion), or a single-work-item producer that never queries the launch
  geometry (*prologue* fusion — the producer body runs guarded to work
  item 0 of the consumer's range).  Any violation demotes the pair to
  two ordinary launches and is counted as
  ``dispatch.fuse.reject.<reason>``.
* **composition** — :func:`repro.kir.fuse.compose_module` builds a
  fresh validated module whose parameter list is the deduplicated union
  of both kernels' actual bindings (one fused parameter per distinct
  buffer / scalar value), so the fused launch binds each argument once.
* **pricing** — the fused module is content-addressed through
  :func:`repro.kcache.module_fingerprint`; the first build on a device
  spec charges a full ``compile_ns`` (``build_fused_program``) into the
  context's binary registry, every later launch of the same composition
  charges one ``api_call_ns`` (``load_fused_binary``).  The fused
  dispatch itself is priced exactly like any kernel — through
  :func:`repro.opencl.dispatch.dispatch_kernel_ns` on the composed
  body — so the saving is structural and honest: one
  ``kernel_launch_ns`` fewer per fused pair, visible in the ledger's
  ``kernel_launches`` and in ``SimClock.timeline``'s ``elapsed_ns``.

The second pass of the optimiser — redundant host->device transfer
elimination — lives in the queue layer
(:meth:`repro.opencl.queue.CommandQueue.enqueue_write_buffer`) gated on
:func:`enabled` and the ``Buffer._h2d_clean`` residency marker; this
module only owns its counters (``dispatch.xfer_elim`` /
``dispatch.xfer_elim.bytes``).  See docs/ARCHITECTURE.md
("Graph-level optimisation") for the full legality and determinism
argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .. import kcache, kir
from ..kir import fuse as kfuse
from ..trace import current_tracer
from .memory import Buffer

_enabled = False


def set_enabled(flag: bool) -> None:
    """Turn the graph-level optimiser on or off (process-wide).

    Installed via ``dispatch.configure(fusion=...)``.  Toggling off
    while a queue holds a pending kernel is safe: the next command on
    that queue flushes it as an ordinary launch.
    """
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    """Whether kernel fusion / transfer elimination is active."""
    return _enabled


# -- counters ---------------------------------------------------------------


def _count(name: str, delta: float = 1) -> None:
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count(name, delta)


def count_fused() -> None:
    """One fused pair dispatched (one launch eliminated)."""
    _count("dispatch.fuse")
    _count("dispatch.fuse.launches_saved")


def count_reject(reason: str) -> None:
    """A pending kernel flushed as an ordinary launch; *reason* is the
    legality rule that failed, or the flush trigger (``host-read``,
    ``sync``, ``device-lost``, ...)."""
    _count("dispatch.fuse.reject")
    _count(f"dispatch.fuse.reject.{reason}")


def count_xfer_elim(nbytes: int) -> None:
    """One host->device transfer elided (device copy already clean)."""
    _count("dispatch.xfer_elim")
    _count("dispatch.xfer_elim.bytes", nbytes)


# -- fusion decision --------------------------------------------------------


@dataclass
class FusedPlan:
    """A legal, compiled fusion of two pending dispatches."""

    name: str
    runner: "kir.KernelRunner"
    entries: list
    reads: list[int]
    writes: list[int]


class _Reject(Exception):
    """Internal control flow: carries the reject-reason string."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _total(sizes: Sequence[int]) -> int:
    total = 1
    for s in sizes:
        total *= s
    return total


def _buffer_params(fn: kir.Function, entries: Sequence) -> dict[int, list[str]]:
    """Buffer id -> parameter names it is bound under."""
    out: dict[int, list[str]] = {}
    for param, entry in zip(fn.params, entries):
        if isinstance(entry, Buffer):
            out.setdefault(entry.id, []).append(param.name)
    return out


def _has_write_alias(kernel, entries: Sequence) -> bool:
    """Whether one buffer is bound under two parameters of *kernel*
    with at least one of them written (fusing would reorder the
    aliased accesses, so such dispatches never fuse)."""
    by_buffer = _buffer_params(kernel.fn, entries)
    written = kernel._written_params
    for names in by_buffer.values():
        if len(names) > 1 and any(name in written for name in names):
            return True
    return False


def _dedupe_params(
    fn_a: kir.Function,
    entries_a: Sequence,
    fn_b: kir.Function,
    entries_b: Sequence,
) -> tuple[list[kir.Param], list, dict[str, str], dict[str, str]]:
    """The fused parameter list: one parameter per distinct binding.

    Buffers deduplicate by identity, scalars by (type, value) — both
    kernels' views of a shared buffer or equal scalar (e.g. the
    iteration index both LUD kernels take) collapse onto one fused
    parameter.  Returns (params, entries, rename_a, rename_b) where the
    rename maps send each source kernel's parameter names onto the
    fused names.  A buffer bound under *different* parameter types
    (address space drift) rejects: two fused parameters would alias.
    """
    params: list[kir.Param] = []
    entries: list = []
    used: set[str] = set()
    by_key: dict = {}

    def admit(param: kir.Param, entry) -> str:
        if isinstance(entry, Buffer):
            key = ("buf", id(entry))
        else:
            key = ("scalar", type(entry).__name__, entry)
        hit = by_key.get(key)
        if hit is not None:
            name, ptype = hit
            if ptype != param.type:
                raise _Reject("param-type")
            return name
        name, i = param.name, 2
        while name in used:
            name = f"{param.name}_{i}"
            i += 1
        used.add(name)
        by_key[key] = (name, param.type)
        params.append(kir.Param(name, param.type))
        entries.append(entry)
        return name

    rename_a = {p.name: admit(p, e) for p, e in zip(fn_a.params, entries_a)}
    rename_b = {p.name: admit(p, e) for p, e in zip(fn_b.params, entries_b)}
    return params, entries, rename_a, rename_b


def _check_legal(
    device,
    pend,
    kernel_b,
    entries_b,
    reads_b: Sequence[int],
    gsz_b: Sequence[int],
    lsz_b: Sequence[int],
) -> int:
    """Raise :class:`_Reject` unless the pair may fuse; returns the
    prologue guard rank (0 for equal-range fusion)."""
    kernel_a = pend.kernel
    fn_a, fn_b = kernel_a.fn, kernel_b.fn
    if kernel_a.runner(device).group_mode or kernel_b.runner(device).group_mode:
        raise _Reject("barrier")
    if kfuse.has_return(fn_a):
        raise _Reject("return")
    if _has_write_alias(kernel_a, pend.entries) or _has_write_alias(
        kernel_b, entries_b
    ):
        raise _Reject("aliasing")
    if not set(pend.writes) & set(reads_b):
        raise _Reject("no-intermediate")
    if (
        tuple(gsz_b) == tuple(pend.gsz)
        and tuple(lsz_b) == tuple(pend.lsz)
        and len(gsz_b) == 1
    ):
        # Equal ranges: work item i runs A's body then B's.  That equals
        # launch-after-launch order only if no item can observe another
        # item's half of the fusion through a shared written buffer.
        by_a = _buffer_params(fn_a, pend.entries)
        by_b = _buffer_params(fn_b, entries_b)
        involved = {
            bid
            for bid in set(by_a) & set(by_b)
            if any(n in kernel_a._written_params for n in by_a[bid])
            or any(n in kernel_b._written_params for n in by_b[bid])
        }
        names_a = {n for bid in involved for n in by_a[bid]}
        names_b = {n for bid in involved for n in by_b[bid]}
        if not kfuse.accesses_elementwise(fn_a, names_a):
            raise _Reject("gather")
        if not kfuse.accesses_elementwise(fn_b, names_b):
            raise _Reject("gather")
        return 0
    if _total(pend.gsz) == 1:
        # Single-item producer: its body runs as a guarded prologue of
        # the consumer's range.  Work item (0, ..., 0) executes first in
        # every tier, so the producer's effects precede every consumer
        # instance exactly as across two launches — unless the producer
        # reads the launch geometry, which the fused range would change.
        if kfuse.uses_geometry_builtins(fn_a):
            raise _Reject("geometry")
        return max(1, len(gsz_b))
    raise _Reject("shape")


def try_fuse(
    context,
    device,
    pend,
    kernel_b,
    entries_b: Sequence,
    gsz_b: Sequence[int],
    lsz_b: Sequence[int],
):
    """Decide whether the queue's *pend*-ing dispatch fuses with the
    incoming *kernel_b* dispatch.

    Returns a :class:`FusedPlan` (composed, compiled and priced) on
    success, or the reject-reason string that should flush the pending
    kernel as an ordinary launch.  Never raises for an illegal pair —
    illegal fusions demote, they do not fail the dispatch.
    """
    kernel_a = pend.kernel
    reads_b, writes_b = kernel_b.buffer_access(entries_b)
    try:
        guard_rank = _check_legal(
            device, pend, kernel_b, entries_b, reads_b, gsz_b, lsz_b
        )
        fn_a, fn_b = kernel_a.fn, kernel_b.fn
        params, entries, rename_a, rename_b = _dedupe_params(
            fn_a, pend.entries, fn_b, entries_b
        )
        module_a = kernel_a.program.compiled_for(device).module
        module_b = kernel_b.program.compiled_for(device).module
        name = f"fuse__{fn_a.name}__{fn_b.name}"
        module = kfuse.compose_module(
            name,
            fn_a,
            module_a,
            rename_a,
            fn_b,
            module_b,
            rename_b,
            params,
            guard_rank=guard_rank,
        )
    except _Reject as reject:
        return reject.reason
    except Exception:  # defensive: composition bugs demote, never crash
        return "compose-error"

    key = kcache.module_fingerprint(module, device.spec, "fused")
    compiled = context.program_binary(key)
    if compiled is None:
        kir.validate(module)
        context.charge(
            "host",
            device.spec.compile_ns,
            name="build_fused_program",
            args={"device": device.name, "kernel": name},
        )
        compiled = kcache.get_or_build_module(module, device.spec, "fused")
        context.store_program_binary(key, compiled)
    else:
        context.charge(
            "host",
            device.spec.api_call_ns,
            name="load_fused_binary",
            args={"device": device.name, "kernel": name},
        )
    reads = list(dict.fromkeys([*pend.reads, *reads_b]))
    writes = list(dict.fromkeys([*pend.writes, *writes_b]))
    return FusedPlan(
        name=name,
        runner=compiled.kernel_runner(name),
        entries=entries,
        reads=reads,
        writes=writes,
    )
