"""Simulated OpenCL substrate: platforms, devices, contexts, queues,
buffers and runtime-compiled kernels, priced by a deterministic cost
model (see DESIGN.md for the substitution rationale).

Two interfaces are exposed:

* the **object layer** (`Context`, `CommandQueue`, `Buffer`, `Program`,
  `Kernel`) used by the actor runtime, and
* the **flat `cl*` API** (:mod:`repro.opencl.api`) used by the paper's
  verbose C-OpenCL baseline applications.
"""

from .context import Context, current_clock, fresh_clock  # noqa: F401
from .faults import (  # noqa: F401
    Fault,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from .costmodel import (  # noqa: F401
    ACCELERATOR,
    CPU,
    ELEMENT_BYTES,
    GPU,
    CostLedger,
    DeviceSpec,
    ScheduleTimeline,
    SimClock,
    TIMELINE_KIND_OF,
    TIMELINE_SEGMENTS,
    cpu_spec,
    gpu_spec,
    group_warp_costs,
)
from .memory import (  # noqa: F401
    Buffer,
    COPY_HOST_PTR,
    READ_ONLY,
    READ_WRITE,
    WRITE_ONLY,
)
from .platform import (  # noqa: F401
    Device,
    Platform,
    find_device,
    get_platforms,
    reset_platforms,
    scaled_platform,
    set_platforms,
)
from .program import Kernel, Program  # noqa: F401
from .queue import (  # noqa: F401
    BARRIER,
    CL_QUEUE_OUT_OF_ORDER_EXEC_MODE,
    COPY_BUFFER,
    CommandQueue,
    Event,
    MARKER,
    NDRANGE_KERNEL,
    READ_BUFFER,
    WRITE_BUFFER,
)
from . import api  # noqa: F401
