"""Contexts and the simulation-wide clock.

A context is the umbrella structure holding devices, buffers and
queues (paper Section 2.1).  Every context charges costs to a
:class:`~repro.opencl.costmodel.SimClock` (the global simulated
timeline) and to its own :class:`~repro.opencl.costmodel.CostLedger`
(the per-run category totals the harness turns into Figure 3 segments).
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from typing import Iterator, Optional, Sequence

from ..errors import CLDeviceLost, CLInvalidValue
from ..trace import current_tracer
from . import faults
from .costmodel import TIMELINE_KIND_OF, CostLedger, SimClock
from .platform import Device, Platform

_context_ids = itertools.count(1)

_clock = SimClock()
_clock_lock = threading.Lock()


def current_clock() -> SimClock:
    """The simulation clock new contexts attach to."""
    return _clock


@contextlib.contextmanager
def fresh_clock() -> Iterator[SimClock]:
    """Swap in a fresh clock for the duration of a measured run."""
    global _clock
    with _clock_lock:
        saved = _clock
        _clock = SimClock()
        swapped = _clock
    try:
        yield swapped
    finally:
        with _clock_lock:
            _clock = saved


class Context:
    """Holds devices plus the software state attached to them."""

    def __init__(
        self,
        devices: Sequence[Device],
        platform: Optional[Platform] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        if not devices:
            raise CLInvalidValue("a context needs at least one device")
        self.id = next(_context_ids)
        self.devices = list(devices)
        self.platform = platform
        self.clock = clock if clock is not None else current_clock()
        self.ledger = CostLedger()
        self.released = False
        self._queues: list = []
        self._buffers: list = []
        #: source text -> shared Program object (clCreateProgramWithSource
        #: dedupe within this context); see Program.shared.
        self._program_registry: dict = {}
        #: kcache fingerprint -> CompiledModule: the context's registry
        #: of already-built "program binaries".  Rebuilding an identical
        #: (source, device-spec) pair through any Program object finds
        #: the binary here and is charged a cheap API call instead of a
        #: full compile (the clCreateProgramWithBinary model).
        self._binary_cache: dict = {}
        self._registry_lock = threading.Lock()
        #: Generation counter for the transfer-elimination residency
        #: markers (``Buffer._h2d_clean``).  Bumped by
        #: :meth:`reset_ledger`, which structurally invalidates every
        #: marker stamped in an earlier generation — a measured run must
        #: price its own transfers.
        self.residency_epoch = 0
        #: Number of this context's queues currently holding a kernel
        #: dispatch deferred by the graph-level optimiser.  Host-side
        #: buffer observation (``Buffer.data`` / ``np_view``) checks it
        #: and calls :meth:`flush_pending` so deferred effects are never
        #: observable.
        self._fusion_pending = 0

    def flush_pending(self) -> None:
        """Dispatch every kernel the graph-level optimiser is holding
        pending on this context's queues (host observation point)."""
        for queue in list(self._queues):
            queue._flush_if_pending("host-observe")

    def program_binary(self, key: str):
        """Look up an already-built program binary by kcache fingerprint."""
        with self._registry_lock:
            return self._binary_cache.get(key)

    def store_program_binary(self, key: str, compiled) -> None:
        with self._registry_lock:
            self._binary_cache[key] = compiled

    def has_device(self, device: Device) -> bool:
        """Whether *device* is one of this context's devices."""
        return device in self.devices

    def queue_for(self, device: Device, out_of_order: bool = False):
        """This context's command queue on *device*, created on demand.

        Returns the first live queue already bound to *device* (whatever
        its mode); only when none exists is a new queue created with the
        requested *out_of_order* mode.  Keeps the runtime's
        one-queue-per-device policy intact for multi-device dispatch.
        """
        from .queue import CommandQueue

        for queue in self._queues:
            if queue.device is device and not queue.released:
                return queue
        return CommandQueue(self, device, out_of_order=out_of_order)

    def enqueue_nd_range(
        self,
        kernel,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
        out_of_order: bool = False,
    ) -> list:
        """Dispatch one NDRange across *all* devices of this context.

        On a single-device context this is exactly
        :meth:`~repro.opencl.queue.CommandQueue.enqueue_nd_range_kernel`
        on that device's queue.  On a multi-device context the range is
        split along its outermost dimension at work-group granularity,
        proportional to device throughput (EngineCL-style runtime work
        splitting): the kernel executes once — buffer contents are
        bit-identical to single-device execution — and each device is
        charged its own slice (warp maxima folded with its SIMD width)
        plus the broadcast/gather transfer traffic of participating in
        the split.  Returns the list of per-device kernel events.

        Devices lost to an earlier ``device-lost`` fault are excluded
        up front; a loss injected *during* a multi-device dispatch
        re-splits the lost share over the survivors (the failover path,
        counted as ``fault.failover``) — see docs/RELIABILITY.md.
        """
        from . import dispatch
        from .memory import Buffer

        devices = [d for d in self.devices if not d.lost]
        if not devices:
            raise CLDeviceLost(
                f"context {self.id}: every device was lost; cannot "
                f"dispatch {kernel.name}"
            )
        queues = [self.queue_for(d, out_of_order) for d in devices]
        if len(devices) == 1:
            return [
                queues[0].enqueue_nd_range_kernel(
                    kernel, global_size, local_size
                )
            ]
        # Validate against every device; the strictest work-group limit
        # picks the local size when the caller passed none.
        strictest = min(
            queues, key=lambda q: q.device.spec.max_work_group_size
        )
        gsz, lsz = strictest.check_nd_range(global_size, local_size)
        for queue in queues:
            queue.check_nd_range(gsz, lsz)

        total_groups = gsz[-1] // lsz[-1]
        weights = [dispatch.device_weight(d.spec) for d in devices]
        shares = dispatch.split_share_counts(total_groups, weights)
        participating = [
            (queue, share) for queue, share in zip(queues, shares) if share
        ]
        if len(participating) > 1 and faults.active_plan() is not None:
            participating = self._decide_split_faults(kernel, participating)
        if len(participating) == 1:
            return [
                participating[0][0].enqueue_nd_range_kernel(
                    kernel, gsz, lsz
                )
            ]

        entries = kernel.bound_entries(self)
        reads, writes = kernel.buffer_access(entries)
        primary = participating[0][0]
        parts = dispatch.multi_device_kernel_ns(
            kernel.runner(primary.device),
            [q.device.spec for q, _ in participating],
            [share for _, share in participating],
            entries,
            gsz,
            lsz,
        )
        read_bufs = [e for e in entries
                     if isinstance(e, Buffer) and e.id in reads]
        written_bufs = [e for e in entries
                        if isinstance(e, Buffer) and e.id in writes]
        for buf in written_bufs:
            buf._h2d_clean = None
        total_items = 1
        for s in gsz:
            total_items *= s

        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("dispatch.split")
        events = []
        for index, ((queue, _), part) in enumerate(zip(participating, parts)):
            assert part is not None
            sub_gsz, n_items, ns = part
            if index > 0:
                # Secondary devices pay the host link: inputs are
                # broadcast to them, and their output slice comes back.
                for buf in read_bufs:
                    queue.enqueue_priced_transfer(
                        "h2d", buf, buf.nbytes, split=kernel.name
                    )
                for buf in written_bufs:
                    share_bytes = buf.nbytes * n_items // total_items
                    queue.enqueue_priced_transfer(
                        "d2h", buf, share_bytes, split=kernel.name
                    )
            events.append(
                queue.enqueue_priced_kernel(
                    kernel.name,
                    ns,
                    reads=reads,
                    writes=writes,
                    global_size=list(sub_gsz),
                    local_size=list(lsz),
                    split=f"{index + 1}/{len(participating)}",
                )
            )
        if tracer.enabled:
            tracer.count("dispatch.split.devices", len(participating))
        return events

    def _decide_split_faults(self, kernel, participating: list) -> list:
        """Take the fault decisions for a multi-device split dispatch.

        Each participating device consults the plan under the same
        ``<kernel>@<device>`` key a solo dispatch would use.  Transient
        faults retry in place (each aborted launch charged, backoff
        charged as host time); a ``device-lost`` fault marks the device
        and hands its work-group share to the survivors, re-split by
        throughput weight (``fault.failover``).  Raises when a
        permanent fault exhausts its retries or no device survives.
        """
        from . import dispatch

        policy = faults.retry_policy()
        plan = faults.active_plan()
        survivors: list = []
        lost_shares = 0
        lost_count = 0
        for queue, share in participating:
            key = f"{kernel.name}@{queue.device.name}"
            attempt = 1
            lost = False
            while True:
                fault = plan.decide("kernel", key)
                if fault is None:
                    break
                faults.count_injection(fault)
                self.charge(
                    "kernel",
                    queue.device.spec.kernel_launch_ns,
                    name="fault.kernel",
                    track=f"device/{queue.device.name}",
                    args={"key": key, "kind": fault.kind},
                )
                if fault.kind == faults.DEVICE_LOST:
                    queue.device.mark_lost()
                    lost = True
                    break
                if fault.transient and attempt < policy.max_attempts:
                    if policy.backoff_ns > 0.0:
                        self.charge(
                            "host",
                            policy.backoff_ns * attempt,
                            name="fault.backoff",
                        )
                    faults.count_retry()
                    attempt += 1
                    continue
                raise faults.exception_for(fault, kernel.name)
            if lost:
                lost_shares += share
                lost_count += 1
            else:
                survivors.append((queue, share))
        if not lost_shares:
            return survivors
        if not survivors:
            raise CLDeviceLost(
                f"every device was lost dispatching {kernel.name}"
            )
        extra = dispatch.split_share_counts(
            lost_shares,
            [dispatch.device_weight(q.device.spec) for q, _ in survivors],
        )
        for _ in range(lost_count):
            faults.count_failover()
        return [
            (queue, share + add)
            for (queue, share), add in zip(survivors, extra)
        ]

    def charge(
        self,
        category: str,
        ns: float,
        *,
        name: Optional[str] = None,
        track: Optional[str] = None,
        ts_ns: Optional[float] = None,
        args: Optional[dict] = None,
        placed: bool = False,
    ) -> None:
        """Record *ns* of *category* cost on clock and ledger.

        Every ledger charge in the substrate funnels through here, so
        the active tracer sees a cost span for each — which is what
        makes :meth:`repro.trace.Tracer.summary` agree with the ledger
        breakdown by construction.  The keyword arguments only refine
        the emitted span (label, track, device-timeline timestamp).

        The charge also lands on the clock's composed end-to-end
        timeline (:class:`~repro.opencl.costmodel.ScheduleTimeline`):
        serially at the host cursor by default, or not at all when the
        caller already *placed* it — command queues place their
        commands at scheduled composed coordinates before charging.
        """
        now = self.clock.advance(ns)
        self.ledger.charge(category, ns)
        if not placed:
            self.clock.timeline.serial_advance(
                TIMELINE_KIND_OF[category], ns
            )
        tracer = current_tracer()
        if tracer.enabled:
            tracer.cost_span(
                category,
                ns,
                name=name or category,
                track=track or f"host/context-{self.id}",
                ts_ns=now - ns if ts_ns is None else ts_ns,
                args=args,
            )

    def charge_api_call(
        self, device: Optional[Device] = None, name: str = "api_call"
    ) -> None:
        """Price one host API call (and give the fault plan its shot).

        An injected ``api`` fault charges the failed call, retries
        transients per the active :class:`~repro.opencl.faults
        .RetryPolicy`, and surfaces as :class:`~repro.errors
        .CLOutOfHostMemory` when permanent or exhausted.
        """
        spec = (device or self.devices[0]).spec
        plan = faults.active_plan()
        if plan is not None:
            policy = faults.retry_policy()
            attempt = 1
            while True:
                fault = plan.decide("api", name)
                if fault is None:
                    break
                faults.count_injection(fault)
                self.charge(
                    "host", spec.api_call_ns, name=f"fault.{name}"
                )
                if fault.transient and attempt < policy.max_attempts:
                    if policy.backoff_ns > 0.0:
                        self.charge(
                            "host",
                            policy.backoff_ns * attempt,
                            name="fault.backoff",
                        )
                    faults.count_retry()
                    attempt += 1
                    continue
                raise faults.exception_for(fault, name)
        with self.ledger._lock:
            self.ledger.api_calls += 1
        self.charge("host", spec.api_call_ns, name=name)

    def reset_ledger(self) -> CostLedger:
        """Install and return a fresh ledger (harness: between runs).

        Program state resets with it: a measured run must price its own
        compiles, so the shared-program registry and the binary cache
        never leak "already built" state from a previous run into the
        next run's figures.  (The process-global wall-clock compile
        cache in :mod:`repro.kcache` is unaffected — it carries no
        simulated cost.)

        The clock's composed end-to-end timeline restarts with it (a
        new epoch at origin 0), so the next run's ``elapsed_ns``
        measures that run alone.  Queue-local schedule state — and the
        ``queue.overlap_ns`` counters derived from it — is untouched;
        live queues re-anchor their composed placement lazily.

        Graph-level optimiser state resets too: kernels still pending
        on this context's queues flush into the *old* ledger (they were
        enqueued by the run that is ending), and the residency epoch
        advances so the transfer-elimination pass never elides a
        transfer against a copy uploaded by a previous run.
        """
        if self._fusion_pending:
            self.flush_pending()
        self.clock.timeline.reset()
        self.ledger = CostLedger()
        self.residency_epoch += 1
        with self._registry_lock:
            self._program_registry.clear()
            self._binary_cache.clear()
        return self.ledger

    def release(self) -> None:
        for buf in list(self._buffers):
            if not buf.released:
                buf.release()
        self.released = True

    def __repr__(self) -> str:
        names = ", ".join(d.name for d in self.devices)
        return f"<Context {self.id} [{names}]>"
