"""Command queues and profiling events.

In-order queues only: the runtime layer above enforces a single
command queue per device (paper Section 6.2.1 — multiple queues per
device showed read races on the authors' stack, and the same policy is
reproduced here).  Commands execute synchronously but are priced on the
simulated timeline; each returns an :class:`Event` carrying OpenCL-style
profiling timestamps, which the harness aggregates into the Figure 3
to-device / from-device / kernel / overhead segments.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..errors import (
    CLInvalidContext,
    CLInvalidKernelArgs,
    CLInvalidValue,
    CLInvalidWorkGroupSize,
)
from ..trace import current_tracer
from .context import Context
from .dispatch import dispatch_kernel_ns
from .memory import Buffer
from .platform import Device

_event_ids = itertools.count(1)

# Command types (CL_COMMAND_*-style).
WRITE_BUFFER = "WRITE_BUFFER"
READ_BUFFER = "READ_BUFFER"
COPY_BUFFER = "COPY_BUFFER"
NDRANGE_KERNEL = "NDRANGE_KERNEL"


class Event:
    """Profiling record of one enqueued command.

    Carries the four OpenCL profiling timestamps distinctly: QUEUED is
    when the host enqueued the command, SUBMIT when the (in-order,
    immediately flushed) queue handed it to the device — the same
    instant here — and START when the device actually began it, which
    is later than SUBMIT whenever the device was still busy with
    earlier work (queueing delay).  END = START + duration.
    """

    def __init__(
        self,
        command: str,
        category: str,
        queued_ns: float,
        duration_ns: float,
        submit_ns: Optional[float] = None,
        start_ns: Optional[float] = None,
    ) -> None:
        self.id = next(_event_ids)
        self.command = command
        self.category = category  # 'h2d' | 'd2h' | 'kernel'
        self.queued_ns = queued_ns
        self.submit_ns = queued_ns if submit_ns is None else submit_ns
        self.start_ns = self.submit_ns if start_ns is None else start_ns
        self.end_ns = self.start_ns + duration_ns

    @property
    def queue_delay_ns(self) -> float:
        """Time the command waited for the device (START - SUBMIT)."""
        return self.start_ns - self.submit_ns

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def profiling_info(self, name: str) -> float:
        """CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END} lookup."""
        try:
            return {
                "QUEUED": self.queued_ns,
                "SUBMIT": self.submit_ns,
                "START": self.start_ns,
                "END": self.end_ns,
            }[name]
        except KeyError:
            raise CLInvalidValue(f"bad profiling info {name!r}") from None

    def __repr__(self) -> str:
        return f"<Event {self.id} {self.command} {self.duration_ns:.0f}ns>"


class CommandQueue:
    """An in-order command queue bound to one device of a context."""

    def __init__(self, context: Context, device: Device) -> None:
        if not context.has_device(device):
            raise CLInvalidContext(
                f"device {device.name!r} is not part of the context"
            )
        self.context = context
        self.device = device
        self.events: list[Event] = []
        self.released = False
        context._queues.append(self)

    # -- helpers -----------------------------------------------------------

    def _record(
        self, command: str, category: str, ns: float, **span_args
    ) -> Event:
        queued = self.context.clock.now_ns
        start = self.device.schedule_ns(queued, ns)
        event = Event(
            command, category, queued, ns, submit_ns=queued, start_ns=start
        )
        self.context.charge(
            category,
            ns,
            name=command,
            track=f"device/{self.device.name}",
            ts_ns=start,
            args=dict(
                span_args,
                queued_ns=queued,
                queue_delay_ns=event.queue_delay_ns,
            ),
        )
        self.events.append(event)
        return event

    def _check_buffer(self, buf: Buffer) -> None:
        buf.check_alive()
        if buf.context is not self.context:
            raise CLInvalidContext(
                f"buffer {buf.id} belongs to a different context"
            )

    # -- data movement ------------------------------------------------------

    def enqueue_write_buffer(self, buf: Buffer, host_data: Sequence) -> Event:
        """Copy *host_data* into the device buffer (host -> device)."""
        self._check_buffer(buf)
        if len(host_data) != buf.n_elements:
            raise CLInvalidValue(
                f"write of {len(host_data)} elements into buffer "
                f"of {buf.n_elements}"
            )
        buf.data[:] = host_data
        ns = self.device.spec.transfer_ns(buf.nbytes, to_device=True)
        with self.context.ledger._lock:
            self.context.ledger.bytes_to_device += buf.nbytes
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("bytes.to_device", buf.nbytes)
        return self._record(WRITE_BUFFER, "h2d", ns, nbytes=buf.nbytes)

    def enqueue_read_buffer(self, buf: Buffer, host_out: list) -> Event:
        """Copy the device buffer back into *host_out* (device -> host)."""
        self._check_buffer(buf)
        if len(host_out) != buf.n_elements:
            raise CLInvalidValue(
                f"read of buffer of {buf.n_elements} elements into host "
                f"array of {len(host_out)}"
            )
        host_out[:] = buf.data
        ns = self.device.spec.transfer_ns(buf.nbytes, to_device=False)
        with self.context.ledger._lock:
            self.context.ledger.bytes_from_device += buf.nbytes
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("bytes.from_device", buf.nbytes)
        return self._record(READ_BUFFER, "d2h", ns, nbytes=buf.nbytes)

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer) -> Event:
        """Device-to-device copy inside the context (no host link cost;
        charged at kernel-engine speed)."""
        self._check_buffer(src)
        self._check_buffer(dst)
        if src.n_elements != dst.n_elements or src.dtype != dst.dtype:
            raise CLInvalidValue("copy between mismatched buffers")
        dst.data[:] = src.data
        ns = src.n_elements / (self.device.spec.lanes * self.device.spec.ops_per_ns)
        return self._record(COPY_BUFFER, "kernel", ns)

    # -- kernel dispatch ---------------------------------------------------

    def enqueue_nd_range_kernel(
        self,
        kernel,
        global_size: Sequence[int],
        local_size: Optional[Sequence[int]] = None,
    ) -> Event:
        """Launch *kernel* over the NDRange and price the dispatch."""
        gsz = tuple(int(s) for s in global_size)
        if not 1 <= len(gsz) <= 3 or any(s <= 0 for s in gsz):
            raise CLInvalidValue(f"bad global size {gsz}")
        if local_size is None:
            lsz = self.device.choose_local_size(gsz)
        else:
            lsz = tuple(int(s) for s in local_size)
        if len(lsz) != len(gsz):
            raise CLInvalidWorkGroupSize(
                f"local size {lsz} rank != global size {gsz} rank"
            )
        if any(l <= 0 or g % l != 0 for g, l in zip(gsz, lsz)):
            raise CLInvalidWorkGroupSize(
                f"local size {lsz} does not divide global size {gsz}"
            )
        wg = 1
        for l in lsz:
            wg *= l
        if wg > self.device.spec.max_work_group_size:
            raise CLInvalidWorkGroupSize(
                f"work-group of {wg} exceeds device limit "
                f"{self.device.spec.max_work_group_size}"
            )
        entries = kernel.bound_entries(self.context)
        ns = dispatch_kernel_ns(
            kernel.runner(self.device), self.device.spec, entries, gsz, lsz
        )
        with self.context.ledger._lock:
            self.context.ledger.kernel_launches += 1
        return self._record(
            NDRANGE_KERNEL,
            "kernel",
            ns,
            kernel=kernel.name,
            global_size=list(gsz),
            local_size=list(lsz),
        )

    # -- lifecycle -----------------------------------------------------------

    def finish(self) -> None:
        """Block until queued commands complete (immediate in simulation)."""

    def flush(self) -> None:
        """Submit queued commands (immediate in simulation)."""

    def release(self) -> None:
        self.released = True
        try:
            self.context._queues.remove(self)
        except ValueError:  # pragma: no cover - defensive
            pass
